"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(the sandbox has setuptools but no `wheel`, which PEP-517 editable
installs require)."""

from setuptools import setup

setup()
