"""Developer tooling that lives outside the installable package.

``python -m tools.bench`` (with ``src`` on ``PYTHONPATH``) is the
performance harness; it writes ``BENCH_perf.json`` at the repo root so
the perf trajectory is tracked across PRs.
"""
