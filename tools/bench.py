"""Performance harness: ``python -m tools.bench`` (with ``src`` on
``PYTHONPATH``).

Two measurements, written to ``BENCH_perf.json`` at the repo root:

* **records/sec per workload and kernel** -- one
  ``SystemSimulator.run()`` per registered workload *per kernel*
  (``scalar`` and ``batch``) under the default config, trace
  generation excluded, so the numbers isolate the simulator hot loop
  and the ``batch_speedup`` ratio isolates the batch kernel's effect
  (:mod:`repro.sim.kernel`).
* **wall-clock per figure** -- each benched figure driver run three
  ways: serial with no cache (the pre-executor behaviour), through the
  persistent worker pool (``--workers``) into a cold cache, and
  serially against that now-warm cache.  ``pool_speedup`` is the
  pool's measured win over serial now that workers amortize their
  interpreter start across the whole queue instead of paying it per
  cell (the retired ``SPAWN_OVERHEAD_SECONDS`` cost model).

Keep ``--length`` small: the point is a repeatable trajectory across
PRs, not report-quality statistics.  Each run carries the history
forward: the previous file's ``trajectory`` list plus a compact entry
for the previous run itself are re-embedded in the new file (newest
last, capped), so the committed artifact accumulates a cross-PR record
as long as every refresh uses the same ``--length``/``--workers`` the
CI perf-smoke job uses.
"""

import argparse
import json
import multiprocessing
import os
import platform
import tempfile
import time

from repro import __version__
from repro.analysis import experiments
from repro.common.config import default_system_config
from repro.exec import ExperimentExecutor, ResultCache
from repro.sim.system import SystemSimulator
from repro.workloads.registry import make_trace, workload_names

#: Figure drivers the harness times, smallest representative set: fig01
#: is single-config per workload, fig10 is the baseline/TEMPO pair sweep.
BENCH_FIGURES = {
    "fig01_runtime_breakdown": experiments.fig01_runtime_breakdown,
    "fig10_performance_energy": experiments.fig10_performance_energy,
}


#: Kernels benched per workload (the default/reference kernel first --
#: its rate doubles as the row's top-level schema-2 compatibility
#: fields so old trajectories keep compacting).
BENCH_KERNELS = ("scalar", "batch")


def bench_workloads(names, length, seed=0):
    """records/sec for each workload and kernel, trace generation
    excluded.  ``batch_speedup`` is scalar seconds over batch seconds."""
    config = default_system_config()
    rows = {}
    for name in names:
        records = None
        kernels = {}
        for kernel in BENCH_KERNELS:
            trace = make_trace(name, length=length, seed=seed)
            records = len(trace)
            started = time.perf_counter()
            SystemSimulator(config, [trace], seed=seed, kernel=kernel).run()
            elapsed = time.perf_counter() - started
            kernels[kernel] = {
                "seconds": round(elapsed, 4),
                "records_per_sec": round(records / elapsed) if elapsed else None,
            }
        scalar_s = kernels["scalar"]["seconds"]
        batch_s = kernels["batch"]["seconds"]
        rows[name] = {
            "records": records,
            "kernels": kernels,
            "batch_speedup": round(scalar_s / batch_s, 2) if batch_s else None,
            "seconds": kernels["scalar"]["seconds"],
            "records_per_sec": kernels["scalar"]["records_per_sec"],
        }
    return rows


def _time_driver(driver, length, executor):
    started = time.perf_counter()
    driver(length=length, executor=executor)
    return time.perf_counter() - started


def bench_figures(figures, length, workers, cache_root):
    """Serial / pool-cold-cache / warm-cache wall-clock per figure."""
    rows = {}
    for name, driver in figures.items():
        serial = _time_driver(driver, length, ExperimentExecutor())
        cache = ResultCache(os.path.join(cache_root, name))
        pool = _time_driver(
            driver, length, ExperimentExecutor(workers=workers, cache=cache)
        )
        warm_executor = ExperimentExecutor(cache=cache)
        warm = _time_driver(driver, length, warm_executor)
        rows[name] = {
            "serial_seconds": round(serial, 3),
            "pool_seconds": round(pool, 3),
            "pool_workers": workers,
            "pool_speedup": round(serial / pool, 2) if pool else None,
            "warm_cache_seconds": round(warm, 3),
            "warm_cache_speedup": round(serial / warm, 2) if warm else None,
            "warm_cache_simulated": warm_executor.counters["simulated"],
        }
    return rows


#: Trajectory entries kept in the artifact (newest last).
TRAJECTORY_LIMIT = 24


def _trajectory_entry(payload):
    """Compact one full bench payload into a single history row."""
    workloads = payload.get("workloads", {})
    rates = sorted(
        row["records_per_sec"]
        for row in workloads.values()
        if row.get("records_per_sec")
    )
    entry = {
        "package_version": payload.get("package_version"),
        "generated_utc": payload.get("generated_utc"),
        "length": payload.get("length"),
        "cpu_count": payload.get("cpu_count"),
        "min_records_per_sec": rates[0] if rates else None,
        "max_records_per_sec": rates[-1] if rates else None,
    }
    speedups = sorted(
        row["batch_speedup"]
        for row in workloads.values()
        if row.get("batch_speedup")
    )
    if speedups:
        entry["min_batch_speedup"] = speedups[0]
        entry["max_batch_speedup"] = speedups[-1]
    figures = payload.get("figures", {})
    if figures:
        entry["warm_cache_speedups"] = {
            name: row.get("warm_cache_speedup") for name, row in figures.items()
        }
        # Pre-pool artifacts (schema <= 3) recorded ``parallel_speedup``
        # from the retired per-cell-spawn executor; only carry the pool
        # number forward when a row actually has one.
        pool = {
            name: row["pool_speedup"]
            for name, row in figures.items()
            if row.get("pool_speedup") is not None
        }
        if pool:
            entry["pool_speedups"] = pool
    return entry


def load_trajectory(path):
    """History to embed in the next artifact: the previous file's
    trajectory plus the previous run itself, capped at
    :data:`TRAJECTORY_LIMIT`.  Missing or unreadable files start an
    empty history rather than failing the bench."""
    try:
        with open(path) as stream:
            previous = json.load(stream)
    except (OSError, ValueError):
        return []
    trajectory = list(previous.get("trajectory", []))
    trajectory.append(_trajectory_entry(previous))
    return trajectory[-TRAJECTORY_LIMIT:]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m tools.bench",
        description="Time the simulator hot loop and the experiment "
        "executor; write BENCH_perf.json.",
    )
    parser.add_argument(
        "--length", type=int, default=4000, help="records per trace (default 4000)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="persistent pool size for the pooled runs (wins over --jobs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="legacy alias for --workers"
    )
    parser.add_argument(
        "--figures",
        default=",".join(BENCH_FIGURES),
        help="comma-separated figure drivers to time (default: all benched)",
    )
    parser.add_argument(
        "--skip-figures", action="store_true", help="only bench workload throughput"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_perf.json", help="output path"
    )
    args = parser.parse_args(argv)

    figures = {}
    if not args.skip_figures:
        for name in args.figures.split(","):
            name = name.strip()
            if name not in BENCH_FIGURES:
                parser.error(
                    "unknown figure %r (benched: %s)"
                    % (name, ", ".join(BENCH_FIGURES))
                )
            figures[name] = BENCH_FIGURES[name]

    print("benching workloads (length=%d, kernels: %s) ..."
          % (args.length, "/".join(BENCH_KERNELS)))
    workloads = bench_workloads(workload_names(), args.length)
    for name, row in workloads.items():
        print(
            "  %-20s %8s rec/s scalar, %8s rec/s batch (%.2fx)"
            % (
                name,
                row["kernels"]["scalar"]["records_per_sec"],
                row["kernels"]["batch"]["records_per_sec"],
                row["batch_speedup"],
            )
        )

    cpu_count = multiprocessing.cpu_count()
    workers = args.workers if args.workers is not None else args.jobs
    figure_rows = {}
    if figures:
        if workers > cpu_count:
            print(
                "note: --workers %d exceeds the %d available CPU(s); the pool "
                "adds overhead without speedup on this host" % (workers, cpu_count)
            )
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_root:
            for name in figures:
                print("benching %s (serial / workers=%d / warm cache) ..."
                      % (name, workers))
                figure_rows.update(
                    bench_figures({name: figures[name]}, args.length, workers,
                                  cache_root)
                )
                row = figure_rows[name]
                print(
                    "  serial %.2fs, pool %.2fs (%.2fx), warm cache %.2fs "
                    "(%.2fx, %d simulated)"
                    % (
                        row["serial_seconds"],
                        row["pool_seconds"],
                        row["pool_speedup"],
                        row["warm_cache_seconds"],
                        row["warm_cache_speedup"],
                        row["warm_cache_simulated"],
                    )
                )

    trajectory = load_trajectory(args.output)
    payload = {
        "schema": 4,
        "trajectory": trajectory,
        "package_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "generated_utc": time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime()),
        "length": args.length,
        "workloads": workloads,
        "figures": figure_rows,
    }
    with open(args.output, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(
        "wrote %s (%d trajectory entries carried forward)"
        % (args.output, len(trajectory))
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
