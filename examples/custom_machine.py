#!/usr/bin/env python3
"""Composing a custom machine from the subsystem packages.

The high-level runner covers the paper's experiments; this example shows
the escape hatch: build your own workload with :class:`TraceBuilder`,
reconfigure individual hardware structures, and read detailed statistics
off the simulated components afterwards.

The scenario: a key-value store doing skewed point lookups over a 512 GB
sparse table, evaluated on a machine with a *small* LLC (to emulate cache
partitioning) and a closed-row DRAM policy -- then the same machine with
TEMPO.

Run with::

    python examples/custom_machine.py
"""

from dataclasses import replace

from repro import SystemSimulator, default_system_config, speedup_fraction
from repro.common.config import CacheConfig
from repro.workloads.base import GB, MB, TraceBuilder


def build_kv_store_trace(length=10000, seed=11):
    builder = TraceBuilder("kvstore", seed)
    index = builder.region("btree_index", 96 * MB)          # hot internal nodes
    table = builder.region("table", 512 * GB, thp_eligibility=0.6)
    log = builder.region("write_log", 16 * GB)
    rng = builder.rng
    log_offset = 0
    while len(builder) < length:
        for _ in range(3):  # descend the index (cache-friendly)
            builder.read(index.zipf(skew=0.85), gap=3)
        value = table.clustered(hot_chunks=1536, tail=0.005)
        builder.read(value, gap=2)                            # the point lookup
        if rng.random() < 0.8:
            builder.read(table.at(value - table.base + 64), gap=1)  # value spills a line
        if rng.random() < 0.15:                               # occasional write
            builder.write(log.at(log_offset), gap=4)
            log_offset += 64
    return builder.build()


def build_machine(tempo):
    config = default_system_config()
    config = config.copy_with(
        llc=CacheConfig(size_bytes=1024 * 1024, assoc=16),    # partitioned LLC
        row_policy=replace(config.row_policy, policy="closed"),
    )
    return config.with_tempo(tempo)


def main():
    trace = build_kv_store_trace()
    print("Custom workload: %s, %.0f GB footprint, %d references"
          % (trace.name, trace.footprint_bytes / 2**30, len(trace)))
    print("Custom machine: 1 MB LLC partition, closed-row DRAM policy")
    print()

    results = {}
    for label, tempo in (("baseline", False), ("tempo", True)):
        simulator = SystemSimulator(build_machine(tempo), [trace])
        results[label] = simulator.run()
        core = simulator.cores[0]
        stats = simulator.controller.stats.as_dict()
        print("[%s]" % label)
        print("  cycles:              %d" % results[label].core.cycles)
        print("  TLB miss rate:       %.1f%%" % (100 * core.tlb.miss_rate()))
        print("  MMU cache hit rate:  %.1f%%" % (100 * core.mmu_caches.hit_rate()))
        print("  LLC hit rate:        %.1f%%" % (100 * simulator.hierarchy.llc_hit_rate()))
        print("  DRAM requests:       %d demand, %d page-table, %d prefetch"
              % (stats.get("controller.served_demand", 0),
                 stats.get("controller.served_pt", 0),
                 stats.get("controller.served_tempo_prefetch", 0)))
        print()

    print("TEMPO on the custom machine: %.1f%% faster"
          % (100 * speedup_fraction(results["baseline"], results["tempo"])))


if __name__ == "__main__":
    main()
