#!/usr/bin/env python3
"""Multiprogrammed fairness with the BLISS scheduler (paper Sec. 6.3).

Runs a four-application mix (two memory-intensive big-data apps, two
cache-friendly Spec/Parsec stand-ins) sharing the LLC and memory
controller under BLISS, with and without TEMPO, and reports the two
metrics the paper uses: weighted speedup and maximum slowdown.

Run with::

    python examples/multiprogram_fairness.py [length]
"""

import sys
from dataclasses import replace

from repro import MulticoreSimulator, default_system_config, make_trace

MIX = ("xsbench", "mcf", "bzip2_small", "gcc_small")


def bliss_config(tempo):
    config = default_system_config()
    config = config.copy_with(scheduler=replace(config.scheduler, policy="bliss"))
    return config.with_tempo(tempo)


def main():
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    traces = [make_trace(name, length=length, seed=index) for index, name in enumerate(MIX)]
    print("Mix: %s (%d refs/app)" % (" + ".join(MIX), length))
    print()

    baseline = MulticoreSimulator(bliss_config(tempo=False), traces).run()
    tempo = MulticoreSimulator(bliss_config(tempo=True), traces).run(
        alone_results=baseline.alone
    )

    print("%-22s %18s %18s" % ("", "BLISS baseline", "BLISS + TEMPO"))
    print("%-22s %18.3f %18.3f" % ("weighted speedup", baseline.weighted_speedup, tempo.weighted_speedup))
    print("%-22s %18.3f %18.3f" % ("max slowdown", baseline.max_slowdown, tempo.max_slowdown))
    print()

    print("Per-application slowdown vs. running alone:")
    for shared_base, shared_tempo, alone in zip(
        baseline.shared.cores, tempo.shared.cores, baseline.alone
    ):
        print(
            "  %-18s %6.2fx -> %5.2fx"
            % (
                shared_base.workload_name,
                shared_base.cycles / alone.core.cycles,
                shared_tempo.cycles / alone.core.cycles,
            )
        )

    ws_gain = (tempo.weighted_speedup - baseline.weighted_speedup) / baseline.weighted_speedup
    ms_gain = (baseline.max_slowdown - tempo.max_slowdown) / baseline.max_slowdown
    print()
    print("TEMPO improves weighted speedup by %.1f%% and the slowest" % (100 * ws_gain))
    print("application by %.1f%% -- with prefetches counted at half weight" % (100 * ms_gain))
    print("in BLISS's blacklisting counters and a 15-cycle grace period after")
    print("each prefetch (the paper's Sec. 4.3 integration).")


if __name__ == "__main__":
    main()
