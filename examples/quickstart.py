#!/usr/bin/env python3
"""Quickstart: run one workload with and without TEMPO.

This is the 30-second tour of the library: build a trace for the paper's
most translation-bound workload (xsbench), simulate the baseline machine
and the TEMPO machine on the same trace, and print what changed.

Run with::

    python examples/quickstart.py [workload] [length]
"""

import sys

from repro import run_baseline_and_tempo, speedup_fraction
from repro.sim.runner import energy_fraction


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "xsbench"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 12000

    print("Simulating %r (%d references) ..." % (workload, length))
    baseline, tempo = run_baseline_and_tempo(workload, length=length)

    base_core = baseline.core
    print()
    print("Baseline machine (no TEMPO)")
    print("  runtime:                 %d cycles" % base_core.cycles)
    print("  DRAM page-table walks:   %5.1f%% of runtime" % (100 * base_core.runtime.fraction("ptw")))
    print("  DRAM replay accesses:    %5.1f%% of runtime" % (100 * base_core.runtime.fraction("replay")))
    print("  other DRAM accesses:     %5.1f%% of runtime" % (100 * base_core.runtime.fraction("other")))
    print("  replays following a DRAM walk that also hit DRAM: %.1f%%"
          % (100 * base_core.dram_refs.replay_follows_ptw_rate()))
    print("  2 MB superpage coverage: %5.1f%% of footprint" % (100 * baseline.superpage_fraction))

    tempo_core = tempo.core
    service = tempo_core.replay_service
    print()
    print("TEMPO machine (translation-triggered prefetching)")
    print("  runtime:                 %d cycles" % tempo_core.cycles)
    print("  replays served from LLC:        %5.1f%%" % (100 * service.fraction("llc")))
    print("  replays served from row buffer: %5.1f%%" % (100 * service.fraction("row_buffer")))
    print("  replays unaided:                %5.1f%%" % (100 * service.fraction("unaided")))

    print()
    print("TEMPO improvement: %.1f%% performance, %.1f%% energy"
          % (100 * speedup_fraction(baseline, tempo),
             100 * energy_fraction(baseline, tempo)))


if __name__ == "__main__":
    main()
