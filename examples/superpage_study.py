#!/usr/bin/env python3
"""Superpage sensitivity study (the paper's Figure 13, as a script).

Sweeps the OS page-size policy for one workload -- 4 KB only, transparent
hugepages under increasing memhog fragmentation, explicit hugetlbfs 2 MB
and 1 GB pools -- and prints TEMPO's benefit against the superpage
coverage each policy achieves.

Run with::

    python examples/superpage_study.py [workload] [length]
"""

import sys
from dataclasses import replace

from repro import default_system_config, make_trace, speedup_fraction
from repro.sim.system import SystemSimulator


def variants(base_vm):
    yield "4 KB pages only", replace(base_vm, thp_enabled=False)
    for memhog in (0.75, 0.50, 0.25, 0.0):
        yield (
            "THP, memhog %d%%" % int(memhog * 100),
            replace(base_vm, thp_enabled=True, memhog_fraction=memhog),
        )
    yield "hugetlbfs 2 MB", replace(base_vm, hugetlbfs_2m=True)
    yield "hugetlbfs 1 GB", replace(base_vm, hugetlbfs_1g=True)


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "xsbench"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 8000
    trace = make_trace(workload, length=length)

    print("Workload %r: TEMPO benefit vs. superpage coverage" % workload)
    print()
    print("%-18s  %10s  %12s  %13s" % ("policy", "coverage", "DRAM walks", "TEMPO benefit"))
    print("-" * 60)

    base = default_system_config()
    for label, vm_config in variants(base.vm):
        config = base.copy_with(vm=vm_config)
        baseline = SystemSimulator(config.with_tempo(False), [trace]).run()
        tempo = SystemSimulator(config.with_tempo(True), [trace]).run()
        print(
            "%-18s  %9.1f%%  %12d  %12.1f%%"
            % (
                label,
                100 * baseline.superpage_fraction,
                baseline.core.dram_refs.walks_with_dram_leaf,
                100 * speedup_fraction(baseline, tempo),
            )
        )

    print()
    print("The paper's trend: more superpage coverage -> fewer DRAM page-table")
    print("walks -> less for TEMPO to accelerate, yet the benefit stays positive")
    print("wherever walks still reach DRAM.")


if __name__ == "__main__":
    main()
