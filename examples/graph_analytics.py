#!/usr/bin/env python3
"""Graph analytics deep-dive: why BFS thrashes the TLB and how TEMPO's
two prefetch destinations (row buffer vs. LLC) each contribute.

The script runs the graph500-style BFS workload on three machines:

1. baseline (no TEMPO),
2. TEMPO with only the DRAM row-buffer prefetch,
3. full TEMPO (row buffer + LLC prefetch),

and prints a breakdown showing how each step converts replay DRAM
accesses into cheaper hits -- the mechanism of the paper's Figure 6.

Run with::

    python examples/graph_analytics.py [length]
"""

import sys

from repro import SystemSimulator, default_system_config, make_trace


def run(config, trace, label):
    result = SystemSimulator(config, [trace]).run()
    core = result.core
    print("%-28s %10d cycles | replay DRAM time %5.1f%%"
          % (label, core.cycles, 100 * core.runtime.fraction("replay")))
    return result


def main():
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 12000
    trace = make_trace("graph500", length=length)
    print("BFS over a scale-free graph: %d references, %.0f GB sparse footprint"
          % (len(trace), trace.footprint_bytes / 2**30))
    print()

    base_config = default_system_config().with_tempo(False)
    row_only = default_system_config().with_tempo(True, llc_prefetch=False)
    full = default_system_config().with_tempo(True)

    baseline = run(base_config, trace, "baseline")
    row_result = run(row_only, trace, "TEMPO row-buffer only")
    full_result = run(full, trace, "TEMPO row buffer + LLC")

    print()
    for label, result in (("row-only", row_result), ("full", full_result)):
        service = result.core.replay_service
        print("TEMPO %-9s replay service: %4.1f%% LLC, %4.1f%% row buffer, %4.1f%% unaided"
              % (label, 100 * service.fraction("llc"),
                 100 * service.fraction("row_buffer"),
                 100 * service.fraction("unaided")))

    def improvement(result):
        return (baseline.total_cycles - result.total_cycles) / baseline.total_cycles

    print()
    print("Row-buffer prefetch alone recovers %.1f%%;" % (100 * improvement(row_result)))
    print("adding the LLC prefetch brings the total to %.1f%%." % (100 * improvement(full_result)))


if __name__ == "__main__":
    main()
