"""Figure 14: TEMPO under adaptive / open / closed row policies, each
normalized to its own baseline.

Paper shape: TEMPO improves all three policies for every workload
(e.g. xsbench's worst case, closed-row, is still boosted ~25%).
"""

from benchmarks._util import run_once
from repro.analysis import fig14_row_policies


def test_fig14_row_policies(benchmark):
    result = run_once(benchmark, fig14_row_policies, length=20000)
    for row in result["rows"]:
        assert row["performance_improvement"] > 0.02, row
