"""Ablation benchmarks for TEMPO's individual design choices.

Not figures from the paper -- these isolate the contribution of each
mechanism DESIGN.md calls out: the two prefetch destinations, the
transaction-queue grouping, the activation-latency budget, and the
choice of memory scheduler.
"""

from benchmarks._util import run_once
from repro.analysis import ablations


def test_ablation_prefetch_destinations(benchmark):
    result = run_once(benchmark, ablations.prefetch_destinations, length=14000)
    for row in result["rows"]:
        # Row-buffer prefetching alone recovers part of the benefit ...
        assert row["row_buffer_only"] > 0.02, row
        # ... and adding the LLC prefetch recovers strictly more.
        assert row["row_buffer_plus_llc"] > row["row_buffer_only"], row


def test_ablation_txq_grouping(benchmark):
    result = run_once(benchmark, ablations.txq_grouping, length=14000)
    for row in result["rows"]:
        assert row["with_grouping"] > 0.04, row
        # Grouping is a refinement: it must never cost more than a
        # couple of points relative to the ungrouped scheduler.
        assert row["with_grouping"] >= row["without_grouping"] - 0.02, row


def test_ablation_prefetch_latency(benchmark):
    result = run_once(benchmark, ablations.prefetch_row_latency, length=14000)
    rows = {row["prefetch_row_cycles"]: row for row in result["rows"]}
    # Within the paper's 60-100 cycle budget the LLC prefetch is timely.
    assert rows[60]["llc_fraction"] > 0.8
    # Past the slack window, LLC timeliness collapses and replays fall
    # back to row-buffer hits -- retaining roughly half of the benefit.
    assert rows[100]["llc_fraction"] < 0.2
    assert rows[100]["row_buffer_fraction"] > 0.6
    assert 0.0 < rows[100]["performance_improvement"] < rows[60]["performance_improvement"]
    # Pathologically slow prefetches hog banks long enough to *hurt* --
    # the flip side of the paper's "delaying prefetches counteracts
    # TEMPO's benefits" (Sec. 4.3).
    assert rows[200]["performance_improvement"] < rows[140]["performance_improvement"]
    # Faster prefetch never performs worse.
    assert rows[40]["performance_improvement"] >= rows[200]["performance_improvement"] - 0.01


def test_ablation_schedulers(benchmark):
    result = run_once(benchmark, ablations.scheduler_sensitivity, length=14000)
    for row in result["rows"]:
        assert row["performance_improvement"] > 0.02, row
