"""Figure 12: TEMPO with and without the IMP indirect-memory prefetcher.

Paper shape: TEMPO remains useful -- and is typically *more* useful --
when IMP prefetching is on, with the most irregular workloads (xsbench,
spmv) aided most.
"""

from benchmarks._util import run_once
from repro.analysis import fig12_imp_interaction


def test_fig12_imp_interaction(benchmark):
    result = run_once(benchmark, fig12_imp_interaction, length=20000)
    rows = result["rows"]
    for row in rows:
        assert row["improvement_no_imp"] > 0.03, row
        assert row["improvement_with_imp"] > 0.03, row
    mean_without = sum(r["improvement_no_imp"] for r in rows) / len(rows)
    mean_with = sum(r["improvement_with_imp"] for r in rows) / len(rows)
    # On average, IMP amplifies TEMPO (allow a small tolerance per-run).
    assert mean_with > mean_without - 0.02
