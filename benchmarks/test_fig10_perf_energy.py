"""Figure 10: TEMPO's headline performance (paper: 10-30%) and energy
(paper: 1-14%) improvements, plus the fraction of each workload's
footprint backed by 2 MB superpages (paper: >50% for most).
"""

from benchmarks._util import run_once
from repro.analysis import fig10_performance_energy


def test_fig10_performance_energy(benchmark):
    result = run_once(benchmark, fig10_performance_energy, length=20000)
    for row in result["rows"]:
        assert row["performance_improvement"] > 0.04, row
        assert row["energy_improvement"] > 0.0, row
        assert row["superpage_fraction"] > 0.35, row
    best = max(row["performance_improvement"] for row in result["rows"])
    assert best > 0.12
