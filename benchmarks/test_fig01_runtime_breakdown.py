"""Figure 1: fraction of runtime spent in DRAM page-table accesses,
DRAM replay accesses, and other DRAM accesses (baseline, no TEMPO).

Paper shape: PTW and replay DRAM time are each a large fraction
(roughly 10-40% / 10-30%) of runtime for every big-data workload.
"""

from benchmarks._util import run_once
from repro.analysis import fig01_runtime_breakdown


def test_fig01_runtime_breakdown(benchmark):
    result = run_once(benchmark, fig01_runtime_breakdown, length=20000)
    for row in result["rows"]:
        assert row["dram_ptw_fraction"] > 0.04, row
        assert row["dram_replay_fraction"] > 0.05, row
        total_dram = (
            row["dram_ptw_fraction"]
            + row["dram_replay_fraction"]
            + row["dram_other_fraction"]
        )
        assert total_dram < 1.0
