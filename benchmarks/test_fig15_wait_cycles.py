"""Figure 15: sweeping the anticipation window -- how long a just-read
page-table row stays open before the prefetch closes it.

Paper shape: small waits (5-15 cycles) help by 1-4% over immediate
prefetching, with 10 cycles the chosen default; overly long waits stop
helping because prefetches get delayed.
"""

from benchmarks._util import run_once
from repro.analysis import fig15_wait_cycles


def test_fig15_wait_cycles(benchmark):
    result = run_once(
        benchmark,
        fig15_wait_cycles,
        workloads=("xsbench", "graph500", "illustris", "mcf"),
        length=16000,
        waits=(0, 5, 10, 15),
    )
    by_workload = {}
    for row in result["rows"]:
        by_workload.setdefault(row["workload"], {})[row["wait_cycles"]] = row[
            "performance_improvement"
        ]
    for name, sweep in by_workload.items():
        # Every wait setting still shows TEMPO's full benefit band.
        assert all(value > 0.05 for value in sweep.values()), name
        # The swept deltas are small (the paper zooms its y-axis).
        assert max(sweep.values()) - min(sweep.values()) < 0.08, name
