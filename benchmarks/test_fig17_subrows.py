"""Figure 17: sub-row buffers (8 x 1 KB, FOA and POA allocation) with a
sweep of how many sub-rows are dedicated to TEMPO's prefetches.

Paper shape: TEMPO improves both allocation schemes; dedicating ~2 of 8
sub-rows is the sweet spot, while dedicating too many (4+) deprioritizes
demand traffic and gives back some of the gain.
"""

from benchmarks._util import run_once
from repro.analysis import fig17_subrows


def test_fig17_subrows(benchmark):
    result = run_once(benchmark, fig17_subrows, length=5000, dedicated_options=(0, 1, 2, 4))
    rows = result["rows"]
    for row in rows:
        assert row["ws_improvement"] > 0.0, row

    def mean_ws(dedicated):
        matched = [row["ws_improvement"] for row in rows if row["dedicated_subrows"] == dedicated]
        return sum(matched) / len(matched)

    # Dedicating a couple of sub-rows should not lose to dedicating half
    # the buffer (the paper's "too many hurts" trend).
    assert mean_ws(2) >= mean_ws(4) - 0.005
