"""Figure 11 (right): TEMPO must not harm small-footprint Spec/Parsec
workloads (paper: perf ~+1-2%, energy ~1%, never slower).
"""

from benchmarks._util import run_once
from repro.analysis import fig11_small_footprint


def test_fig11_small_footprint_do_no_harm(benchmark):
    result = run_once(benchmark, fig11_small_footprint, length=14000)
    small = [row for row in result["rows"] if row["group"] == "small"]
    big = [row for row in result["rows"] if row["group"] == "bigdata"]
    assert small and big
    for row in small:
        assert row["performance_improvement"] > -0.02, row
        assert row["energy_improvement"] > -0.02, row
    mean_small = sum(r["performance_improvement"] for r in small) / len(small)
    mean_big = sum(r["performance_improvement"] for r in big) / len(big)
    assert mean_big > mean_small + 0.03
