"""Figure 11 (left): where TEMPO-aided replays are served from.

Paper shape: the bulk (75%+) hit in the LLC, most of the rest in the row
buffer, and only a tiny pathological fraction is unaided.
"""

from benchmarks._util import run_once
from repro.analysis import fig11_replay_service


def test_fig11_replay_service_breakdown(benchmark):
    result = run_once(benchmark, fig11_replay_service, length=20000)
    for row in result["rows"]:
        assert row["llc_fraction"] > 0.60, row
        assert row["unaided_fraction"] < 0.15, row
        covered = row["llc_fraction"] + row["row_buffer_fraction"]
        assert covered > 0.85, row
