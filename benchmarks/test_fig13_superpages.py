"""Figure 13: TEMPO's benefit as a function of superpage coverage.

The x-axis sweeps the paper's seven page-size configurations (4 KB only;
THP with memhog at 75/50/25/0%; hugetlbfs 2 MB; hugetlbfs 1 GB).  Paper
shape: benefit decreases as coverage rises, the 4 KB-only point is the
best case (25%+), and reasonable fragmentation keeps 10-30% benefits.
"""

from benchmarks._util import run_once
from repro.analysis import fig13_superpage_sensitivity


def test_fig13_superpage_sensitivity(benchmark):
    result = run_once(
        benchmark,
        fig13_superpage_sensitivity,
        workloads=("xsbench", "graph500", "mcf", "illustris"),
        length=14000,
    )
    by_workload = {}
    for row in result["rows"]:
        by_workload.setdefault(row["workload"], {})[row["variant"]] = row
    for name, variants in by_workload.items():
        best = variants["4k-only"]["performance_improvement"]
        assert best > 0.10, name
        # Coverage rises monotonically along the paper's configuration
        # order from THP-fragmented to hugetlbfs.
        assert variants["4k-only"]["superpage_fraction"] == 0.0
        assert (
            variants["thp-memhog75"]["superpage_fraction"]
            < variants["thp-memhog0"]["superpage_fraction"]
            <= variants["hugetlbfs-2m"]["superpage_fraction"]
        )
        # More superpage coverage -> less TEMPO benefit (the core trend).
        assert best >= variants["thp-memhog0"]["performance_improvement"] - 0.02, name
        assert (
            variants["thp-memhog75"]["performance_improvement"]
            >= variants["hugetlbfs-2m"]["performance_improvement"] - 0.03
        ), name
