"""Shared helpers for the figure benchmarks."""

from repro.analysis.tables import render_experiment


def run_once(benchmark, driver, **kwargs):
    """Execute *driver* exactly once under the benchmark timer and print
    the measured series next to the paper's claim."""
    result = benchmark.pedantic(driver, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(render_experiment(result))
    return result
