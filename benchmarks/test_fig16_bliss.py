"""Figure 16: TEMPO atop the BLISS fairness scheduler on multiprogrammed
mixes -- weighted speedup and maximum slowdown as functions of (left) the
BLISS counting weight for prefetches and (right) the post-prefetch grace
period.

Paper shape: every configuration improves weighted speedup and the
slowest application; the grace period mainly moves the max-slowdown
metric, with 15 cycles the best choice.
"""

from benchmarks._util import run_once
from repro.analysis import fig16_bliss


def test_fig16_bliss(benchmark):
    result = run_once(benchmark, fig16_bliss, length=5000)
    weight_rows = result["weight_rows"]
    grace_rows = result["grace_rows"]
    for row in weight_rows + grace_rows:
        assert row["ws_improvement"] > 0.0, row
        assert row["ms_improvement"] > 0.0, row

    def mean(rows, key, value):
        matched = [row["ms_improvement"] for row in rows if row[key] == value]
        return sum(matched) / len(matched)

    # Grace period: 15 cycles should be competitive-or-better on
    # fairness (the paper's deltas here are ~1%, within run noise at
    # benchmark trace lengths, so allow a small tolerance).
    assert mean(grace_rows, "grace_period", 15) >= mean(grace_rows, "grace_period", 0) - 0.01
