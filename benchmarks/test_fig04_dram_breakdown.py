"""Figure 4: fraction of DRAM *references* devoted to page-table walks,
replays, and other accesses; plus the leaf-PT share (paper: 96%+) and
the replay-follows-PTW rate (paper: 98%+).
"""

from benchmarks._util import run_once
from repro.analysis import fig04_dram_reference_breakdown


def test_fig04_dram_reference_breakdown(benchmark):
    result = run_once(benchmark, fig04_dram_reference_breakdown, length=20000)
    for row in result["rows"]:
        assert 0.05 < row["ptw_fraction"] < 0.60, row
        assert row["replay_fraction"] > 0.10, row
        assert row["leaf_fraction_of_ptw"] > 0.60, row
        assert row["replay_follows_ptw_rate"] > 0.90, row
    mean_leaf = sum(r["leaf_fraction_of_ptw"] for r in result["rows"]) / len(result["rows"])
    assert mean_leaf > 0.80
