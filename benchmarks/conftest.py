"""Benchmark-harness configuration.

Each ``bench_fig*.py`` regenerates one figure of the paper's evaluation:
it runs the corresponding experiment driver once under pytest-benchmark
(timing the whole experiment), prints the measured series next to the
paper's claim, and asserts the qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

collect_ignore_glob = []


def run_once(benchmark, driver, **kwargs):
    """Execute *driver* exactly once under the benchmark timer."""
    return benchmark.pedantic(driver, kwargs=kwargs, rounds=1, iterations=1)
