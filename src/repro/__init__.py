"""TEMPO: Translation-Triggered Prefetching -- a full-system reproduction
of Bhattacharjee's ASPLOS 2017 paper.

Quick start::

    from repro import run_baseline_and_tempo, speedup_fraction
    baseline, tempo = run_baseline_and_tempo("xsbench", length=24000)
    print("TEMPO speeds xsbench up by %.1f%%"
          % (100 * speedup_fraction(baseline, tempo)))

The public surface:

* :func:`~repro.sim.runner.run_workload` /
  :func:`~repro.sim.runner.run_baseline_and_tempo` -- one-call runs.
* :func:`~repro.common.config.default_system_config` -- the Figure-9
  machine; every structure is a dataclass you can override.
* :mod:`repro.workloads` -- the paper's eight big-data workloads plus
  small-footprint stand-ins.
* :mod:`repro.analysis` -- one driver per evaluation figure.
* The subsystem packages (``vm``, ``mmu``, ``cache``, ``dram``,
  ``sched``, ``core``, ``sim``) for anyone composing a custom machine.
"""

from repro.common.config import (
    SystemConfig,
    TempoConfig,
    default_system_config,
)
from repro.obs import EventTracer, MetricsRegistry, RunManifest
from repro.sim.metrics import SimulationResult
from repro.sim.multicore import MulticoreSimulator
from repro.sim.runner import (
    energy_fraction,
    run_baseline_and_tempo,
    run_workload,
    speedup_fraction,
)
from repro.sim.system import SystemSimulator
from repro.workloads.registry import make_trace, workload_names

__version__ = "1.1.0"

__all__ = [
    "SystemConfig",
    "TempoConfig",
    "default_system_config",
    "EventTracer",
    "MetricsRegistry",
    "RunManifest",
    "SimulationResult",
    "SystemSimulator",
    "MulticoreSimulator",
    "run_workload",
    "run_baseline_and_tempo",
    "speedup_fraction",
    "energy_fraction",
    "make_trace",
    "workload_names",
    "__version__",
]
