"""Three-level cache hierarchy: per-core L1/L2, shared write-back LLC.

The hierarchy is the timing bridge between the core/walker and DRAM:
``access`` reports where a reference hits and how long that took; on a
full miss the caller performs the DRAM access and then calls
``fill_from_memory``.  TEMPO's LLC prefetch enters through
``prefetch_fill_llc`` (paper Figure 7, step 7).

Dirty victims cascade to the next level (allocate-on-writeback); dirty
LLC victims are returned to the caller so the memory controller can
account the DRAM write traffic.
"""

from repro.common.stats import StatGroup
from repro.cache.cache import Cache


class AccessResult:
    """Outcome of a hierarchy probe."""

    __slots__ = ("hit_level", "latency", "needs_dram")

    def __init__(self, hit_level, latency, needs_dram):
        self.hit_level = hit_level
        self.latency = latency
        self.needs_dram = needs_dram

    def __repr__(self):
        where = self.hit_level if self.hit_level else "dram"
        return "AccessResult(%s, %d cycles)" % (where, self.latency)


class CacheHierarchy:
    """L1-D and L2 per core, one shared LLC."""

    def __init__(self, system_config, num_cores=None, name="caches"):
        config = system_config
        self.config = config
        self.num_cores = num_cores if num_cores is not None else config.num_cores
        self._l1_latency = config.core.l1_latency
        self._l2_latency = config.core.l2_latency
        self._llc_latency = config.core.llc_latency
        self.l1 = [Cache(config.l1, "l1.%d" % cpu) for cpu in range(self.num_cores)]
        self.l2 = [Cache(config.l2, "l2.%d" % cpu) for cpu in range(self.num_cores)]
        self.llc = Cache(config.llc, "llc")
        self._pending_dram_writebacks = []
        self.stats = StatGroup(name)
        #: Nullable utilization tracks (:mod:`repro.obs.timeline`),
        #: per-core for L1/L2, one shared track for the LLC.
        self._util_l1 = None
        self._util_l2 = None
        self._util_llc = None

    def attach_util(self, l1_tracks, l2_tracks, llc_track):
        """Wire busy/idle accounting into the utilization ledger."""
        self._util_l1 = list(l1_tracks)
        self._util_l2 = list(l2_tracks)
        self._util_llc = llc_track

    def report_probe(self, cpu, result, start):
        """Report the per-level occupancy of one :meth:`access` probe
        beginning at *start*.  Probes are modelled sequentially: the L1
        array is busy until its latency, a deeper probe then occupies
        the L2 until its latency, and the LLC until its latency (a full
        miss spends the same LLC window discovering the miss)."""
        if self._util_llc is None:
            return
        self._util_l1[cpu].busy(start, start + self._l1_latency)
        if result.hit_level == "l1":
            return
        self._util_l2[cpu].busy(start + self._l1_latency, start + self._l2_latency)
        if result.hit_level == "l2":
            return
        self._util_llc.busy(start + self._l2_latency, start + self._llc_latency)

    def access(self, cpu, paddr, is_write=False):
        """Probe L1 -> L2 -> LLC for the line holding *paddr*.

        Returns an :class:`AccessResult`; ``needs_dram`` means the caller
        must fetch from memory and then call :meth:`fill_from_memory`.
        """
        if self.l1[cpu].lookup(paddr, is_write):
            return AccessResult("l1", self._l1_latency, False)
        if self.l2[cpu].lookup(paddr, is_write):
            self._fill_upper(cpu, paddr, is_write, into_l2=False)
            return AccessResult("l2", self._l2_latency, False)
        if self.llc.lookup(paddr, is_write):
            self._fill_upper(cpu, paddr, is_write, into_l2=True)
            return AccessResult("llc", self._llc_latency, False)
        # Full miss: the caller goes to DRAM.  The latency here is the
        # time spent discovering the miss (the LLC tag lookup).
        return AccessResult(None, self._llc_latency, True)

    def _fill_upper(self, cpu, paddr, is_write, into_l2):
        """Refill L1 (and optionally L2) after a lower-level hit."""
        victim = self.l1[cpu].fill(paddr, is_write)
        if victim is not None and victim.dirty:
            self._writeback_to_l2(cpu, victim)
        if into_l2:
            victim = self.l2[cpu].fill(paddr)
            if victim is not None and victim.dirty:
                self._writeback_to_llc(victim)

    def _writeback_to_l2(self, cpu, victim):
        deeper = self.l2[cpu].fill(victim.paddr, is_write=True)
        self.stats.counter("l1_writebacks").add()
        if deeper is not None and deeper.dirty:
            self._writeback_to_llc(deeper)

    def _writeback_to_llc(self, victim):
        deeper = self.llc.fill(victim.paddr, is_write=True)
        self.stats.counter("l2_writebacks").add()
        if deeper is not None and deeper.dirty:
            self._pending_dram_writebacks.append(deeper)

    def fill_from_memory(self, cpu, paddr, is_write=False):
        """Install a DRAM-fetched line in all three levels.

        Dirty LLC victims accumulate; collect them with
        :meth:`drain_writebacks`.
        """
        llc_victim = self.llc.fill(paddr)
        if llc_victim is not None and llc_victim.dirty:
            self._pending_dram_writebacks.append(llc_victim)
        l2_victim = self.l2[cpu].fill(paddr)
        if l2_victim is not None and l2_victim.dirty:
            self._writeback_to_llc(l2_victim)
        l1_victim = self.l1[cpu].fill(paddr, is_write)
        if l1_victim is not None and l1_victim.dirty:
            self._writeback_to_l2(cpu, l1_victim)

    def prefetch_fill_llc(self, paddr):
        """TEMPO's LLC prefetch: install the replay line in the LLC only
        (paper Figure 7, step 7)."""
        victim = self.llc.fill(paddr, is_prefetch=True)
        self.stats.counter("tempo_llc_prefetch_fills").add()
        if victim is not None and victim.dirty:
            self._pending_dram_writebacks.append(victim)

    def prefetch_fill_l1(self, cpu, paddr):
        """IMP-style prefetch fill: L1 + L2 + LLC (IMP prefetches into
        the L1 cache; inclusive fill keeps the model consistent)."""
        self.fill_from_memory(cpu, paddr)
        self.stats.counter("imp_prefetch_fills").add()

    def drain_writebacks(self):
        """Collect dirty LLC victims accumulated since the last drain;
        the memory controller turns them into DRAM write traffic."""
        if not self._pending_dram_writebacks:
            return ()
        writebacks = tuple(self._pending_dram_writebacks)
        self._pending_dram_writebacks.clear()
        return writebacks

    def llc_hit_rate(self):
        return self.llc.hit_rate()

    def __repr__(self):
        return "CacheHierarchy(%d cores, LLC %d KB)" % (
            self.num_cores,
            self.config.llc.size_bytes // 1024,
        )
