"""On-chip cache hierarchy: set-associative caches, a three-level
hierarchy with a shared LLC, and cache prefetchers (IMP indirect-memory
prefetcher from the paper's Sec. 4.2 study, plus a stride baseline).
"""

from repro.cache.cache import Cache, EvictedLine
from repro.cache.hierarchy import AccessResult, CacheHierarchy
from repro.cache.imp import ImpPrefetcher
from repro.cache.stride import StridePrefetcher

__all__ = [
    "Cache",
    "EvictedLine",
    "AccessResult",
    "CacheHierarchy",
    "ImpPrefetcher",
    "StridePrefetcher",
]
