"""A classical stride prefetcher, used as a comparison baseline.

Tracks per-stream strides; after two consecutive accesses with the same
stride it prefetches ``degree`` lines ahead.  Irregular (graph/hash)
streams never lock a stride, which is exactly why the paper's workloads
defeat conventional prefetching and motivate IMP and TEMPO.
"""

from repro.common.constants import CACHE_LINE_BYTES
from repro.common.stats import StatGroup


class _StrideEntry:
    __slots__ = ("last_vaddr", "stride", "confidence")

    def __init__(self, vaddr):
        self.last_vaddr = vaddr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Per-stream stride detection with confidence counters."""

    def __init__(self, table_entries=16, degree=2, confidence_threshold=2, name="stride"):
        self.table_entries = table_entries
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self._table = {}
        self.stats = StatGroup(name)

    def observe(self, stream_id, vaddr):
        """Digest one access; returns prefetch target vaddrs."""
        if stream_id is None:
            return []
        entry = self._table.get(stream_id)
        if entry is None:
            if len(self._table) >= self.table_entries:
                del self._table[next(iter(self._table))]
                self.stats.counter("evictions").add()
            self._table[stream_id] = _StrideEntry(vaddr)
            return []
        # Refresh LRU position.
        del self._table[stream_id]
        self._table[stream_id] = entry
        stride = vaddr - entry.last_vaddr
        if stride == entry.stride and stride != 0:
            entry.confidence = min(entry.confidence + 1, self.confidence_threshold)
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_vaddr = vaddr
        if entry.confidence < self.confidence_threshold:
            return []
        targets = [
            vaddr + entry.stride * step for step in range(1, self.degree + 1)
        ]
        # Collapse targets that fall in the same cache line.
        unique = []
        seen_lines = set()
        for target in targets:
            line = target // CACHE_LINE_BYTES
            if line not in seen_lines:
                seen_lines.add(line)
                unique.append(target)
        self.stats.counter("prefetches_issued").add(len(unique))
        return unique
