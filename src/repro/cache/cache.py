"""A single set-associative, write-back cache level.

Lines are tracked by line id (``paddr >> 6``); LRU recency uses dict
insertion order, "random" replacement uses a deterministic stream so
experiments stay reproducible.
"""

from repro.common.config import CacheConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup


class EvictedLine:
    """A victim pushed out of a cache level."""

    __slots__ = ("line_id", "dirty")

    def __init__(self, line_id, dirty):
        self.line_id = line_id
        self.dirty = dirty

    @property
    def paddr(self):
        return self.line_id << 6

    def __repr__(self):
        return "EvictedLine(0x%x%s)" % (self.paddr, " dirty" if self.dirty else "")


class Cache:
    """One cache level; see :class:`~repro.common.config.CacheConfig`."""

    def __init__(self, config, name="cache", rng=None):
        if not isinstance(config, CacheConfig):
            raise ConfigError(
                "config must be a CacheConfig, got %s" % type(config).__name__,
                context={"cache": name, "config_type": type(config).__name__},
            )
        config.validate()
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._set_mask = self.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        # One dict per set: line_id -> dirty flag (LRU = first key).
        self._sets = [dict() for _ in range(self.num_sets)]
        self._random_replacement = config.replacement == "random"
        self._rng = rng if rng is not None else DeterministicRng(0, "cache.%s" % name)
        self.stats = StatGroup(name)
        # Hot-path counters, bound once (StatGroup lookups are dict+format).
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._fills = self.stats.counter("fills")
        self._prefetch_fills = self.stats.counter("prefetch_fills")
        self._evictions = self.stats.counter("evictions")
        self._dirty_evictions = self.stats.counter("dirty_evictions")

    def line_id(self, paddr):
        return paddr >> self._line_shift

    def _set_for(self, line_id):
        return self._sets[line_id & self._set_mask]

    def lookup(self, paddr, is_write=False):
        """Probe for the line holding *paddr*; updates recency and dirty
        state on a hit.  Returns True on hit."""
        line = self.line_id(paddr)
        entries = self._set_for(line)
        dirty = entries.pop(line, None)
        if dirty is None:
            self._misses.value += 1
            return False
        entries[line] = dirty or is_write
        self._hits.value += 1
        return True

    def contains(self, paddr):
        """Non-updating probe (for invariant checks and tests)."""
        line = self.line_id(paddr)
        return line in self._set_for(line)

    def fill(self, paddr, is_write=False, is_prefetch=False):
        """Install the line holding *paddr*.

        Returns the :class:`EvictedLine` victim, or ``None``.
        """
        line = self.line_id(paddr)
        entries = self._set_for(line)
        existing = entries.pop(line, None)
        if existing is not None:
            entries[line] = existing or is_write
            return None
        victim = None
        if len(entries) >= self.assoc:
            if self._random_replacement:
                victim_line = list(entries)[self._rng.randint(0, len(entries) - 1)]
            else:
                victim_line = next(iter(entries))
            victim = EvictedLine(victim_line, entries.pop(victim_line))
            self._evictions.value += 1
            if victim.dirty:
                self._dirty_evictions.value += 1
        entries[line] = is_write
        if is_prefetch:
            self._prefetch_fills.value += 1
        else:
            self._fills.value += 1
        return victim

    def invalidate(self, paddr):
        """Drop the line holding *paddr*; returns it if it was present."""
        line = self.line_id(paddr)
        entries = self._set_for(line)
        dirty = entries.pop(line, None)
        if dirty is None:
            return None
        self.stats.counter("invalidations").add()
        return EvictedLine(line, dirty)

    def flush(self):
        """Drop every line; returns the dirty victims (writeback set)."""
        dirty_lines = []
        for entries in self._sets:
            dirty_lines.extend(
                EvictedLine(line, True) for line, dirty in entries.items() if dirty
            )
            entries.clear()
        self.stats.counter("flushes").add()
        return dirty_lines

    @property
    def occupancy(self):
        return sum(len(entries) for entries in self._sets)

    def hit_rate(self):
        return self.stats.ratio("hits", "misses")

    def __repr__(self):
        return "Cache(%s, %d KB, %d-way)" % (
            self.name,
            self.config.size_bytes // 1024,
            self.assoc,
        )
