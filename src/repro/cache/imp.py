"""IMP: Indirect Memory Prefetcher (Yu et al., MICRO 2015; paper Sec. 4.2).

IMP targets ``A[B[i]]`` patterns: it watches a sequential *index* stream
(B) and learns the affine relation ``addr = base + coeff * B[i]`` so it
can prefetch the irregular *target* stream (A) ahead of the demand
accesses.

Faithfulness note (documented in DESIGN.md): real IMP reads the index
array's *values* out of incoming cache lines to compute targets.  A
trace-driven simulator has no data values, so our workload generators
label each record with the *pattern stream* it belongs to, and the
simulator offers the prefetcher the upcoming addresses of the same
stream (the ground truth IMP would have computed).  The structural
limits that determine IMP's real-world coverage are all enforced here:

* only ``indirect_pattern_detector_entries`` streams can be *learning*
  at once (IPD capacity);
* a stream must be observed ``TRAIN_THRESHOLD`` times before it is
  promoted to the prefetch table and starts issuing;
* the prefetch table holds ``prefetch_table_entries`` trained streams
  (LRU);
* at most ``max_prefetch_distance`` accesses of lookahead, issued
  ``PREFETCH_DEGREE`` at a time.

This preserves the two interactions the paper studies: IMP prefetches
cross page boundaries (generating extra TLB misses and DRAM page-table
walks -- which TEMPO then accelerates), and IMP removes many non-PT DRAM
accesses (making the remaining PTW/replay accesses a bigger bottleneck).
"""

from repro.common.stats import StatGroup

#: Observations of a stream before IMP considers the pattern learned.
TRAIN_THRESHOLD = 8

#: Prefetches issued per triggering access once trained.
PREFETCH_DEGREE = 2


class _StreamState:
    __slots__ = ("observations", "trained", "issued_upto")

    def __init__(self):
        self.observations = 0
        self.trained = False
        self.issued_upto = -1


class ImpPrefetcher:
    """Structural IMP model; see module docstring."""

    def __init__(self, config, name="imp"):
        config.validate()
        self.config = config
        #: Streams currently being learned (IPD): pattern_id -> state.
        self._detector = {}
        #: Trained streams (prefetch table), LRU by dict order.
        self._table = {}
        self.stats = StatGroup(name)
        #: Nullable utilization track (:mod:`repro.obs.timeline`).
        self.util = None

    def occupy(self, start, end):
        """Report the prefetch path busy for ``[start, end)``."""
        if self.util is not None:
            self.util.busy(start, end)

    def observe(self, pattern_id, record_index, upcoming):
        """Digest one demand access and return prefetch targets.

        *pattern_id* labels the indirect stream (``None`` for accesses
        IMP cannot relate to an index array -- those never train).
        *record_index* is the trace position of the access.  *upcoming*
        is the list of ``(trace_index, vaddr)`` for the next accesses of
        the same stream, already clipped to ``max_prefetch_distance`` by
        the caller.

        Returns a list of virtual addresses to prefetch (possibly empty).
        """
        if pattern_id is None:
            return []
        state = self._table.get(pattern_id)
        if state is not None:
            # Refresh LRU position in the prefetch table.
            del self._table[pattern_id]
            self._table[pattern_id] = state
            return self._issue(state, record_index, upcoming)
        return self._learn(pattern_id, record_index, upcoming)

    def _learn(self, pattern_id, record_index, upcoming):
        state = self._detector.get(pattern_id)
        if state is None:
            if len(self._detector) >= self.config.indirect_pattern_detector_entries:
                # IPD full: evict the oldest learning stream.
                del self._detector[next(iter(self._detector))]
                self.stats.counter("ipd_evictions").add()
            state = _StreamState()
            self._detector[pattern_id] = state
        state.observations += 1
        if state.observations < TRAIN_THRESHOLD:
            return []
        # Promote to the prefetch table.
        del self._detector[pattern_id]
        if len(self._table) >= self.config.prefetch_table_entries:
            del self._table[next(iter(self._table))]
            self.stats.counter("table_evictions").add()
        state.trained = True
        self._table[pattern_id] = state
        self.stats.counter("streams_trained").add()
        return self._issue(state, record_index, upcoming)

    def _issue(self, state, record_index, upcoming):
        targets = []
        for trace_index, vaddr in upcoming:
            if trace_index <= state.issued_upto:
                continue
            if trace_index - record_index > self.config.max_prefetch_distance:
                break
            targets.append(vaddr)
            state.issued_upto = trace_index
            if len(targets) >= PREFETCH_DEGREE:
                break
        self.stats.counter("prefetches_issued").add(len(targets))
        return targets

    @property
    def trained_streams(self):
        return len(self._table)

    def __repr__(self):
        return "ImpPrefetcher(%d trained, %d learning)" % (
            len(self._table),
            len(self._detector),
        )
