"""Pure address-manipulation helpers.

These functions implement the x86-64 radix-walk arithmetic described in
Sec. 2.1 of the paper: a 48-bit virtual address is split into four 9-bit
radix indices plus a 12-bit page offset; a page-table walk concatenates
each level's base physical address with the corresponding index to form
the physical address of the entry it reads.

TEMPO (Sec. 4.1) additionally needs, at the memory controller, the cache
line *within the target page* that the faulting access will touch; the
modified page-table walker piggybacks that line index on the leaf-PT
request.  The helpers at the bottom compute and apply that offset.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.constants import (
    CACHE_LINE_BYTES,
    CACHE_LINE_SHIFT,
    PAGE_SHIFTS,
    PAGE_SIZE_4K,
    PT_ENTRIES,
    PTE_BYTES,
    RADIX_BITS,
    VA_BITS,
)
from repro.common.errors import ConfigError

_VA_MASK = (1 << VA_BITS) - 1
_RADIX_MASK = PT_ENTRIES - 1

#: Precomputed masks for the per-record hot paths: the cache-line mask
#: and the per-page-size offset masks are applied millions of times per
#: simulation, so they are built once here instead of re-deriving
#: ``~(size - 1)`` on every call.  The simulator's fast path binds these
#: to locals directly.
LINE_MASK = ~(CACHE_LINE_BYTES - 1)
PAGE_OFFSET_MASKS: Dict[int, int] = {size: size - 1 for size in PAGE_SHIFTS}


def canonical(vaddr: int) -> int:
    """Clamp *vaddr* to the translated 48-bit range."""
    return vaddr & _VA_MASK


def page_base(addr: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Return the base address of the *page_size*-aligned page holding
    *addr* (works for virtual and physical addresses alike)."""
    return addr & ~(page_size - 1)


def page_offset(addr: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Return the offset of *addr* within its *page_size* page."""
    mask = PAGE_OFFSET_MASKS.get(page_size)
    return addr & (mask if mask is not None else page_size - 1)


def page_number(addr: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Return the page number of *addr* for the given page size."""
    return addr >> PAGE_SHIFTS[page_size]


def page_address(page_num: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Inverse of :func:`page_number`: page number -> base address."""
    return page_num << PAGE_SHIFTS[page_size]


def radix_index(vaddr: int, level: int) -> int:
    """Return the 9-bit radix index used at page-table *level* (4..1).

    Level 4 consumes the uppermost 9 translated bits (47:39), level 1 the
    lowest 9 bits above the page offset (20:12).
    """
    if level not in (1, 2, 3, 4):
        raise ConfigError(
            "page-table level must be 1..4, got %r" % (level,),
            context={"level": level, "vaddr": vaddr},
        )
    shift = 12 + RADIX_BITS * (level - 1)
    return (canonical(vaddr) >> shift) & _RADIX_MASK


def radix_indices(vaddr: int) -> Tuple[int, int, int, int]:
    """Return the (L4, L3, L2, L1) radix indices for *vaddr*."""
    l4, l3, l2, l1 = (radix_index(vaddr, level) for level in (4, 3, 2, 1))
    return (l4, l3, l2, l1)


def pte_address(table_base_paddr: int, index: int) -> int:
    """Physical address of entry *index* within the table page at
    *table_base_paddr* -- the concatenation the walker performs."""
    if not 0 <= index < PT_ENTRIES:
        raise ConfigError(
            "radix index out of range: %r" % (index,),
            context={"index": index, "table_base_paddr": table_base_paddr},
        )
    return table_base_paddr + index * PTE_BYTES


def cache_line_id(addr: int) -> int:
    """Global cache-line identifier (address >> 6)."""
    return addr >> CACHE_LINE_SHIFT

def cache_line_base(addr: int) -> int:
    """Base address of the cache line holding *addr*."""
    return addr & LINE_MASK


def line_index_in_page(vaddr: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Cache-line index of *vaddr* within its page.

    For 4 KB pages this is the 6-bit quantity (64 lines/page) the modified
    walker appends to leaf-PT requests; for 2 MB / 1 GB leaves the same
    scheme carries 15 / 24 bits (paper Sec. 4.5 notes TEMPO applies to any
    page size by tagging whichever level is the leaf).
    """
    return page_offset(vaddr, page_size) >> CACHE_LINE_SHIFT


def replay_address(frame_base_paddr: int, line_index: int) -> int:
    """Reconstruct the replay's physical target: the prefetch engine
    concatenates the PTE's physical page number with the piggybacked
    cache-line index (paper Sec. 4.1, Prefetch Engine)."""
    return frame_base_paddr + (line_index << CACHE_LINE_SHIFT)


def split_vaddr(vaddr: int, page_size: int = PAGE_SIZE_4K) -> Tuple[int, int]:
    """Return ``(virtual_page_number, page_offset)`` for *vaddr*."""
    return page_number(vaddr, page_size), page_offset(vaddr, page_size)


def translate(vaddr: int, frame_base_paddr: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Combine a frame base with the page offset of *vaddr*."""
    mask = PAGE_OFFSET_MASKS.get(page_size)
    return frame_base_paddr | (vaddr & (mask if mask is not None else page_size - 1))
