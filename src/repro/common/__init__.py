"""Shared substrate: addressing math, configuration, statistics, errors.

Everything in :mod:`repro.common` is dependency-free (standard library
only) and is imported by every other subsystem.  The module split is:

``constants``
    Architectural constants of the modelled x86-64 machine (page sizes,
    radix-tree geometry, cache-line size).
``addressing``
    Pure functions for virtual/physical address manipulation: splitting a
    48-bit virtual address into radix indices, computing page-table-entry
    addresses, extracting the replay cache-line offset TEMPO piggybacks on
    leaf page-table requests.
``config``
    Dataclasses describing every hardware structure, with validation and
    the Skylake-like default preset from Figure 9 of the paper.
``stats``
    Lightweight counters and histograms used by every simulated structure.
``rng``
    Deterministic random-stream helper so experiments are reproducible.
``errors``
    Exception hierarchy.
"""

from repro.common.constants import (
    CACHE_LINE_BYTES,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PTE_BYTES,
    PT_LEVELS,
    RADIX_BITS,
    VA_BITS,
)
from repro.common.errors import (
    ConfigError,
    ReproError,
    SimulationError,
    TranslationFault,
)
from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    MmuCacheConfig,
    RowPolicyConfig,
    SchedulerConfig,
    SystemConfig,
    TempoConfig,
    TlbConfig,
    default_system_config,
)
from repro.common.stats import Counter, Histogram, StatGroup
from repro.common.rng import DeterministicRng

__all__ = [
    "CACHE_LINE_BYTES",
    "PAGE_SIZE_1G",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_4K",
    "PTE_BYTES",
    "PT_LEVELS",
    "RADIX_BITS",
    "VA_BITS",
    "ConfigError",
    "ReproError",
    "SimulationError",
    "TranslationFault",
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "MmuCacheConfig",
    "RowPolicyConfig",
    "SchedulerConfig",
    "SystemConfig",
    "TempoConfig",
    "TlbConfig",
    "default_system_config",
    "Counter",
    "Histogram",
    "StatGroup",
    "DeterministicRng",
]
