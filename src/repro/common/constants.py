"""Architectural constants for the modelled x86-64 machine.

The paper (Sec. 2.1) targets x86-64 with 48-bit virtual addresses and a
four-level forward-mapped radix-tree page table.  Each level is indexed by
9 bits of the virtual page number, each table occupies one 4 KB page and
holds 512 eight-byte entries.
"""

#: Bytes in a cache line (x86-64).
CACHE_LINE_BYTES = 64

#: log2 of the cache-line size; used for shifting addresses to line ids.
CACHE_LINE_SHIFT = 6

#: Base page size (x86-64 4 KB page).
PAGE_SIZE_4K = 4 * 1024

#: 2 MB superpage (leaf at the L2 page-table level).
PAGE_SIZE_2M = 2 * 1024 * 1024

#: 1 GB superpage (leaf at the L3 page-table level).
PAGE_SIZE_1G = 1024 * 1024 * 1024

#: All supported page sizes, smallest first.
SUPPORTED_PAGE_SIZES = (PAGE_SIZE_4K, PAGE_SIZE_2M, PAGE_SIZE_1G)

#: Bits of virtual address actually translated (x86-64 canonical).
VA_BITS = 48

#: Bits of virtual page number consumed per radix level.
RADIX_BITS = 9

#: Entries per page-table page (2**RADIX_BITS).
PT_ENTRIES = 1 << RADIX_BITS

#: Number of radix levels (L4 is the root, L1 holds 4 KB leaf PTEs).
PT_LEVELS = 4

#: Size of one page-table entry in bytes.
PTE_BYTES = 8

#: log2(PTE_BYTES); used to turn an entry index into a byte offset.
PTE_SHIFT = 3

#: Offset bits within a 4 KB page.
PAGE_SHIFT_4K = 12

#: Offset bits within a 2 MB page.
PAGE_SHIFT_2M = 21

#: Offset bits within a 1 GB page.
PAGE_SHIFT_1G = 30

#: Map page size -> offset-bit count.
PAGE_SHIFTS = {
    PAGE_SIZE_4K: PAGE_SHIFT_4K,
    PAGE_SIZE_2M: PAGE_SHIFT_2M,
    PAGE_SIZE_1G: PAGE_SHIFT_1G,
}

#: Map page size -> the page-table level whose entry is the leaf for that
#: size.  4 KB pages terminate at L1, 2 MB at L2, 1 GB at L3.
LEAF_LEVEL_FOR_SIZE = {
    PAGE_SIZE_4K: 1,
    PAGE_SIZE_2M: 2,
    PAGE_SIZE_1G: 3,
}

#: Map leaf page-table level -> page size it maps.
SIZE_FOR_LEAF_LEVEL = {level: size for size, level in LEAF_LEVEL_FOR_SIZE.items()}

#: Cache lines in a 4 KB page (64 lines; the walker appends 6 bits).
LINES_PER_PAGE_4K = PAGE_SIZE_4K // CACHE_LINE_BYTES
