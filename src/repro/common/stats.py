"""Lightweight statistics primitives.

Every simulated structure (TLB, cache, bank, scheduler, ...) owns a
:class:`StatGroup` so results can be harvested uniformly by the experiment
drivers in :mod:`repro.analysis`.

Counters and histograms must be *created through their group*
(:meth:`StatGroup.counter` / :meth:`StatGroup.histogram`): a directly
constructed primitive is invisible to the
:class:`~repro.obs.registry.MetricsRegistry` export (simlint rule SL004
enforces this).
"""

from __future__ import annotations

from typing import Dict, Optional


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class Histogram:
    """A sparse integer-keyed histogram (e.g. latency distribution)."""

    __slots__ = ("name", "buckets")

    #: Percentiles exported by :meth:`StatGroup.as_dict`.
    EXPORT_PERCENTILES = (50, 95, 99)

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}

    def record(self, key: int, amount: int = 1) -> None:
        self.buckets[key] = self.buckets.get(key, 0) + amount

    def total(self) -> int:
        return sum(self.buckets.values())

    def mean(self) -> float:
        total = self.total()
        if total == 0:
            return 0.0
        return sum(key * count for key, count in self.buckets.items()) / total

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile: the smallest recorded key at or
        above rank ``ceil(p/100 * total)``.  Returns 0 when empty."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % (p,))
        total = self.total()
        if total == 0:
            return 0
        rank = max(1, -(-p * total // 100))  # ceil without math import
        cumulative = 0
        for key in sorted(self.buckets):
            cumulative += self.buckets[key]
            if cumulative >= rank:
                return key
        return max(self.buckets)

    def min(self) -> int:
        return min(self.buckets) if self.buckets else 0

    def max(self) -> int:
        return max(self.buckets) if self.buckets else 0

    def reset(self) -> None:
        self.buckets.clear()

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d)" % (self.name, self.total())


class StatGroup:
    """A named bag of counters/histograms with dotted-path export.

    >>> stats = StatGroup("tlb")
    >>> stats.counter("hits").add()
    >>> stats.as_dict()
    {'tlb.hits': 1}
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._children: Dict[str, StatGroup] = {}

    def counter(self, name: str) -> Counter:
        """Return (creating on first use) the counter *name*."""
        found = self._counters.get(name)
        if found is None:
            found = Counter(name)  # simlint: disable=SL004 (the factory itself)
            self._counters[name] = found
        return found

    def histogram(self, name: str) -> Histogram:
        """Return (creating on first use) the histogram *name*."""
        found = self._histograms.get(name)
        if found is None:
            found = Histogram(name)  # simlint: disable=SL004 (the factory itself)
            self._histograms[name] = found
        return found

    def child(self, name: str) -> StatGroup:
        """Return (creating on first use) a nested group *name*."""
        found = self._children.get(name)
        if found is None:
            found = StatGroup(name)
            self._children[name] = found
        return found

    def peek(self, name: str) -> int:
        """Read counter *name* without creating it (0 when absent).

        Invariant auditors (:mod:`repro.verify`) use this: calling
        :meth:`counter` from an audit would materialise a zero-valued
        counter in the stats export and break the off-vs-full
        bit-identity guarantee.
        """
        found = self._counters.get(name)
        return 0 if found is None else found.value

    def peek_child(self, name: str) -> Optional[StatGroup]:
        """Read child group *name* without creating it."""
        return self._children.get(name)

    def ratio(self, numerator: str, denominator: str) -> float:
        """hits/(hits+misses)-style convenience: value of counter
        *numerator* divided by the sum of both counters (0.0 if empty)."""
        num = self.counter(numerator).value
        den = num + self.counter(denominator).value
        if den == 0:
            return 0.0
        return num / den

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for group in self._children.values():
            group.reset()

    def as_dict(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Flatten to ``{"group.counter": value}`` (histograms export
        their totals under ``<name>.total``, means under ``<name>.mean``
        and nearest-rank percentiles under ``<name>.p50`` etc.)."""
        path = self.name if prefix is None else "%s.%s" % (prefix, self.name)
        flat: Dict[str, float] = {}
        for name, counter in self._counters.items():
            flat["%s.%s" % (path, name)] = counter.value
        for name, histogram in self._histograms.items():
            flat["%s.%s.total" % (path, name)] = histogram.total()
            flat["%s.%s.mean" % (path, name)] = histogram.mean()
            for p in Histogram.EXPORT_PERCENTILES:
                flat["%s.%s.p%d" % (path, name, p)] = histogram.percentile(p)
        for group in self._children.values():
            flat.update(group.as_dict(prefix=path))
        return flat

    def __repr__(self) -> str:
        return "StatGroup(%r, %d counters)" % (self.name, len(self._counters))
