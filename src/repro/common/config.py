"""Configuration dataclasses for every modelled hardware structure.

The defaults encode the Figure-9 machine of the paper, scaled down so
pure-Python simulation stays tractable (see DESIGN.md Sec. 2: only the
*ratios* between footprint, TLB reach, leaf-page-table size and LLC
capacity govern the phenomena TEMPO exploits, and the scaled machine
preserves them).

All latencies are in CPU cycles.  All sizes are in bytes unless the field
name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.constants import CACHE_LINE_BYTES, PAGE_SIZE_4K
from repro.common.errors import ConfigError


def _require(condition: bool, message: str, **context: Any) -> None:
    if not condition:
        raise ConfigError(message, context=context)


def _power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class CoreConfig:
    """Blocking in-order core timing model (DESIGN.md Sec. 5)."""

    #: Cycles of non-memory work consumed per trace-record "gap unit".
    nonmem_cycles_per_gap: int = 1
    #: L1-D hit latency.
    l1_latency: int = 4
    #: L2 hit latency.
    l2_latency: int = 12
    #: Shared LLC hit latency.
    llc_latency: int = 42
    #: Cycles to fill the TLB and restart the pipeline after a walk; this
    #: plus the walk-return NoC overhead and the replay's L1/L2/LLC
    #: lookups forms TEMPO's 120+-cycle slack window (paper Sec. 3).
    tlb_fill_latency: int = 45

    def validate(self) -> None:
        _require(self.nonmem_cycles_per_gap >= 0, "nonmem_cycles_per_gap must be >= 0")
        _require(
            0 < self.l1_latency < self.l2_latency < self.llc_latency,
            "cache latencies must be increasing and positive",
        )
        _require(self.tlb_fill_latency >= 0, "tlb_fill_latency must be >= 0")


@dataclass
class TlbConfig:
    """Two-level TLB hierarchy with per-page-size L1 arrays."""

    l1_entries_4k: int = 64
    l1_assoc_4k: int = 4
    l1_entries_2m: int = 32
    l1_assoc_2m: int = 4
    l1_entries_1g: int = 4
    l1_assoc_1g: int = 4
    #: Unified second-level TLB (all page sizes).
    l2_entries: int = 1024
    l2_assoc: int = 8
    l2_latency: int = 7
    #: Skylake's STLB does not hold 1 GB translations; they live only in
    #: the tiny dedicated L1 array.
    l2_holds_1g: bool = False

    def validate(self) -> None:
        for entries, assoc, label in (
            (self.l1_entries_4k, self.l1_assoc_4k, "L1-4K"),
            (self.l1_entries_2m, self.l1_assoc_2m, "L1-2M"),
            (self.l1_entries_1g, self.l1_assoc_1g, "L1-1G"),
            (self.l2_entries, self.l2_assoc, "L2"),
        ):
            _require(entries > 0, "%s TLB needs at least one entry" % label)
            _require(assoc > 0, "%s TLB associativity must be positive" % label)
            _require(entries % assoc == 0, "%s TLB entries not divisible by assoc" % label)
            _require(_power_of_two(entries // assoc), "%s TLB set count must be a power of two" % label)
        _require(self.l2_latency > 0, "L2 TLB latency must be positive")


@dataclass
class MmuCacheConfig:
    """Page-walk caches holding L4/L3/L2 page-table entries.

    The paper notes MMU caches are ~32x smaller than TLBs yet enjoy
    better hit rates because upper-level entries map large address chunks.
    """

    entries_per_level: int = 32
    assoc: int = 4
    latency: int = 2

    def validate(self) -> None:
        _require(self.entries_per_level > 0, "MMU cache needs entries")
        _require(self.entries_per_level % self.assoc == 0, "MMU cache entries not divisible by assoc")
        _require(self.latency >= 0, "MMU cache latency must be >= 0")


@dataclass
class CacheConfig:
    """One set-associative cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = CACHE_LINE_BYTES
    replacement: str = "lru"

    def validate(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.assoc > 0, "cache associativity must be positive")
        _require(_power_of_two(self.line_bytes), "cache line size must be a power of two")
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        _require(sets > 0, "cache too small for its associativity")
        _require(_power_of_two(sets), "cache set count must be a power of two")
        _require(self.replacement in ("lru", "random"), "unknown replacement %r" % self.replacement)

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass
class RowPolicyConfig:
    """DRAM row-buffer management policy (paper Sec. 4.3)."""

    #: One of "open", "closed", "adaptive".
    policy: str = "adaptive"
    #: Adaptive policy's prediction cache (Awasthi et al. [17]).
    predictor_sets: int = 2048
    predictor_ways: int = 4
    #: Adaptive policy: initial/maximum predicted keep-open window.
    predictor_initial_window: int = 200
    predictor_max_window: int = 2000

    def validate(self) -> None:
        _require(self.policy in ("open", "closed", "adaptive"), "unknown row policy %r" % self.policy)
        _require(self.predictor_sets > 0 and _power_of_two(self.predictor_sets), "predictor sets must be a power of two")
        _require(self.predictor_ways > 0, "predictor ways must be positive")
        _require(
            0 < self.predictor_initial_window <= self.predictor_max_window,
            "predictor windows must satisfy 0 < initial <= max",
        )


@dataclass
class SubRowConfig:
    """Sub-row buffers replacing the per-bank row buffer (paper Sec. 4.4)."""

    enabled: bool = False
    num_subrows: int = 8
    #: "foa" (fairness-oriented) or "poa" (performance-oriented).
    allocation: str = "foa"
    #: Sub-rows reserved for TEMPO's post-translation prefetches.
    dedicated_prefetch_subrows: int = 2

    def validate(self) -> None:
        _require(self.num_subrows > 0, "need at least one sub-row")
        _require(self.allocation in ("foa", "poa"), "unknown sub-row allocation %r" % self.allocation)
        _require(
            0 <= self.dedicated_prefetch_subrows < self.num_subrows,
            "dedicated prefetch sub-rows must leave at least one general sub-row",
        )


@dataclass
class DramConfig:
    """DRAM organization and DDR3-style timing.

    Latencies follow the paper's Sec. 2.3 numbers at ~3 GHz: row-buffer
    hits 10-15 ns (~40 cycles), misses/conflicts 30-50 ns (~90-130
    cycles), so hits improve access latency by up to ~66%.
    """

    channels: int = 2
    banks_per_channel: int = 8
    row_bytes: int = 8 * 1024
    #: Column access when the row is already open.
    row_hit_cycles: int = 40
    #: Activate + column access when the bank is precharged (row miss).
    row_miss_cycles: int = 110
    #: Precharge + activate + column access (row conflict).
    row_conflict_cycles: int = 150
    #: Fixed controller + on-chip-network overhead per DRAM access.
    controller_overhead_cycles: int = 20
    #: Channel/bus occupancy per request (data-burst transfer time).
    bus_cycles: int = 10
    #: Transaction-queue capacity per channel; tagged PT requests consume
    #: two slots (paper Sec. 4.1), and prefetches are dropped when full.
    txq_capacity: int = 32
    #: Refresh: every ``refresh_interval_cycles`` a bank performs an
    #: all-bank refresh taking ``refresh_cycles`` (tREFI/tRFC at ~3 GHz).
    #: 0 disables refresh.
    refresh_interval_cycles: int = 23400
    refresh_cycles: int = 1050
    subrows: SubRowConfig = field(default_factory=SubRowConfig)

    def validate(self) -> None:
        _require(self.channels > 0 and _power_of_two(self.channels), "channels must be a power of two")
        _require(self.banks_per_channel > 0 and _power_of_two(self.banks_per_channel), "banks must be a power of two")
        _require(_power_of_two(self.row_bytes), "row size must be a power of two")
        _require(self.row_bytes >= PAGE_SIZE_4K, "row must hold at least one 4 KB page")
        _require(
            0 < self.row_hit_cycles < self.row_miss_cycles <= self.row_conflict_cycles,
            "DRAM latencies must satisfy hit < miss <= conflict",
        )
        _require(self.controller_overhead_cycles >= 0, "controller overhead must be >= 0")
        _require(self.bus_cycles >= 0, "bus cycles must be >= 0")
        _require(self.txq_capacity >= 4, "transaction queue too small to be useful")
        _require(self.refresh_interval_cycles >= 0, "refresh interval must be >= 0")
        _require(self.refresh_cycles >= 0, "refresh duration must be >= 0")
        if self.refresh_interval_cycles:
            _require(
                self.refresh_cycles < self.refresh_interval_cycles,
                "refresh duration must be shorter than the interval",
            )
        self.subrows.validate()


@dataclass
class SchedulerConfig:
    """Memory-scheduler selection and BLISS parameters."""

    #: One of "fcfs", "frfcfs", "bliss", "atlas".
    policy: str = "frfcfs"
    #: BLISS: consecutive requests from one CPU before blacklisting.
    bliss_blacklist_threshold: int = 4
    #: BLISS: blacklist clearing interval, in cycles.
    bliss_clearing_interval: int = 10000
    #: BLISS counter increment for a demand access (paper: 2).
    bliss_demand_increment: int = 2
    #: BLISS counter increment for a TEMPO prefetch (paper: 1, i.e. half).
    bliss_prefetch_increment: int = 1
    #: ATLAS: attained-service quantum (cycles) after which ranks reset.
    atlas_quantum_cycles: int = 100_000

    def validate(self) -> None:
        _require(
            self.policy in ("fcfs", "frfcfs", "bliss", "atlas"),
            "unknown scheduler %r" % self.policy,
        )
        _require(self.atlas_quantum_cycles > 0, "ATLAS quantum must be positive")
        _require(self.bliss_blacklist_threshold > 0, "BLISS threshold must be positive")
        _require(self.bliss_clearing_interval > 0, "BLISS clearing interval must be positive")
        _require(self.bliss_demand_increment > 0, "BLISS demand increment must be positive")
        _require(self.bliss_prefetch_increment >= 0, "BLISS prefetch increment must be >= 0")


@dataclass
class TempoConfig:
    """The paper's contribution: translation-triggered prefetching."""

    enabled: bool = True
    #: Prefetch the replay's row into the DRAM row buffer.
    row_prefetch: bool = True
    #: Additionally push the replay's cache line into the LLC.
    llc_prefetch: bool = True
    #: Cycles to move the target row from the array to the row buffer.
    prefetch_row_cycles: int = 60
    #: Extra cycles to ship the line from the row buffer into the LLC.
    prefetch_llc_extra_cycles: int = 25
    #: Slack window: TLB fill + pipeline restart + replay L1/L2/LLC
    #: lookups before the replay would re-reach DRAM (paper: 120+).
    slack_window_cycles: int = 120
    #: Transaction-queue scanning (paper Sec. 4.3b): schedule queued
    #: page-table requests grouped by row, then their prefetches grouped
    #: by row.  Disable for the ablation study.
    txq_grouping: bool = True
    #: Open-row anticipation: cycles to keep a just-read page-table row
    #: open before closing it for the prefetch (paper Sec. 4.3: 10 best).
    wait_cycles: int = 10
    #: BLISS integration: cycles to keep the prefetched row open before
    #: switching to a competing application (paper Sec. 4.3: 15 best).
    grace_period_cycles: int = 15

    def validate(self) -> None:
        _require(self.prefetch_row_cycles > 0, "row prefetch latency must be positive")
        _require(self.prefetch_llc_extra_cycles >= 0, "LLC prefetch extra latency must be >= 0")
        _require(self.slack_window_cycles >= 0, "slack window must be >= 0")
        _require(self.wait_cycles >= 0, "wait cycles must be >= 0")
        _require(self.grace_period_cycles >= 0, "grace period must be >= 0")
        if self.llc_prefetch and not self.row_prefetch:
            raise ConfigError(
                "LLC prefetch requires the row prefetch step (data moves array -> row buffer -> LLC)",
                context={
                    "llc_prefetch": self.llc_prefetch,
                    "row_prefetch": self.row_prefetch,
                },
            )


@dataclass
class ImpConfig:
    """IMP indirect-memory prefetcher (Yu et al. [44]), default params."""

    enabled: bool = False
    prefetch_table_entries: int = 16
    indirect_pattern_detector_entries: int = 4
    max_indirect_ways: int = 2
    max_indirect_levels: int = 2
    max_prefetch_distance: int = 16

    def validate(self) -> None:
        _require(self.prefetch_table_entries > 0, "IMP table needs entries")
        _require(self.indirect_pattern_detector_entries > 0, "IPD needs entries")
        _require(self.max_indirect_ways > 0, "IMP needs at least one indirect way")
        _require(self.max_indirect_levels > 0, "IMP needs at least one indirect level")
        _require(self.max_prefetch_distance > 0, "IMP prefetch distance must be positive")


@dataclass
class VmConfig:
    """OS virtual-memory model: allocation and superpage policy."""

    #: Modelled physical memory size.  The paper's machine has 4 TB; the
    #: frame allocator is lazy, so only touched frames cost host memory.
    phys_mem_bytes: int = 4 * 1024 * 1024 * 1024 * 1024
    #: Transparent 2 MB hugepages (Linux THP).
    thp_enabled: bool = True
    #: Explicit hugetlbfs reservations (overrides THP when set).
    hugetlbfs_2m: bool = False
    hugetlbfs_1g: bool = False
    #: Fraction of physical memory randomly pinned by memhog to induce
    #: fragmentation (paper Sec. 6.2: 0/0.25/0.5/0.75).
    memhog_fraction: float = 0.0

    def validate(self) -> None:
        _require(self.phys_mem_bytes >= PAGE_SIZE_4K, "physical memory too small")
        _require(_power_of_two(self.phys_mem_bytes), "physical memory must be a power of two")
        _require(0.0 <= self.memhog_fraction < 1.0, "memhog fraction must be in [0, 1)")
        if self.hugetlbfs_2m and self.hugetlbfs_1g:
            raise ConfigError(
                "choose one hugetlbfs page size",
                context={
                    "hugetlbfs_2m": self.hugetlbfs_2m,
                    "hugetlbfs_1g": self.hugetlbfs_1g,
                },
            )


@dataclass
class EnergyConfig:
    """Analytical energy model (arbitrary units per event/cycle).

    Background (static) power dominates, so runtime reductions translate
    into the paper's 1-14% energy savings; per-command terms charge
    TEMPO for its extra prefetch activations.
    """

    background_power_per_kilocycle: float = 8.0
    act_pre_energy: float = 2.0
    array_read_energy: float = 1.0
    row_hit_read_energy: float = 0.4
    llc_access_energy: float = 0.1
    #: TEMPO area overhead: 3% on the controller's share of static power.
    tempo_static_overhead: float = 0.002

    def validate(self) -> None:
        for name in (
            "background_power_per_kilocycle",
            "act_pre_energy",
            "array_read_energy",
            "row_hit_read_energy",
            "llc_access_energy",
            "tempo_static_overhead",
        ):
            _require(getattr(self, name) >= 0, "%s must be >= 0" % name)


@dataclass
class SystemConfig:
    """Top-level system description (the Figure-9 machine, scaled)."""

    core: CoreConfig = field(default_factory=CoreConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    mmu_cache: MmuCacheConfig = field(default_factory=MmuCacheConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=32 * 1024, assoc=8))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=256 * 1024, assoc=8))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=2 * 1024 * 1024, assoc=16))
    dram: DramConfig = field(default_factory=DramConfig)
    row_policy: RowPolicyConfig = field(default_factory=RowPolicyConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    tempo: TempoConfig = field(default_factory=TempoConfig)
    imp: ImpConfig = field(default_factory=ImpConfig)
    vm: VmConfig = field(default_factory=VmConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    num_cores: int = 1
    seed: int = 1701

    def validate(self) -> SystemConfig:
        """Validate every sub-config; raises :class:`ConfigError`."""
        self.core.validate()
        self.tlb.validate()
        self.mmu_cache.validate()
        self.l1.validate()
        self.l2.validate()
        self.llc.validate()
        self.dram.validate()
        self.row_policy.validate()
        self.scheduler.validate()
        self.tempo.validate()
        self.imp.validate()
        self.vm.validate()
        self.energy.validate()
        _require(self.num_cores > 0, "need at least one core")
        _require(self.l1.size_bytes <= self.l2.size_bytes <= self.llc.size_bytes, "cache sizes must be non-decreasing")
        return self

    def with_tempo(self, enabled: bool = True, **overrides: Any) -> SystemConfig:
        """Return a copy with TEMPO toggled (and optional field overrides)."""
        tempo = replace(self.tempo, enabled=enabled, **overrides)
        return replace(self, tempo=tempo)

    def copy_with(self, **overrides: Any) -> SystemConfig:
        """Return a shallow-copied config with top-level overrides."""
        return replace(self, **overrides)


def default_system_config(**overrides: Any) -> SystemConfig:
    """The validated Skylake-like default machine (Figure 9, scaled)."""
    config = SystemConfig(**overrides)
    config.validate()
    return config
