"""Deterministic random-number streams.

Experiments must be bit-for-bit reproducible: every stochastic component
(workload generators, memhog fragmentation, random replacement) draws from
a :class:`DeterministicRng` derived from an experiment seed plus a purpose
string, so adding a new consumer never perturbs existing streams.

This module is the *only* sanctioned gateway to :mod:`random`: simlint
rule SL001 bans direct ``random`` use in timing-critical packages.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random stream, namespaced by purpose.

    >>> rng = DeterministicRng(42, "workload.graph500")
    >>> rng.randint(0, 10) == DeterministicRng(42, "workload.graph500").randint(0, 10)
    True
    """

    def __init__(self, seed: int, purpose: str = "") -> None:
        self.seed = seed
        self.purpose = purpose
        self._random = random.Random("%s/%s" % (seed, purpose))

    def derive(self, purpose: str) -> DeterministicRng:
        """Return an independent stream for a sub-purpose."""
        return DeterministicRng(self.seed, "%s/%s" % (self.purpose, purpose))

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        self._random.shuffle(seq)

    def sample(self, population: Sequence[T], count: int) -> List[T]:
        return self._random.sample(population, count)

    def geometric(self, mean: float) -> int:
        """Geometric-ish positive integer with the given mean (>= 1)."""
        if mean <= 1:
            return 1
        value = 1
        continue_probability = 1.0 - 1.0 / mean
        while self._random.random() < continue_probability:
            value += 1
        return value

    def zipf_index(self, population_size: int, skew: float = 0.99) -> int:
        """Approximate Zipf-distributed index in [0, population_size).

        Uses the inverse-CDF power-law approximation, which is accurate
        enough for generating skewed reuse patterns and much faster than
        rejection sampling.
        """
        if population_size <= 1:
            return 0
        u = self._random.random()
        if skew >= 1.0:
            skew = 0.9999
        # Continuous inverse-CDF: P(X <= x) ~ (x/N)**(1-skew).
        index = int(population_size * u ** (1.0 / (1.0 - skew)))
        return min(max(index, 0), population_size - 1)

    def __repr__(self) -> str:
        return "DeterministicRng(seed=%r, purpose=%r)" % (self.seed, self.purpose)
