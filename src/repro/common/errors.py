"""Exception hierarchy for the TEMPO reproduction.

Every error carries an optional structured ``context`` dict (cycle,
core, vaddr, active request, ...) populated at the raise site so that
crash reports from resilient runs say *what the simulator was doing*,
not just what went wrong.  ``repro.verify`` attaches a flight-recorder
dump under the ``"flight_recorder"`` key before the error escapes
``SystemSimulator.run``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


def _format_context(context: Dict[str, Any]) -> str:
    """``[cycle=42 core=0 vaddr=0x1000]`` — flight-recorder dumps are
    elided (they are large; they belong in the JSON crash report)."""
    parts = []
    for key in context:
        if key == "flight_recorder":
            continue
        value = context[key]
        if key.endswith(("addr", "paddr", "vaddr", "pc")) and isinstance(value, int):
            parts.append("%s=0x%x" % (key, value))
        else:
            parts.append("%s=%r" % (key, value))
    return " ".join(parts)


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``context`` is a free-form structured payload describing the machine
    state at the raise site; it is merged into crash reports and the
    run manifest rather than (fully) into ``str(exc)``.
    """

    def __init__(
        self, message: str = "", context: Optional[Dict[str, Any]] = None
    ) -> None:
        self.context: Dict[str, Any] = dict(context) if context else {}
        super().__init__(message)


class ConfigError(ReproError):
    """A configuration dataclass failed validation."""


class TranslationFault(ReproError):
    """A virtual address has no mapping (page fault the model cannot
    service, e.g. a walker probing an unmapped region).

    TEMPO's prefetch engine must *not* prefetch through these (paper
    Sec. 4.5, "Page faults"); the simulator raises this only when a trace
    references memory the OS model never allocated, which indicates a bug
    in the workload generator rather than expected behaviour.
    """

    def __init__(
        self,
        vaddr: int,
        message: Optional[str] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.vaddr = vaddr
        super().__init__(
            message or "no translation for virtual address 0x%x" % vaddr,
            context,
        )

    def __str__(self) -> str:
        base = super().__str__()
        if self.context:
            extra = _format_context(self.context)
            if extra:
                return "%s [%s]" % (base, extra)
        return base


class AllocationError(ReproError):
    """The physical frame allocator ran out of (suitable) frames."""


class MappingError(ReproError):
    """An attempt to create a page-table mapping conflicts with an
    existing one (e.g. mapping a 2 MB page over live 4 KB mappings)."""


class SimulationError(ReproError):
    """Internal inconsistency detected during simulation."""


class InvariantViolation(SimulationError):
    """An online invariant audit (``repro.verify``) failed.

    Deterministic by construction: re-running the same cell reproduces
    the same violation, so the executor treats it as terminal (no
    retries) and quarantines the cell instead of caching it.
    """

    def __init__(
        self,
        auditor: str,
        invariant: str,
        message: str,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.auditor = auditor
        self.invariant = invariant
        super().__init__(
            "[%s/%s] %s" % (auditor, invariant, message), context
        )
