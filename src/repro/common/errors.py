"""Exception hierarchy for the TEMPO reproduction."""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration dataclass failed validation."""


class TranslationFault(ReproError):
    """A virtual address has no mapping (page fault the model cannot
    service, e.g. a walker probing an unmapped region).

    TEMPO's prefetch engine must *not* prefetch through these (paper
    Sec. 4.5, "Page faults"); the simulator raises this only when a trace
    references memory the OS model never allocated, which indicates a bug
    in the workload generator rather than expected behaviour.
    """

    def __init__(self, vaddr: int, message: Optional[str] = None) -> None:
        self.vaddr = vaddr
        super().__init__(message or "no translation for virtual address 0x%x" % vaddr)


class AllocationError(ReproError):
    """The physical frame allocator ran out of (suitable) frames."""


class MappingError(ReproError):
    """An attempt to create a page-table mapping conflicts with an
    existing one (e.g. mapping a 2 MB page over live 4 KB mappings)."""


class SimulationError(ReproError):
    """Internal inconsistency detected during simulation."""
