"""Trace-driven system simulator.

``trace`` defines trace records and the deterministic virtual-memory
layout contract between workload generators and the simulator;
``system`` is the single-core reference-by-reference engine implementing
the paper's Figure 5/6 timeline; ``multicore`` interleaves several cores
through the shared LLC and memory controller; ``metrics`` holds the
result structures every experiment reports; ``runner`` offers one-call
experiment helpers.
"""

from repro.sim.trace import Trace, TraceRecord, plan_virtual_layout
from repro.sim.traceio import load_trace, save_trace
from repro.sim.metrics import (
    DramReferenceBreakdown,
    RuntimeBreakdown,
    SimulationResult,
    max_slowdown,
    weighted_speedup,
)
from repro.sim.system import SystemSimulator
from repro.sim.multicore import MulticoreSimulator
from repro.sim.runner import (
    run_baseline_and_tempo,
    run_workload,
    speedup_fraction,
)

__all__ = [
    "Trace",
    "TraceRecord",
    "plan_virtual_layout",
    "save_trace",
    "load_trace",
    "RuntimeBreakdown",
    "DramReferenceBreakdown",
    "SimulationResult",
    "weighted_speedup",
    "max_slowdown",
    "SystemSimulator",
    "MulticoreSimulator",
    "run_workload",
    "run_baseline_and_tempo",
    "speedup_fraction",
]
