"""Trace serialization.

Traces can be generated once and replayed across many configurations --
exactly how the paper uses its Pin logs.  The on-disk format is a JSON
header line (trace name, footprint, region table) followed by one
compact line per record::

    {"name": "xsbench", "footprint_bytes": ..., "regions": [...]}
    140737488355328,0,1,
    140737488359424,1,2,xs0

Record fields: ``vaddr,is_write,gap,pattern`` (pattern empty when
unlabeled).  The format is line-oriented so traces can be streamed,
diffed, and compressed externally.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Union

from repro.common.errors import SimulationError
from repro.sim.trace import RegionSpec, Trace, TraceRecord

FORMAT_VERSION = 1

#: Anything ``open`` accepts for a text file.
PathLike = Union[str, "os.PathLike[str]"]


def save_trace(trace: Trace, path: PathLike) -> int:
    """Write *trace* to *path*; returns the number of records written."""
    header: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "footprint_bytes": trace.footprint_bytes,
        "regions": [
            {
                "name": region.name,
                "size": region.size,
                "base": region.base,
                "allow_superpages": region.allow_superpages,
                "thp_eligibility": region.thp_eligibility,
            }
            for region in trace.regions
        ],
    }
    with open(path, "w") as stream:
        stream.write(json.dumps(header))
        stream.write("\n")
        for record in trace.records:
            stream.write(
                "%d,%d,%d,%s\n"
                % (
                    record.vaddr,
                    1 if record.is_write else 0,
                    record.gap,
                    record.pattern if record.pattern is not None else "",
                )
            )
    return len(trace.records)


def load_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path) as stream:
        header_line = stream.readline()
        if not header_line.strip():
            raise SimulationError(
                "%s: empty trace file" % path,
                context={"trace_path": str(path)},
            )
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as error:
            raise SimulationError(
                "%s: bad trace header: %s" % (path, error),
                context={"trace_path": str(path), "json_error": str(error)},
            )
        if header.get("format_version") != FORMAT_VERSION:
            raise SimulationError(
                "%s: unsupported trace format version %r"
                % (path, header.get("format_version")),
                context={
                    "trace_path": str(path),
                    "format_version": header.get("format_version"),
                    "supported_version": FORMAT_VERSION,
                },
            )
        regions = [
            RegionSpec(
                entry["name"],
                entry["size"],
                entry["base"],
                entry.get("allow_superpages", True),
                entry.get("thp_eligibility", 1.0),
            )
            for entry in header["regions"]
        ]
        records: List[TraceRecord] = []
        for line_number, line in enumerate(stream, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                vaddr_text, write_text, gap_text, pattern = line.split(",", 3)
                record = TraceRecord(
                    int(vaddr_text),
                    write_text == "1",
                    int(gap_text),
                    pattern if pattern else None,
                )
            except ValueError as error:
                raise SimulationError(
                    "%s:%d: bad trace record: %s" % (path, line_number, error),
                    context={
                        "trace_path": str(path),
                        "line_number": line_number,
                    },
                )
            records.append(record)
    return Trace(header["name"], records, regions, header.get("footprint_bytes"))
