"""Batch simulation kernel: struct-of-arrays chunks + run-resolved stat
application, bit-identical to the scalar engine.

The scalar fast path in ``SystemSimulator._run_single`` pays a fixed
per-record toll for the *regular majority* -- records whose translation
hits an L1 TLB array and whose line hits the L1 data cache: a
``tlb.lookup`` call (up to three array probes, three counter-registry
lookups, an LRU pop/reinsert), a ``hierarchy.access`` call (plus an
``AccessResult`` allocation), and per-record driver bookkeeping.  This
kernel removes that toll by resolving regular records in *runs*:

1. **SoA chunking.**  The trace is mirrored chunk-by-chunk (about
   1-4k records, :data:`DEFAULT_BATCH_SIZE`) into struct-of-arrays
   form: per-page-size VPNs, per-page-size line offsets, the gaps, and
   the write flags.  With numpy present the mirrors are produced by
   vectorized shifts/masks over one ``int64`` array; without it, by
   equivalent list comprehensions.  The mirrors are derived from the
   *immutable trace only* -- they never go stale, so the two builds are
   interchangeable and everything downstream of the build is shared
   code (the pure-Python fallback passes the same differential oracle
   by construction).

2. **Run classification against live state.**  Records are classified
   directly against the live TLB set dicts and L1 cache set dicts --
   plain membership probes, no counter-registry traffic, no
   intermediate result objects.  A run ends at the first *irregular*
   record (L1 TLB miss or L1 cache miss), which drains through the
   unmodified scalar paths (the inline fast path for TLB hits, the
   event engine for full TLB misses).  Because classification reads
   the ground truth there is no snapshot to go stale: any state change
   made by irregular records, page walks, fills, or other cores is
   visible to the very next probe.

3. **Run-resolved application.**  A regular record's complete effect
   set is closed-form, and splits into per-record dict permutations
   and per-run counter sums:

   * the hitting TLB entry and the cache line move to MRU position and
     the line's dirty bit ORs with ``is_write`` -- applied in record
     order with the same ``pop``/reinsert the scalar engine performs,
     so the final dict state is identical by construction;
   * ``core.time`` advances by ``gap * nonmem_per_gap + 1 +
     l1_latency`` per record -- summed over the run;
   * per-array TLB hit/miss counters (a 2M hit records a 4K miss
     first, a 1G hit records 4K and 2M misses first -- the probe order
     of ``TlbHierarchy.lookup``), the hierarchy-level ``l1_hits``
     counter, and the cache's ``hits`` counter -- bumped once per run
     with the run's level counts.  Counter objects are created lazily
     and only bumped when nonzero, so the exported stat namespace
     holds exactly the keys a scalar run creates.

   Counter increments commute across the run, so the run-resolved
   application is bit-identical to the scalar engine's record-by-record
   replay (``test_kernel`` pins this on every registered workload).

Two guards keep the claim airtight:

* the kernel refuses to claim regular records while DRAM writebacks
  are pending (``hierarchy._pending_dram_writebacks``), because the
  scalar fast path drains that list on *every* TLB-hit record -- even
  a pure L1 hit has a side effect then;
* a run never crosses ``bound`` (the warmup boundary or the record
  limit), so measurement resets land at exactly the scalar positions.

The kernel claims no record that involves DRAM, page walks, TEMPO/IMP
prefetching, or observer hooks; those drain through the existing engine
unchanged (the ``batch_ok`` gate in ``SystemSimulator.run``).  Two
entry points exist: :meth:`BatchKernel.drive` owns the whole
single-core loop between page walks (it may block on DRAM), while
:meth:`BatchKernel.consume_regular` claims at most one regular run and
never blocks, which is what the multicore event interleave needs to
keep cross-core causality.
"""

import importlib
from typing import Any, Dict, List, Optional, Tuple

from repro.common.addressing import LINE_MASK, PAGE_OFFSET_MASKS
from repro.common.constants import (
    PAGE_SHIFTS,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
)
from repro.sched.request import KIND_DEMAND, MemoryRequest

#: Default number of records mirrored into SoA form per chunk.  Large
#: enough to amortize the mirror build, small enough to stay cache-warm.
DEFAULT_BATCH_SIZE = 2048

#: L1 TLB probe order (must match ``TlbHierarchy.lookup``).
_L1_PAGE_SIZES = (PAGE_SIZE_4K, PAGE_SIZE_2M, PAGE_SIZE_1G)


def _load_numpy() -> Optional[Any]:
    """Import numpy if the environment has it (it is never required)."""
    try:
        return importlib.import_module("numpy")
    except ImportError:
        return None


_np: Any = _load_numpy()


def numpy_available() -> bool:
    """True when the SoA mirrors are built with vectorized numpy ops."""
    return _np is not None


class BatchKernel:
    """Resolves runs of regular records for one core in bulk.

    One kernel instance is bound per core by the batch drivers in
    :mod:`repro.sim.system`; see the module docstring for the
    correctness argument.
    """

    def __init__(
        self, simulator: Any, core: Any, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> None:
        # Captured at construction so tests can monkeypatch the module
        # global to force the pure-Python mirror build.
        self._np = _np
        self._batch = max(1, int(batch_size))
        self._core = core
        self._records = core.trace.records
        # --- live L1 TLB views, in probe order (4K, 2M, 1G) ---
        tlb = core.tlb
        self._tlb_stats = tlb.stats
        self._view_sets: List[List[Dict[int, int]]] = []
        self._view_masks: List[int] = []
        self._view_stats: List[Any] = []
        self._page_shifts: List[int] = []
        for size in _L1_PAGE_SIZES:
            array = tlb._l1[size]
            self._view_sets.append(array._sets)
            self._view_masks.append(array._set_mask)
            self._view_stats.append(array.stats)
            self._page_shifts.append(PAGE_SHIFTS[size])
        # --- live L1 data-cache view ---
        cache = simulator.hierarchy.l1[core.cpu]
        self._cache_sets: List[Dict[int, bool]] = cache._sets
        self._cache_mask: int = cache._set_mask
        self._cache_hits = cache._hits
        self._line_shift: int = cache._line_shift
        # --- shared state + timing constants ---
        self._pending: List[Any] = simulator.hierarchy._pending_dram_writebacks
        self._nonmem: int = simulator._nonmem_per_gap
        # One TLB-probe cycle plus the L1 hit latency (an L1 TLB hit
        # adds no extra translation latency).
        self._step: int = 1 + simulator.hierarchy._l1_latency
        # --- irregular TLB-hit path handles (single-core drive loop) ---
        self._cpu: int = core.cpu
        self._tlb_lookup = tlb.lookup
        self._access = simulator.hierarchy.access
        self._fill_from_memory = simulator.hierarchy.fill_from_memory
        self._drain_writebacks = simulator.hierarchy.drain_writebacks
        self._submit_and_wait = simulator.controller.submit_and_wait
        self._submit_writeback = simulator.controller.submit_writeback
        self._record_llc_fill = simulator.energy.record_llc_fill
        # --- lazily-created counter handles (never pre-created: an
        # untouched counter must not appear in the exported stats) ---
        self._counter_memo: Dict[Tuple[int, str], Any] = {}
        self._l1_hits_counter: Optional[Any] = None
        # --- SoA mirrors of the current chunk ---
        self._base = 0
        self._end = 0
        self._vpns: Tuple[List[int], List[int], List[int]] = ([], [], [])
        self._offs: Tuple[List[int], List[int], List[int]] = ([], [], [])
        self._gaps: List[int] = []
        self._writes: List[bool] = []

    # ------------------------------------------------------------------
    # SoA chunk build
    # ------------------------------------------------------------------

    def _load_chunk(self, pos: int) -> None:
        """Mirror ``records[pos : pos+batch]`` into struct-of-arrays form."""
        records = self._records
        end = min(pos + self._batch, len(records))
        vaddrs: List[int] = []
        gaps: List[int] = []
        writes: List[bool] = []
        for index in range(pos, end):
            record = records[index]
            vaddrs.append(record.vaddr)
            gaps.append(record.gap)
            writes.append(record.is_write)
        line_shift = self._line_shift
        np = self._np
        if np is not None:
            v = np.asarray(vaddrs, dtype=np.int64)
            vpns = tuple((v >> shift).tolist() for shift in self._page_shifts)
            offs = tuple(
                ((v & ((1 << shift) - 1)) >> line_shift).tolist()
                for shift in self._page_shifts
            )
        else:
            vpns = tuple(
                [vaddr >> shift for vaddr in vaddrs] for shift in self._page_shifts
            )
            offs = tuple(
                [(vaddr & ((1 << shift) - 1)) >> line_shift for vaddr in vaddrs]
                for shift in self._page_shifts
            )
        self._vpns = vpns  # type: ignore[assignment]
        self._offs = offs  # type: ignore[assignment]
        self._gaps = gaps
        self._writes = writes
        self._base = pos
        self._end = end

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def consume_regular(self, bound: int) -> int:
        """Claim the maximal run of regular records below *bound*.

        Advances ``core.position``/``core.time`` and applies the run's
        effects; returns the number of records claimed (0 when the head
        record is irregular, the bound is reached, or pending
        writebacks make even L1 hits effectful).  Never blocks, so the
        multicore event interleave can call it between engine records.
        """
        core = self._core
        pos: int = core.position
        if pos >= bound or self._pending:
            return 0
        if not self._base <= pos < self._end:
            self._load_chunk(pos)
        stop = bound if bound < self._end else self._end
        count, gap_total, c0, c1, c2 = self._claim_run(pos, stop)
        if count == 0:
            return 0
        core.time += self._nonmem * gap_total + count * self._step
        core.position = pos + count
        self._bump_counters(count, c0, c1, c2)
        return count

    def drive(self, bound: int) -> int:
        """Single-core driver loop: advance the core to *bound* or to
        the next full TLB miss, whichever comes first.

        Regular runs are claimed in bulk; irregular TLB-hit records
        (any cache outcome, including DRAM) are processed inline with
        exactly the scalar fast path's operations in the same order.
        When the head record misses the whole TLB the method returns
        with the probe already performed (calling ``tlb.lookup`` again
        would perturb LRU state and hit counters) -- the caller drains
        that one record through the event engine, mirroring
        ``_run_single``'s fallback.

        Returns the number of records processed.  Unlike
        :meth:`consume_regular` this loop may block on DRAM, so it is
        only used by the single-core driver.
        """
        core = self._core
        pos: int = core.position
        if pos >= bound:
            return 0
        records = self._records
        pending = self._pending
        nonmem = self._nonmem
        tlb_lookup = self._tlb_lookup
        access = self._access
        fill_from_memory = self._fill_from_memory
        drain_writebacks = self._drain_writebacks
        submit_and_wait = self._submit_and_wait
        submit_writeback = self._submit_writeback
        record_llc_fill = self._record_llc_fill
        offset_masks = PAGE_OFFSET_MASKS
        cpu = self._cpu
        runtime = core.runtime
        dram_refs = core.dram_refs
        claim_run = self._claim_run
        bump_counters = self._bump_counters
        step = self._step
        base = self._base
        end = self._end
        start = pos
        time: int = core.time
        while pos < bound:
            if not base <= pos < end:
                self._load_chunk(pos)
                base = self._base
                end = self._end
            stop = bound if bound < end else end
            # --- claim the maximal regular run at the head ---
            if not pending:
                count, gap_total, c0, c1, c2 = claim_run(pos, stop)
                if count:
                    time += nonmem * gap_total + count * step
                    pos += count
                    bump_counters(count, c0, c1, c2)
                    if pos >= stop:
                        # Chunk or bound boundary, not an irregular head.
                        continue
            # --- irregular head: the scalar fast path, inlined ---
            record = records[pos]
            vaddr = record.vaddr
            head_time = time + record.gap * nonmem
            hit = tlb_lookup(vaddr)
            if hit is None:
                # Full TLB miss: hand back to the event engine with the
                # probe done (LRU/counters already updated).
                break
            frame, page_size, extra_latency = hit
            head_time += 1 + extra_latency
            paddr = frame | (vaddr & offset_masks[page_size])
            result = access(cpu, paddr, record.is_write)
            head_time += result.latency
            if result.needs_dram:
                request = MemoryRequest(
                    paddr & LINE_MASK,
                    KIND_DEMAND,
                    cpu=cpu,
                    is_write=record.is_write,
                    enqueue_time=head_time,
                )
                finish = submit_and_wait(request, head_time)
                runtime.dram_other_cycles += finish - head_time
                dram_refs.other += 1
                fill_from_memory(cpu, paddr, record.is_write)
                record_llc_fill()
                head_time = finish
            for victim in drain_writebacks():
                submit_writeback(victim.paddr, cpu, head_time)
                dram_refs.writeback += 1
            time = head_time
            pos += 1
        core.time = time
        core.position = pos
        return pos - start

    # ------------------------------------------------------------------
    # Run claim + counter application
    # ------------------------------------------------------------------

    def _claim_run(self, pos: int, stop: int) -> Tuple[int, int, int, int, int]:
        """Classify-and-apply the regular run starting at *pos*.

        For each record that is an L1 TLB hit *and* an L1 cache hit,
        perform the record's dict permutations in order (LRU refresh of
        the TLB entry; LRU refresh + dirty OR of the cache line) --
        exactly the operations ``SetAssociativeTlb.lookup`` and
        ``Cache.lookup`` perform, minus the counter traffic, which the
        caller applies per-run from the returned level counts.

        Returns ``(count, gap_total, c0, c1, c2)`` where ``cN`` counts
        hits in the Nth probed TLB array.
        """
        base = self._base
        j = pos - base
        vpns4, vpns2, vpns1 = self._vpns
        offs4, offs2, offs1 = self._offs
        sets4, sets2, sets1 = self._view_sets
        mask4, mask2, mask1 = self._view_masks
        cache_sets = self._cache_sets
        cache_mask = self._cache_mask
        line_shift = self._line_shift
        gaps = self._gaps
        writes = self._writes
        j_stop = stop - base
        j_start = j
        gap_total = 0
        c1 = 0
        c2 = 0
        while j < j_stop:
            vpn = vpns4[j]
            entries = sets4[vpn & mask4]
            frame = entries.get(vpn)
            if frame is not None:
                level = 0
                line = (frame >> line_shift) + offs4[j]
            else:
                vpn = vpns2[j]
                entries = sets2[vpn & mask2]
                frame = entries.get(vpn)
                if frame is not None:
                    level = 1
                    line = (frame >> line_shift) + offs2[j]
                else:
                    vpn = vpns1[j]
                    entries = sets1[vpn & mask1]
                    frame = entries.get(vpn)
                    if frame is None:
                        break
                    level = 2
                    line = (frame >> line_shift) + offs1[j]
            centries = cache_sets[line & cache_mask]
            dirty = centries.pop(line, None)
            if dirty is None:
                # Cache miss: the probes above were effect-free (`get`
                # and a no-op `pop` default), so the record replays
                # cleanly through the scalar path -- which also applies
                # the TLB refresh and counters this loop skipped.
                break
            centries[line] = dirty or writes[j]
            entries[vpn] = entries.pop(vpn)
            if level:
                if level == 1:
                    c1 += 1
                else:
                    c2 += 1
            gap_total += gaps[j]
            j += 1
        count = j - j_start
        return count, gap_total, count - c1 - c2, c1, c2

    def _bump_counters(self, count: int, c0: int, c1: int, c2: int) -> None:
        """Apply one run's counter sums (lazily binding the counters)."""
        if c0:
            self._counter(0, "hits").add(c0)
        if c1 or c2:
            self._counter(0, "misses").add(c1 + c2)
        if c1:
            self._counter(1, "hits").add(c1)
        if c2:
            self._counter(1, "misses").add(c2)
            self._counter(2, "hits").add(c2)
        l1_hits = self._l1_hits_counter
        if l1_hits is None:
            l1_hits = self._tlb_stats.counter("l1_hits")
            self._l1_hits_counter = l1_hits
        l1_hits.add(count)
        self._cache_hits.value += count

    def _counter(self, level: int, name: str) -> Any:
        memo = self._counter_memo
        key = (level, name)
        counter = memo.get(key)
        if counter is None:
            counter = self._view_stats[level].counter(name)
            memo[key] = counter
        return counter
