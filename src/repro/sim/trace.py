"""Memory traces and the virtual-layout contract.

A trace is the paper's Pin-log equivalent: an ordered list of memory
references, each with a virtual address, read/write flag, the cycles of
non-memory work preceding it, and an optional *pattern* label marking
which indirect stream (``A[B[i]]``) the access belongs to -- the ground
truth the IMP prefetcher model consumes (see :mod:`repro.cache.imp`).

Workload generators and the simulator must agree on where regions live
in virtual memory; :func:`plan_virtual_layout` is the single source of
truth (it mirrors ``AddressSpace.allocate_region``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.common.constants import PAGE_SIZE_1G
from repro.common.errors import SimulationError
from repro.vm.address_space import REGION_SPACE_BASE


class TraceRecord:
    """One memory reference."""

    __slots__ = ("vaddr", "is_write", "gap", "pattern")

    def __init__(
        self,
        vaddr: int,
        is_write: bool = False,
        gap: int = 0,
        pattern: Optional[str] = None,
    ) -> None:
        self.vaddr = vaddr
        self.is_write = is_write
        self.gap = gap
        self.pattern = pattern

    def __repr__(self) -> str:
        mode = "W" if self.is_write else "R"
        return "TraceRecord(%s 0x%x, gap=%d)" % (mode, self.vaddr, self.gap)


class RegionSpec:
    """A region the workload expects to exist, with its planned base."""

    __slots__ = ("name", "size", "base", "allow_superpages", "thp_eligibility")

    def __init__(
        self,
        name: str,
        size: int,
        base: int,
        allow_superpages: bool = True,
        thp_eligibility: float = 1.0,
    ) -> None:
        self.name = name
        self.size = size
        self.base = base
        self.allow_superpages = allow_superpages
        self.thp_eligibility = thp_eligibility

    def __repr__(self) -> str:
        return "RegionSpec(%s @0x%x, %d MB)" % (
            self.name,
            self.base,
            self.size // (1024 * 1024),
        )


def plan_virtual_layout(sizes: Sequence[int]) -> List[int]:
    """Compute the deterministic region bases for ordered *sizes*.

    Mirrors ``AddressSpace.allocate_region``: each region starts at the
    1 GB boundary after the previous region's end plus a 1 GB guard gap,
    beginning at ``REGION_SPACE_BASE``.
    """
    bases: List[int] = []
    next_base = REGION_SPACE_BASE
    for size in sizes:
        if size <= 0:
            raise SimulationError(
                "region sizes must be positive",
                context={"sizes": list(sizes)},
            )
        bases.append(next_base)
        end = next_base + size
        next_base = ((end + PAGE_SIZE_1G - 1) // PAGE_SIZE_1G + 1) * PAGE_SIZE_1G
    return bases


class Trace:
    """An ordered reference stream plus the regions it touches."""

    def __init__(
        self,
        name: str,
        records: Sequence[TraceRecord],
        regions: Sequence[RegionSpec],
        footprint_bytes: Optional[int] = None,
    ) -> None:
        self.name = name
        self.records = records
        self.regions = regions
        self.footprint_bytes = (
            footprint_bytes
            if footprint_bytes is not None
            else sum(region.size for region in regions)
        )
        self._next_same_pattern: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def validate(self) -> "Trace":
        """Check every reference falls inside a declared region."""
        spans = sorted((region.base, region.base + region.size) for region in self.regions)
        for record in self.records:
            if not any(base <= record.vaddr < end for base, end in spans):
                raise SimulationError(
                    "trace %r references 0x%x outside every region"
                    % (self.name, record.vaddr),
                    context={
                        "trace": self.name,
                        "vaddr": record.vaddr,
                        "regions": [
                            (region.name, region.base, region.size)
                            for region in self.regions
                        ],
                    },
                )
        return self

    def next_same_pattern(self) -> List[int]:
        """``next_index[i]`` = trace position of the next record sharing
        record *i*'s pattern label (or -1).  Computed once, O(n); this is
        the lookahead oracle the IMP model consumes."""
        if self._next_same_pattern is None:
            next_index = [-1] * len(self.records)
            last_seen: Dict[str, int] = {}
            for position in range(len(self.records) - 1, -1, -1):
                pattern = self.records[position].pattern
                if pattern is not None:
                    next_index[position] = last_seen.get(pattern, -1)
                    last_seen[pattern] = position
            self._next_same_pattern = next_index
        return self._next_same_pattern

    def __repr__(self) -> str:
        return "Trace(%s, %d refs, %d MB footprint)" % (
            self.name,
            len(self.records),
            self.footprint_bytes // (1024 * 1024),
        )
