"""The trace-driven system simulator (paper Figures 5 and 6).

Each trace record flows through the full machine:

1. non-memory work (``gap`` cycles), then the TLB;
2. on a TLB miss, the page-table walk: MMU-cache probes, then real
   memory references per level through L1/L2/LLC and -- for misses --
   DRAM via the memory controller.  The leaf request carries TEMPO's tag
   and the replay's cache-line index;
3. when the leaf-PT access hit DRAM and TEMPO is on, the controller's
   prefetch engine has enqueued the replay-data prefetch; the simulator
   advances the controller to the replay's LLC-lookup time and asks what
   the prefetch achieved;
4. the post-translation (replay or regular) access runs through the
   caches and, if needed, DRAM -- enjoying the prefetched LLC line or
   open row when TEMPO was timely.

Cycle accounting lands in the Figure-1 buckets (DRAM-PTW / DRAM-Replay /
DRAM-Other), DRAM reference counting in the Figure-4 buckets, and replay
service classification in the Figure-11 buckets.

Multiprogrammed runs are event-driven: each core's engine is a generator
that yields its memory requests; the driver lets every core run until it
blocks, then services the shared memory controller's queues in
decision-time order until someone's request completes -- so requests
from different cores genuinely contend in the transaction queues.  Cores
share the LLC, the memory controller, and physical memory, but have
private L1/L2, TLBs, MMU caches, page tables, and address spaces
(separate processes).
"""

from repro.common.addressing import LINE_MASK, PAGE_OFFSET_MASKS, cache_line_base, translate
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, ReproError, SimulationError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.imp import ImpPrefetcher
from repro.core.prefetch_engine import PrefetchEngine
from repro.dram.energy import EnergyModel
from repro.mmu.mmu_cache import MmuCaches
from repro.mmu.tlb import TlbHierarchy
from repro.mmu.walker import PageTableWalker
from repro.obs.manifest import RunManifest
from repro.obs.profiler import PhaseProfiler, ProgressMeter
from repro.obs.registry import MetricsRegistry
from repro.sched.controller import MemoryController
from repro.sched.request import KIND_DEMAND, KIND_IMP_PREFETCH, KIND_PT, MemoryRequest
from repro.sim.kernel import DEFAULT_BATCH_SIZE, BatchKernel
from repro.sim.metrics import (
    CoreResult,
    DramReferenceBreakdown,
    ReplayServiceBreakdown,
    RuntimeBreakdown,
    SimulationResult,
)
from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import FrameAllocator
from repro.vm.superpage import make_policy

#: Sentinel for :meth:`SystemSimulator._record_events`: "no TLB probe
#: was done yet, perform it inside the engine".
_TLB_PROBE = object()


class _CoreContext:
    """Per-core machine state: one process on one core."""

    __slots__ = (
        "cpu",
        "trace",
        "address_space",
        "tlb",
        "mmu_caches",
        "walker",
        "imp",
        "time",
        "position",
        "measure_start_time",
        "measure_start_position",
        "runtime",
        "dram_refs",
        "replay_service",
        "pending_prefetch_lines",
        "next_same_pattern",
        "attributing",
    )

    def __init__(self, cpu, trace, address_space, tlb, mmu_caches, walker, imp):
        self.cpu = cpu
        self.trace = trace
        self.address_space = address_space
        self.tlb = tlb
        self.mmu_caches = mmu_caches
        self.walker = walker
        self.imp = imp
        self.time = 0
        self.position = 0
        self.measure_start_time = 0
        self.measure_start_position = 0
        self.runtime = RuntimeBreakdown()
        self.dram_refs = DramReferenceBreakdown()
        self.replay_service = ReplayServiceBreakdown()
        #: In-flight IMP prefetches: line_id -> completion time.
        self.pending_prefetch_lines = {}
        self.next_same_pattern = trace.next_same_pattern() if imp is not None else None
        #: True while a demand reference is being attributed; work
        #: outside any reference (IMP prefetch paths) stays excluded
        #: from the bottleneck buckets.
        self.attributing = False

    @property
    def done(self):
        return self.position >= len(self.trace.records)


class SystemSimulator:
    """See module docstring.  One or more traces, one shared memory
    system."""

    def __init__(
        self,
        config,
        traces,
        seed=None,
        tracer=None,
        progress=None,
        progress_interval=5000,
        check_invariants=None,
        force_engine=False,
        timeline=None,
        kernel=None,
        batch_size=DEFAULT_BATCH_SIZE,
    ):
        if isinstance(traces, (list, tuple)):
            trace_list = list(traces)
        else:
            trace_list = [traces]
        if not trace_list:
            raise SimulationError(
                "need at least one trace",
                context={"traces_type": type(traces).__name__},
            )
        if not isinstance(config, SystemConfig):
            raise ConfigError(
                "config must be a SystemConfig, got %s" % type(config).__name__,
                context={"config_type": type(config).__name__},
            )
        config.validate()
        if config.num_cores != len(trace_list):
            config = config.copy_with(num_cores=len(trace_list))
        self.config = config
        self.seed = seed if seed is not None else config.seed
        #: Nullable lifecycle tracer (:class:`repro.obs.EventTracer`);
        #: hot paths pay one ``is None`` test when it is off.
        self.tracer = tracer
        #: Nullable utilization/attribution recorder
        #: (:class:`repro.obs.timeline.TimelineRecorder`); same contract
        #: as the tracer -- the off path is a single ``is None`` test
        #: and none of the recorded data enters ``result.stats``.
        self.timeline = timeline
        self._progress = progress
        self._progress_interval = progress_interval
        #: When True, every record goes through the event engine even
        #: when the TLB-hit fast path would apply (the fast-vs-engine
        #: differential oracle forces both paths on the same input).
        self._force_engine = bool(force_engine)
        #: Which hot-loop kernel drives regular records: "scalar" (the
        #: per-reference fast path) or "batch" (the vectorized
        #: chunk-classify kernel in :mod:`repro.sim.kernel`).  Both are
        #: bit-identical; "batch" trades per-record dispatch for bulk
        #: stat application.
        if kernel not in (None, "scalar", "batch"):
            raise ConfigError(
                "kernel must be 'scalar' or 'batch', got %r" % (kernel,),
                context={"kernel": kernel},
            )
        self.kernel = kernel or "scalar"
        if batch_size < 1:
            raise ConfigError(
                "batch_size must be >= 1, got %r" % (batch_size,),
                context={"batch_size": batch_size, "kernel": self.kernel},
            )
        self._batch_size = int(batch_size)
        #: Nullable invariant-audit suite + flight recorder
        #: (:mod:`repro.verify`); like the tracer, hot paths pay one
        #: ``is None`` test when ``check_invariants`` is off.
        self.audit = None
        self.recorder = None
        if check_invariants is not None and check_invariants != "off":
            # Imported lazily: repro.verify builds on this module.
            from repro.verify.auditor import AuditorSuite
            from repro.verify.recorder import FlightRecorder

            self.recorder = FlightRecorder()
            self.audit = AuditorSuite(
                check_invariants,
                recorder=self.recorder,
                quiescent_ticks=len(trace_list) == 1,
            )
        self.profiler = PhaseProfiler()
        self.manifest = None
        rng = DeterministicRng(self.seed, "system")

        tempo_on = config.tempo.enabled
        self.allocator = FrameAllocator(config.vm.phys_mem_bytes, rng.derive("allocator"))
        self.hierarchy = CacheHierarchy(config, num_cores=len(trace_list))
        self.energy = EnergyModel(config.energy, tempo_enabled=tempo_on)
        self.engine = PrefetchEngine(config.tempo) if tempo_on else None
        self.controller = MemoryController(config, self.energy, self.engine)
        self.stats = StatGroup("system")
        # Hot-path handle: one histogram record per page-table walk.
        self._walk_hist = self.stats.histogram("walk_cycles")

        # hugetlbfs pools must be reserved before memhog fragments memory.
        self.cores = []
        for cpu, trace in enumerate(trace_list):
            policy = make_policy(config.vm, self.allocator, trace.footprint_bytes)
            address_space = AddressSpace(self.allocator, policy)
            self._register_regions(address_space, trace)
            # Plain structure names: the metrics harvest scopes each
            # core's groups under a "core<N>" prefix.
            tlb = TlbHierarchy(config.tlb, "tlb")
            mmu_caches = MmuCaches(config.mmu_cache, "mmu_cache")
            walker = PageTableWalker(
                address_space.page_table, mmu_caches, tempo_tagging=tempo_on
            )
            imp = ImpPrefetcher(config.imp, "imp") if config.imp.enabled else None
            self.cores.append(
                _CoreContext(cpu, trace, address_space, tlb, mmu_caches, walker, imp)
            )
        self.allocator.apply_memhog(config.vm.memhog_fraction)

        core_config = config.core
        self._nonmem_per_gap = core_config.nonmem_cycles_per_gap
        self._llc_latency = core_config.llc_latency
        self._tlb_fill_latency = core_config.tlb_fill_latency
        self._mmu_latency = config.mmu_cache.latency
        self._imp_distance = config.imp.max_prefetch_distance
        if timeline is not None:
            self._attach_utilization(timeline.ledger)

    def _attach_utilization(self, ledger):
        """Wire every simulated unit to its utilization track; the off
        path never reaches here, so per-unit hooks stay ``None``."""
        cpus = range(len(self.cores))
        self.hierarchy.attach_util(
            [ledger.unit("core%d.l1" % cpu) for cpu in cpus],
            [ledger.unit("core%d.l2" % cpu) for cpu in cpus],
            ledger.unit("llc"),
        )
        engine_track = ledger.unit("tempo.engine") if self.engine is not None else None
        self.controller.attach_util(
            [
                ledger.unit("dram.channel%d" % channel)
                for channel in range(self.controller.num_channels)
            ],
            engine_track,
        )
        self.controller.device.attach_util(
            [
                ledger.unit("dram.bank%d" % index)
                for index in range(len(self.controller.device.banks))
            ]
        )
        for core in self.cores:
            prefix = "core%d" % core.cpu
            core.tlb.attach_util(
                ledger.unit(prefix + ".tlb.l1"), ledger.unit(prefix + ".tlb.l2")
            )
            core.mmu_caches.util = ledger.unit(prefix + ".mmu_cache")
            core.walker.util = ledger.unit(prefix + ".walker")
            if core.imp is not None:
                core.imp.util = ledger.unit(prefix + ".imp")

    @staticmethod
    def _register_regions(address_space, trace):
        for spec in trace.regions:
            region = address_space.allocate_region(
                spec.size, spec.name, spec.allow_superpages, spec.thp_eligibility
            )
            if region.base != spec.base:
                raise SimulationError(
                    "region %r planned at 0x%x but allocated at 0x%x -- "
                    "generator and AddressSpace layouts diverged"
                    % (spec.name, spec.base, region.base),
                    context={
                        "region": spec.name,
                        "trace": trace.name,
                        "planned_base_addr": spec.base,
                        "allocated_base_addr": region.base,
                    },
                )

    # ------------------------------------------------------------------
    # Top-level run loops
    # ------------------------------------------------------------------

    def run(self, max_records=None, warmup=None):
        """Simulate to completion (or *max_records* per core).

        *warmup* records per core (default: a third of the run) are
        simulated with full state effects but excluded from every
        reported metric -- the paper's traces capture steady-state
        execution, so first-touch transients (demand faults, cold upper
        page-table levels) must not pollute the breakdowns.

        Returns a :class:`~repro.sim.metrics.SimulationResult`.
        """
        limits = []
        for core in self.cores:
            limit = len(core.trace.records)
            if max_records is not None:
                limit = min(limit, max_records)
            limits.append(limit)
        if warmup is None:
            warmup = min(limits) // 3
        warmup = min(warmup, min(limits) - 1) if min(limits) > 0 else 0

        meter = None
        if self._progress is not None:
            meter = ProgressMeter(
                self._progress, sum(limits), interval=self._progress_interval
            )
        self.manifest = RunManifest(
            self.config,
            self.seed,
            [core.trace for core in self.cores],
            warmup_records=warmup,
            kernel=self.kernel,
        )
        sampler = self.timeline.sampler if self.timeline is not None else None
        if sampler is not None:
            sampler.bind(lambda: self.metrics_registry().collect())
        profiler = self.profiler
        # The batch kernel only claims regular records on cores without
        # observers attached; tracing, timelines, audits, force-engine,
        # and IMP all drain through the scalar engine paths unchanged.
        batch_ok = (
            self.kernel == "batch"
            and self.tracer is None
            and self.timeline is None
            and self.audit is None
            and not self._force_engine
        )
        try:
            if len(self.cores) == 1:
                profiler.begin("warmup" if warmup > 0 else "measure")
                core = self.cores[0]
                if batch_ok and core.imp is None:
                    self._run_batch_single(core, limits[0], warmup, meter)
                else:
                    self._run_single(core, limits[0], warmup, meter)
            else:
                profiler.begin("simulate")
                self._run_interleaved(limits, warmup, meter, batch=batch_ok)
            profiler.begin("drain")
            final_time = self.controller.drain_all()
            if self.audit is not None:
                self.audit.checkpoint(self, quiescent=True)
        except ReproError as exc:
            self._report_crash(exc)
            raise
        profiler.end()
        if meter is not None:
            meter.finish()
        self.manifest.timings = profiler.summary(
            records=sum(core.position for core in self.cores)
        )
        if self.audit is not None:
            self.manifest.audit = self.audit.summary()
        total_cycles = max(max(core.time for core in self.cores), final_time)
        if sampler is not None:
            sampler.finish(total_cycles)
        return self._build_result(total_cycles)

    def _report_crash(self, exc):
        """Flesh out an escaping error with machine state and emit the
        structured crash report (JSON on stderr)."""
        context = getattr(exc, "context", None)
        if context is None:
            return
        context.setdefault("cycle", max(core.time for core in self.cores))
        context.setdefault(
            "positions", {core.cpu: core.position for core in self.cores}
        )
        context.setdefault("pending_requests", self.controller.pending_requests())
        if self.recorder is not None and "flight_recorder" not in context:
            context["flight_recorder"] = self.recorder.dump()
        import json
        import sys

        report = {
            "error": type(exc).__name__,
            "message": str(exc),
            "context": context,
        }
        try:
            serialised = json.dumps(report, default=repr, indent=2)
        except (TypeError, ValueError):
            serialised = json.dumps(
                {"error": type(exc).__name__, "message": str(exc)}
            )
        sys.stderr.write(serialised + "\n")

    def _reset_measurement(self, core):
        """End of this core's warmup: zero its metric accumulators."""
        core.measure_start_time = core.time
        core.measure_start_position = core.position
        core.runtime = RuntimeBreakdown()
        core.dram_refs = DramReferenceBreakdown()
        core.replay_service = ReplayServiceBreakdown()

    def _run_single(self, core, limit, warmup, meter=None):
        """Single-core driver with a TLB-hit fast path.

        Records whose translation hits the TLB -- the overwhelming
        majority on every workload -- are processed inline: no
        generator, no event dispatch, and every hot callable/constant
        bound to a local.  The inline path performs exactly the
        operations of :meth:`_record_events` /
        :meth:`_post_translation` in the same order, so results are
        bit-identical to the event engine (test_system_fast_path pins
        this against the traced run, which uses the engine for every
        record).  TLB misses fall back to the engine with the probe
        already done (a second lookup would perturb LRU state and hit
        counters); tracing or IMP disable the fast path entirely.
        """
        records = core.trace.records
        fast = (
            self.tracer is None
            and core.imp is None
            and not self._force_engine
            and self.timeline is None
        )
        sampler = self.timeline.sampler if self.timeline is not None else None

        audit = self.audit
        recorder = self.recorder
        controller = self.controller
        hierarchy = self.hierarchy
        nonmem_per_gap = self._nonmem_per_gap
        tlb_lookup = core.tlb.lookup
        access = hierarchy.access
        drain_writebacks = hierarchy.drain_writebacks
        fill_from_memory = hierarchy.fill_from_memory
        submit_and_wait = controller.submit_and_wait
        submit_writeback = controller.submit_writeback
        record_llc_fill = self.energy.record_llc_fill
        offset_masks = PAGE_OFFSET_MASKS
        cpu = core.cpu
        runtime = core.runtime
        dram_refs = core.dram_refs

        while core.position < limit:
            if core.position == warmup:
                self._reset_measurement(core)
                self.energy.reset()
                self.profiler.begin("measure")
                runtime = core.runtime
                dram_refs = core.dram_refs
            record = records[core.position]
            if fast:
                vaddr = record.vaddr
                time = core.time + record.gap * nonmem_per_gap
                hit = tlb_lookup(vaddr)
                if hit is not None:
                    frame, page_size, extra_latency = hit
                    time += 1 + extra_latency
                    paddr = frame | (vaddr & offset_masks[page_size])
                    result = access(cpu, paddr, record.is_write)
                    time += result.latency
                    if result.needs_dram:
                        request = MemoryRequest(
                            paddr & LINE_MASK,
                            KIND_DEMAND,
                            cpu=cpu,
                            is_write=record.is_write,
                            enqueue_time=time,
                        )
                        finish = submit_and_wait(request, time)
                        runtime.dram_other_cycles += finish - time
                        dram_refs.other += 1
                        fill_from_memory(cpu, paddr, record.is_write)
                        record_llc_fill()
                        time = finish
                    for victim in drain_writebacks():
                        submit_writeback(victim.paddr, cpu, time)
                        dram_refs.writeback += 1
                    core.time = time
                    if recorder is not None:
                        recorder.record(
                            "ref",
                            cpu=cpu,
                            vaddr=vaddr,
                            time=time,
                            walked=False,
                            write=record.is_write,
                        )
                else:
                    self._drive_events(self._record_events(core, record, hit=None))
            else:
                self._process_record(core, record)
            core.position += 1
            if meter is not None:
                meter.tick()
            if audit is not None:
                audit.tick(self)
            if sampler is not None:
                sampler.maybe_sample(core.time)

    def _run_batch_single(self, core, limit, warmup, meter=None):
        """Single-core driver for ``--kernel batch``.

        A :class:`~repro.sim.kernel.BatchKernel` drives the core
        between page walks: maximal runs of regular records (L1 TLB hit
        + L1 cache hit) are consumed in bulk, irregular TLB-hit records
        take the same inline fast path as :meth:`_run_single`, and only
        full TLB misses return here to drain through the event engine
        (with the probe already done).  The warmup boundary caps each
        drive so measurement reset happens at exactly the same position
        as the scalar drivers.
        """
        kernel = BatchKernel(self, core, self._batch_size)
        records = core.trace.records

        while core.position < limit:
            if core.position == warmup:
                self._reset_measurement(core)
                self.energy.reset()
                self.profiler.begin("measure")
            bound = warmup if core.position < warmup else limit
            consumed = kernel.drive(bound)
            if consumed and meter is not None:
                meter.tick(consumed)
            if core.position >= bound:
                continue
            record = records[core.position]
            self._drive_events(self._record_events(core, record, hit=None))
            core.position += 1
            if meter is not None:
                meter.tick()

    def _run_interleaved(self, limits, warmup, meter=None, batch=False):
        """Event-driven interleave of per-core streams.

        Cores advance until each blocks on a DRAM request (or runs out
        of records); only then does the controller service queues -- one
        request at a time, always on the channel with the earliest
        decision time -- until a blocked core's request completes and
        that core resumes.  Because a blocked core cannot submit again
        before its completion, every service decision sees every request
        that could causally compete with it.
        """
        controller = self.controller
        warm_cores = 0
        sampler = self.timeline.sampler if self.timeline is not None else None
        # Per-cpu state: ("run", generator, reply) | ("blocked",) | None.
        state = {}
        blocked = {}  # req_id -> (cpu, generator, request)
        kernels = {}
        if batch:
            kernels = {
                core.cpu: BatchKernel(self, core, self._batch_size)
                for core in self.cores
                if core.imp is None
            }

        def start_next(core):
            """Begin the core's next record (handling warmup), or None.

            With the batch kernel attached, bulk-consume regular records
            first; only irregular records get an engine generator.  The
            consume is safe inside Phase A because regular records never
            touch shared state (the kernel refuses to run while
            cross-core writebacks are pending).
            """
            nonlocal warm_cores
            cpu = core.cpu
            kern = kernels.get(cpu)
            while True:
                if core.position >= limits[cpu]:
                    return None
                if core.position == warmup:
                    self._reset_measurement(core)
                    warm_cores += 1
                    if warm_cores == len(self.cores):
                        self.energy.reset()
                if kern is None:
                    return self._record_events(core, core.trace.records[core.position])
                bound = warmup if core.position < warmup else limits[cpu]
                consumed = kern.consume_regular(bound)
                if consumed:
                    if meter is not None:
                        meter.tick(consumed)
                    continue
                return self._record_events(core, core.trace.records[core.position])

        _START = object()
        for core, limit in zip(self.cores, limits):
            events = start_next(core) if limit > 0 else None
            state[core.cpu] = ("run", events, _START) if events else None

        while True:
            # Phase A: run every unblocked core until it blocks or ends.
            for cpu in sorted(state):
                entry = state[cpu]
                if entry is None or entry[0] != "run":
                    continue
                _, events, reply = entry
                core = self.cores[cpu]
                while True:
                    try:
                        event = next(events) if reply is _START else events.send(reply)
                    except StopIteration:
                        core.position += 1
                        if meter is not None:
                            meter.tick()
                        if self.audit is not None:
                            self.audit.tick(self)
                        if sampler is not None:
                            sampler.maybe_sample(core.time)
                        events = start_next(core)
                        if events is None:
                            state[cpu] = None
                            break
                        reply = _START
                        continue
                    if event[0] == "advance":
                        controller.advance_to(event[1])
                        reply = None
                        continue
                    # ("dram", request, submit_time)
                    request = event[1]
                    if not controller.submit_async(request, event[2]):
                        reply = None  # dropped prefetch-kind request
                        continue
                    blocked[request.req_id] = (cpu, events, request)
                    state[cpu] = ("blocked",)
                    break

            if not blocked:
                break  # every core finished its records

            # Phase B: service queues in decision-time order until at
            # least one blocked request completes.  (An "advance" during
            # Phase A may already have serviced a blocked request, so
            # completion is detected on the request, not the return.)
            resumed = []
            while True:
                for req_id in list(blocked):
                    cpu, events, request = blocked[req_id]
                    if request.finish_time is not None:
                        resumed.append((cpu, events, request.finish_time))
                        del blocked[req_id]
                if resumed:
                    break
                pending_channels = [
                    ch
                    for ch in range(controller.num_channels)
                    if controller.has_pending(ch)
                ]
                if not pending_channels:
                    raise SimulationError(
                        "cores blocked on requests that are neither queued "
                        "nor serviced -- controller state is inconsistent",
                        context={
                            "blocked_requests": sorted(blocked),
                            "blocked_cores": sorted(
                                cpu for cpu, _, _ in blocked.values()
                            ),
                        },
                    )
                channel = min(pending_channels, key=controller.next_decision_time)
                controller.service_one(channel)
            for cpu, events, finish in resumed:
                state[cpu] = ("run", events, finish)

    def _build_result(self, total_cycles):
        core_results = []
        measured_cycles = 0
        for core in self.cores:
            references = core.position - core.measure_start_position
            core.runtime.total_cycles = core.time - core.measure_start_time
            measured_cycles = max(measured_cycles, core.runtime.total_cycles)
            core_results.append(
                CoreResult(
                    core.trace.name,
                    references,
                    core.runtime,
                    core.dram_refs,
                    core.replay_service,
                )
            )
        total_cycles = measured_cycles if measured_cycles > 0 else total_cycles
        superpage_fraction = (
            sum(core.address_space.superpage_fraction() for core in self.cores)
            / len(self.cores)
        )
        stats = self.metrics_registry().collect()
        if self.manifest is not None:
            stats.update(self.manifest.flat())
        return SimulationResult(
            core_results,
            self.energy.total_energy(total_cycles),
            superpage_fraction,
            stats,
            manifest=self.manifest,
        )

    def metrics_registry(self):
        """Every StatGroup in the machine, scoped into one namespace:
        shared structures at top level, per-core structures under
        ``core<N>.`` prefixes."""
        registry = MetricsRegistry()
        registry.register(self.stats)  # system.*
        registry.register(self.controller.stats)  # controller.*
        registry.register(self.controller.scheduler.stats)  # sched.<kind>.*
        registry.register(self.controller.device.stats)  # dram.bank.*
        registry.register(self.controller.device.row_policy.stats)
        registry.register(self.energy.stats)  # energy.*
        registry.register(self.hierarchy.stats)  # caches.*
        registry.register(self.hierarchy.llc.stats)  # llc.*
        registry.register(self.allocator.stats)  # frame_allocator.*
        if self.engine is not None:
            registry.register(self.engine.stats)  # tempo_engine.*
        for core in self.cores:
            prefix = "core%d" % core.cpu
            registry.register(core.tlb.stats, prefix)  # core<N>.tlb.*
            registry.register_all(core.tlb.stat_groups(), "%s.tlb" % prefix)
            registry.register(core.mmu_caches.stats, prefix)
            registry.register(core.walker.stats, prefix)
            registry.register(self.hierarchy.l1[core.cpu].stats, prefix)
            registry.register(self.hierarchy.l2[core.cpu].stats, prefix)
            if core.imp is not None:
                registry.register(core.imp.stats, prefix)
            registry.register(core.address_space.stats, prefix)
            registry.register(core.address_space.page_table.stats, prefix)
        return registry

    # ------------------------------------------------------------------
    # Per-reference engine
    # ------------------------------------------------------------------

    # The engine is written as a *generator*: each memory-system
    # interaction is yielded as an event, and the driver supplies the
    # completion time.  The single-core driver answers events
    # synchronously (identical timing to a direct implementation); the
    # multicore driver interleaves events from all cores through the
    # shared controller in causally-correct order.
    #
    # Event protocol:
    #   ("dram", request, submit_time) -> reply: finish time, or None
    #       when a prefetch-kind request was dropped at enqueue.
    #   ("advance", time)              -> reply: None (controller has
    #       serviced everything schedulable before `time`).

    def _process_record(self, core, record):
        """Single-core driver: answer each event immediately."""
        self._drive_events(self._record_events(core, record))

    def _drive_events(self, events):
        """Run one record's event generator to completion, answering
        every event synchronously from the shared controller."""
        try:
            event = next(events)
            while True:
                if event[0] == "dram":
                    reply = self.controller.submit_and_wait(event[1], event[2])
                else:
                    self.controller.advance_to(event[1])
                    reply = None
                event = events.send(reply)
        except StopIteration:
            pass

    def _record_events(self, core, record, hit=_TLB_PROBE):
        """One record's event stream.

        *hit* carries a TLB probe already performed by the fast path
        (probing is stateful -- LRU refresh plus hit/miss counters -- so
        it must happen exactly once per record); the default sentinel
        means "probe here".
        """
        tracer = self.tracer
        timeline = self.timeline
        time = core.time + record.gap * self._nonmem_per_gap
        self._expire_pending_prefetches(core, time)
        arrival = time
        attribution = None
        if timeline is not None:
            attribution = timeline.attribution
            attribution.begin(core.cpu, arrival)
            core.attributing = True

        vaddr = record.vaddr
        if hit is _TLB_PROBE:
            hit = core.tlb.lookup(vaddr)
        walked = False
        leaf_pt_request = None
        if hit is not None:
            frame, page_size, extra_latency = hit
            time += 1 + extra_latency
            if timeline is not None:
                core.tlb.report_lookup(arrival, hit)
                attribution.add_translation(core.cpu, 1 + extra_latency)
            if tracer is not None:
                tracer.span(
                    "tlb_lookup",
                    core.cpu,
                    arrival,
                    time,
                    {"outcome": "l1" if extra_latency == 0 else "l2"},
                )
        else:
            walked = True
            if timeline is not None:
                core.tlb.report_lookup(arrival, None)
            if tracer is not None:
                tracer.span(
                    "tlb_lookup", core.cpu, arrival, arrival + 1, {"outcome": "miss"}
                )
            time, frame, page_size, leaf_pt_request = yield from self._walk(
                core, vaddr, time
            )

        paddr = translate(vaddr, frame, page_size)
        time = yield from self._post_translation(
            core, record, paddr, time, walked, leaf_pt_request
        )

        for victim in self.hierarchy.drain_writebacks():
            self.controller.submit_writeback(victim.paddr, core.cpu, time)
            core.dram_refs.writeback += 1

        if attribution is not None:
            # The reference retires here; the IMP trigger below runs
            # outside it and stays out of the buckets.
            attribution.end(core.cpu, time)
            core.attributing = False

        if core.imp is not None:
            yield from self._imp_trigger(core, record, time)

        if tracer is not None:
            tracer.span(
                "record",
                core.cpu,
                arrival,
                time,
                {
                    "vaddr": "0x%x" % vaddr,
                    "walked": walked,
                    "write": record.is_write,
                },
            )
        if self.recorder is not None:
            self.recorder.record(
                "ref",
                cpu=core.cpu,
                vaddr=vaddr,
                time=time,
                walked=walked,
                write=record.is_write,
            )
        core.time = time

    # -- translation ----------------------------------------------------

    def _walk(self, core, vaddr, time):
        """Execute a page-table walk; returns
        ``(time, frame, page_size, leaf_pt_request_or_None)`` where the
        request is non-None only when the leaf access reached DRAM."""
        tracer = self.tracer
        timeline = self.timeline
        attribution = timeline.attribution if timeline is not None else None
        begin = time
        time += 1  # TLB probe that missed
        if attribution is not None:
            attribution.add_translation(core.cpu, 1)
        plan = core.walker.plan(vaddr)
        if plan.faulted:
            # Demand paging: the OS maps the page (steady-state traces,
            # so fault service time is not modelled -- see DESIGN.md).
            core.address_space.handle_fault(vaddr)
            plan = core.walker.plan(vaddr)
            if plan.faulted:
                raise SimulationError(
                    "walk still faults after demand mapping",
                    context={
                        "core": core.cpu,
                        "vaddr": vaddr,
                        "cycle": time,
                        "leaf_level": plan.leaf_level,
                    },
                )
        leaf_pt_request = None
        for step in plan.steps:
            if step.from_mmu_cache:
                if timeline is not None:
                    core.mmu_caches.occupy(time, time + self._mmu_latency)
                    attribution.add_translation(core.cpu, self._mmu_latency)
                if tracer is not None:
                    tracer.span(
                        "mmu_cache",
                        core.cpu,
                        time,
                        time + self._mmu_latency,
                        {"level": step.level},
                    )
                time += self._mmu_latency
                continue
            time, dram_request = yield from self._fetch_pt_entry(core, plan, step, time)
            if step.is_leaf and dram_request is not None:
                leaf_pt_request = dram_request
                core.dram_refs.walks_with_dram_leaf += 1
        core.walker.complete(plan)
        frame = plan.entry.frame_paddr
        page_size = plan.entry.page_size
        core.tlb.fill(vaddr, frame, page_size)
        time += self._tlb_fill_latency
        if timeline is not None:
            attribution.add_translation(core.cpu, self._tlb_fill_latency)
            core.walker.occupy(begin, time)
        self._walk_hist.record(time - begin)
        if self.recorder is not None:
            self.recorder.record(
                "walk",
                cpu=core.cpu,
                vaddr=vaddr,
                begin=begin,
                end=time,
                levels=len(plan.steps),
                leaf_dram=leaf_pt_request is not None,
                page_size=page_size,
            )
        if tracer is not None:
            tracer.span(
                "walk",
                core.cpu,
                begin,
                time,
                {
                    "levels": len(plan.steps),
                    "leaf_dram": leaf_pt_request is not None,
                    "page_size": page_size,
                },
            )
        return time, frame, page_size, leaf_pt_request

    def _fetch_pt_entry(self, core, plan, step, time):
        """One walk memory reference through caches (and maybe DRAM)."""
        tracer = self.tracer
        timeline = self.timeline
        begin = time
        result = self.hierarchy.access(core.cpu, step.entry_paddr)
        if timeline is not None:
            # Occupancy is always real; attribution only applies inside
            # a demand reference (IMP walks share this path).
            self.hierarchy.report_probe(core.cpu, result, time)
            if core.attributing:
                timeline.attribution.add_translation(core.cpu, result.latency)
        time += result.latency
        if not result.needs_dram:
            if tracer is not None:
                tracer.span(
                    "pt_access",
                    core.cpu,
                    begin,
                    time,
                    {"level": step.level, "hit": result.hit_level},
                )
            return time, None
        request = MemoryRequest(
            cache_line_base(step.entry_paddr),
            KIND_PT,
            cpu=core.cpu,
            enqueue_time=time,
            pt_leaf=step.is_leaf,
            tempo_tagged=step.is_leaf and core.walker.tempo_tagging,
            pte=plan.entry if step.is_leaf else None,
            replay_line_index=plan.replay_line_index,
        )
        finish = yield ("dram", request, time)
        dram_cycles = finish - time
        if timeline is not None and core.attributing:
            timeline.attribution.add_dram(core.cpu, dram_cycles)
        core.runtime.dram_ptw_cycles += dram_cycles
        if step.is_leaf:
            core.dram_refs.ptw_leaf += 1
        else:
            core.dram_refs.ptw_upper += 1
            self.stats.histogram("ptw_dram_upper_level").record(step.level)
        self.hierarchy.fill_from_memory(core.cpu, step.entry_paddr)
        self.energy.record_llc_fill()
        if self.recorder is not None:
            self.recorder.record(
                "dram",
                cpu=core.cpu,
                kind="pt",
                paddr=request.paddr,
                leaf=step.is_leaf,
                level=step.level,
                outcome=request.outcome,
                finish=finish,
            )
        if tracer is not None:
            tracer.span(
                "pt_access",
                core.cpu,
                begin,
                finish,
                {"level": step.level, "hit": "dram"},
            )
            tracer.span(
                "dram",
                core.cpu,
                time,
                finish,
                {"kind": "pt", "leaf": step.is_leaf, "outcome": request.outcome},
            )
        return finish, request

    # -- post-translation access -----------------------------------------

    def _post_translation(self, core, record, paddr, time, walked, leaf_pt_request):
        """The replay (after a walk) or regular (after a TLB hit) access."""
        tracer = self.tracer
        timeline = self.timeline
        begin = time
        span_name = "replay" if walked else "access"
        tempo_active = self.engine is not None and leaf_pt_request is not None
        outcome = None
        if tempo_active:
            # Let the queued prefetch land within the slack window, then
            # see what it achieved.
            llc_lookup_time = time + self._llc_latency
            yield ("advance", llc_lookup_time)
            outcome = self.controller.take_prefetch_outcome(leaf_pt_request.req_id)
            if (
                outcome is not None
                and not outcome.dropped
                and outcome.llc_ready_at is not None
                and outcome.llc_ready_at <= llc_lookup_time
            ):
                # Timely LLC prefetch: the replay hits in the LLC.
                self.hierarchy.prefetch_fill_llc(cache_line_base(paddr))
                self.energy.record_llc_fill()
                probe = self.hierarchy.access(core.cpu, paddr, record.is_write)
                core.replay_service.llc += 1
                if timeline is not None:
                    # The replay's DRAM time was hidden by the timely
                    # prefetch; what remains is pure overlap win.
                    self.hierarchy.report_probe(core.cpu, probe, time)
                    timeline.attribution.add_overlap(core.cpu, probe.latency)
                if tracer is not None:
                    tracer.span(
                        span_name,
                        core.cpu,
                        begin,
                        time + probe.latency,
                        {"service": "llc_prefetch"},
                    )
                return time + probe.latency

        # Wait out any in-flight IMP prefetch covering this line (MSHR merge).
        line = cache_line_base(paddr)
        pending_completion = core.pending_prefetch_lines.pop(line, None)
        if pending_completion is not None and pending_completion > time:
            if timeline is not None:
                timeline.attribution.add_dram(core.cpu, pending_completion - time)
            time = pending_completion

        result = self.hierarchy.access(core.cpu, paddr, record.is_write)
        if timeline is not None:
            self.hierarchy.report_probe(core.cpu, result, time)
            timeline.attribution.add_cache(core.cpu, result.latency)
        time += result.latency
        if not result.needs_dram:
            if tempo_active:
                # Served on-chip anyway; count with the LLC bucket.
                core.replay_service.llc += 1
            if tracer is not None:
                tracer.span(
                    span_name, core.cpu, begin, time, {"service": result.hit_level}
                )
            return time

        if tempo_active and outcome is None:
            # The prefetch never got serviced in time; it is useless now.
            self.controller.cancel_prefetch(leaf_pt_request.req_id)

        request = MemoryRequest(
            line, KIND_DEMAND, cpu=core.cpu, is_write=record.is_write, enqueue_time=time
        )
        finish = yield ("dram", request, time)
        dram_cycles = finish - time
        if timeline is not None:
            timeline.attribution.add_dram(core.cpu, dram_cycles)
        self.hierarchy.fill_from_memory(core.cpu, paddr, record.is_write)
        self.energy.record_llc_fill()

        service = "dram"
        if walked:
            core.runtime.dram_replay_cycles += dram_cycles
            core.dram_refs.replay += 1
            if leaf_pt_request is not None:
                core.dram_refs.replay_also_dram += 1
            if tempo_active:
                row_prefetched = (
                    outcome is not None
                    and not outcome.dropped
                    and outcome.row_ready_at is not None
                )
                if row_prefetched and request.outcome == "hit":
                    core.replay_service.row_buffer += 1
                    service = "row_buffer"
                else:
                    core.replay_service.unaided += 1
                    service = "unaided"
        else:
            core.runtime.dram_other_cycles += dram_cycles
            core.dram_refs.other += 1
        if self.recorder is not None:
            self.recorder.record(
                "dram",
                cpu=core.cpu,
                kind="demand",
                paddr=request.paddr,
                outcome=request.outcome,
                service=service,
                finish=finish,
            )
        if tracer is not None:
            tracer.span(
                "dram",
                core.cpu,
                finish - dram_cycles,
                finish,
                {"kind": "demand", "outcome": request.outcome},
            )
            tracer.span(span_name, core.cpu, begin, finish, {"service": service})
        return finish

    # -- IMP prefetching ---------------------------------------------------

    def _expire_pending_prefetches(self, core, time):
        if not core.pending_prefetch_lines:
            return
        expired = [
            line
            for line, completion in core.pending_prefetch_lines.items()
            if completion <= time
        ]
        for line in expired:
            del core.pending_prefetch_lines[line]

    def _imp_trigger(self, core, record, time):
        position = core.position
        next_same = core.next_same_pattern
        upcoming = []
        index = next_same[position]
        while index != -1 and index - position <= self._imp_distance:
            upcoming.append((index, core.trace.records[index].vaddr))
            if len(upcoming) >= 4:
                break
            index = next_same[index]
        targets = core.imp.observe(record.pattern, position, upcoming)
        for target_vaddr in targets:
            yield from self._issue_imp_prefetch(core, target_vaddr, time)

    def _issue_imp_prefetch(self, core, vaddr, time):
        """Run one IMP prefetch down its own (non-blocking) path.

        The prefetch performs a real translation -- including, on a TLB
        miss, a full walk whose leaf-PT DRAM access triggers TEMPO --
        then fetches the data line.  The core does not stall; instead
        the completion time gates when the prefetched line becomes
        usable (MSHR-style merge in :meth:`_post_translation`).
        """
        timeline = self.timeline
        path_time = time
        hit = core.tlb.lookup(vaddr)
        leaf_pt_request = None
        if hit is not None:
            frame, page_size, extra_latency = hit
            path_time += 1 + extra_latency
        else:
            plan = core.walker.plan(vaddr)
            if plan.faulted:
                # Prefetching must not fault pages in; drop it.
                core.imp.stats.counter("dropped_unmapped").add()
                return
            for step in plan.steps:
                if step.from_mmu_cache:
                    path_time += self._mmu_latency
                    continue
                path_time, dram_request = yield from self._fetch_pt_entry(
                    core, plan, step, path_time
                )
                if step.is_leaf and dram_request is not None:
                    leaf_pt_request = dram_request
                    core.dram_refs.walks_with_dram_leaf += 1
            core.walker.complete(plan)
            frame = plan.entry.frame_paddr
            page_size = plan.entry.page_size
            core.tlb.fill(vaddr, frame, page_size)
            path_time += self._tlb_fill_latency
        paddr = translate(vaddr, frame, page_size)
        line = cache_line_base(paddr)
        if line in core.pending_prefetch_lines:
            return

        tempo_active = self.engine is not None and leaf_pt_request is not None
        if tempo_active:
            llc_lookup_time = path_time + self._llc_latency
            yield ("advance", llc_lookup_time)
            outcome = self.controller.take_prefetch_outcome(leaf_pt_request.req_id)
            if (
                outcome is not None
                and not outcome.dropped
                and outcome.llc_ready_at is not None
                and outcome.llc_ready_at <= llc_lookup_time
            ):
                self.hierarchy.prefetch_fill_llc(line)
                self.energy.record_llc_fill()
                core.replay_service.llc += 1
                core.pending_prefetch_lines[line] = llc_lookup_time
                if timeline is not None:
                    core.imp.occupy(time, llc_lookup_time)
                return

        result = self.hierarchy.access(core.cpu, paddr)
        if timeline is not None:
            self.hierarchy.report_probe(core.cpu, result, path_time)
        path_time += result.latency
        if result.needs_dram:
            request = MemoryRequest(
                line, KIND_IMP_PREFETCH, cpu=core.cpu, enqueue_time=path_time
            )
            # Serviced on the prefetch path's own clock so bank state and
            # the completion time are real.
            finish = yield ("dram", request, path_time)
            if finish is None:  # dropped: TxQ full
                return
            path_time = finish
            self.hierarchy.fill_from_memory(core.cpu, paddr)
            self.energy.record_llc_fill()
            core.dram_refs.prefetch += 1
        core.pending_prefetch_lines[line] = path_time
        if timeline is not None:
            core.imp.occupy(time, path_time)
