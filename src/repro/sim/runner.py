"""One-call experiment helpers: the public entry points most users and
all the benchmark drivers go through."""

from repro.common.config import default_system_config
from repro.sim.metrics import energy_improvement, performance_improvement
from repro.sim.system import SystemSimulator
from repro.sim.trace import Trace


def _resolve_trace(workload, length, seed):
    if isinstance(workload, Trace):
        return workload
    # Imported here: repro.workloads builds on repro.sim.trace, so a
    # module-level import would be circular.
    from repro.workloads.registry import make_trace

    return make_trace(workload, length=length, seed=seed)


def _can_use_executor(
    executor, workload, max_records, tracer, progress, timeline=None, kernel=None
):
    """Executor cells are whole named-workload runs with no live hooks;
    anything else falls back to the direct path.  A kernel request only
    routes through the executor when it matches the executor's own
    kernel (the cache is kernel-agnostic -- both kernels are
    bit-identical -- but the manifest must record the right producer)."""
    return (
        executor is not None
        and isinstance(workload, str)
        and max_records is None
        and tracer is None
        and progress is None
        and timeline is None
        and (kernel is None or kernel == getattr(executor, "kernel", "scalar"))
    )


def run_workload(
    workload,
    config=None,
    length=20000,
    seed=0,
    max_records=None,
    tracer=None,
    progress=None,
    executor=None,
    check_invariants=None,
    timeline=None,
    kernel=None,
):
    """Simulate one workload (a name or a prebuilt Trace) on *config*.

    *tracer* (a :class:`~repro.obs.EventTracer`) records lifecycle spans,
    *progress* is called periodically with ``(records_done, total)``, and
    *timeline* (a :class:`~repro.obs.timeline.TimelineRecorder`) records
    per-unit utilization and bottleneck attribution; all default to off
    and cost nothing when off.

    *executor* (an :class:`~repro.exec.ExperimentExecutor`) routes the
    run through the result cache when the workload is a name and no
    live hooks are requested -- bit-identical, but reusable.

    Returns a :class:`~repro.sim.metrics.SimulationResult`.
    """
    if config is None:
        config = default_system_config()
    if _can_use_executor(
        executor, workload, max_records, tracer, progress, timeline, kernel
    ):
        from repro.exec import SimCell

        return executor.run_cell(SimCell(workload, config, length, seed))
    trace = _resolve_trace(workload, length, seed)
    simulator = SystemSimulator(
        config,
        [trace],
        seed=seed,
        tracer=tracer,
        progress=progress,
        check_invariants=check_invariants,
        timeline=timeline,
        kernel=kernel,
    )
    return simulator.run(max_records)


def run_baseline_and_tempo(
    workload, config=None, length=20000, seed=0, max_records=None, progress=None,
    executor=None, check_invariants=None, kernel=None,
):
    """Run the same trace with TEMPO off and on.

    Returns ``(baseline_result, tempo_result)`` -- the comparison behind
    every performance figure in the paper.  With *executor*, the two
    runs are submitted as one batch (so ``jobs=2`` overlaps them).
    """
    if config is None:
        config = default_system_config()
    if _can_use_executor(executor, workload, max_records, None, progress, None, kernel):
        from repro.exec import SimCell

        baseline, tempo = executor.run_cells(
            [
                SimCell(workload, config.with_tempo(False), length, seed),
                SimCell(workload, config.with_tempo(True), length, seed),
            ]
        )
        return baseline, tempo
    trace = _resolve_trace(workload, length, seed)
    baseline = SystemSimulator(
        config.with_tempo(False), [trace], seed=seed, progress=progress,
        check_invariants=check_invariants, kernel=kernel,
    ).run(max_records)
    tempo = SystemSimulator(
        config.with_tempo(True), [trace], seed=seed, progress=progress,
        check_invariants=check_invariants, kernel=kernel,
    ).run(max_records)
    return baseline, tempo


def speedup_fraction(baseline_result, tempo_result):
    """The paper's y-axis: fraction of baseline runtime eliminated."""
    return performance_improvement(
        baseline_result.total_cycles, tempo_result.total_cycles
    )


def energy_fraction(baseline_result, tempo_result):
    """Fraction of baseline energy eliminated."""
    return energy_improvement(baseline_result.energy_total, tempo_result.energy_total)
