"""Result structures for every experiment.

The three breakdowns mirror the paper's figures directly:

* :class:`RuntimeBreakdown` -- Figure 1's split of total runtime into
  DRAM-PTW-Access / DRAM-Replay-Access / DRAM-Other / everything else.
* :class:`DramReferenceBreakdown` -- Figure 4's split of DRAM
  *references* (plus the leaf-PT share and the replay-follows-PTW rate).
* :class:`ReplayServiceBreakdown` -- Figure 11 left: how TEMPO serviced
  the replays whose walks hit DRAM (LLC hit / row-buffer hit / unaided).

Multiprogrammed metrics (Figures 16/17) follow prior work: *weighted
speedup* = sum of per-application IPC_shared / IPC_alone, and *maximum
slowdown* = max of per-application T_shared / T_alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.common.errors import SimulationError

if TYPE_CHECKING:
    from repro.obs.manifest import RunManifest


class RuntimeBreakdown:
    """Cycle accounting for one core's run."""

    __slots__ = ("total_cycles", "dram_ptw_cycles", "dram_replay_cycles", "dram_other_cycles")

    def __init__(self, total_cycles: int = 0, dram_ptw_cycles: int = 0, dram_replay_cycles: int = 0, dram_other_cycles: int = 0) -> None:
        self.total_cycles = total_cycles
        self.dram_ptw_cycles = dram_ptw_cycles
        self.dram_replay_cycles = dram_replay_cycles
        self.dram_other_cycles = dram_other_cycles

    @property
    def non_dram_cycles(self) -> int:
        return self.total_cycles - (
            self.dram_ptw_cycles + self.dram_replay_cycles + self.dram_other_cycles
        )

    def fraction(self, bucket: str) -> float:
        """Fraction of total runtime for *bucket* (``ptw`` / ``replay``
        / ``other`` / ``rest``)."""
        if self.total_cycles == 0:
            return 0.0
        value = {
            "ptw": self.dram_ptw_cycles,
            "replay": self.dram_replay_cycles,
            "other": self.dram_other_cycles,
            "rest": self.non_dram_cycles,
        }[bucket]
        return value / self.total_cycles

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_cycles": self.total_cycles,
            "dram_ptw_fraction": self.fraction("ptw"),
            "dram_replay_fraction": self.fraction("replay"),
            "dram_other_fraction": self.fraction("other"),
        }

    def __repr__(self) -> str:
        return "RuntimeBreakdown(total=%d, ptw=%.1f%%, replay=%.1f%%, other=%.1f%%)" % (
            self.total_cycles,
            100 * self.fraction("ptw"),
            100 * self.fraction("replay"),
            100 * self.fraction("other"),
        )


class DramReferenceBreakdown:
    """Counts of demand-side DRAM references by category.

    Prefetches and writebacks are tracked separately and excluded from
    the Figure-4 fractions (the paper counts program-initiated
    references).
    """

    __slots__ = (
        "ptw_leaf",
        "ptw_upper",
        "replay",
        "other",
        "prefetch",
        "writeback",
        "walks_with_dram_leaf",
        "replay_also_dram",
    )

    def __init__(self) -> None:
        self.ptw_leaf = 0
        self.ptw_upper = 0
        self.replay = 0
        self.other = 0
        self.prefetch = 0
        self.writeback = 0
        #: Walks whose leaf-PT access reached DRAM ...
        self.walks_with_dram_leaf = 0
        #: ... and whose replay also reached DRAM (the paper's 98% stat;
        #: meaningful on baseline runs where TEMPO is off).
        self.replay_also_dram = 0

    @property
    def ptw(self) -> int:
        return self.ptw_leaf + self.ptw_upper

    @property
    def demand_total(self) -> int:
        return self.ptw + self.replay + self.other

    def fraction(self, bucket: str) -> float:
        if self.demand_total == 0:
            return 0.0
        value = {"ptw": self.ptw, "replay": self.replay, "other": self.other}[bucket]
        return value / self.demand_total

    def leaf_fraction_of_ptw(self) -> float:
        """The paper's 96%+: leaf-PT share of DRAM page-table accesses."""
        if self.ptw == 0:
            return 0.0
        return self.ptw_leaf / self.ptw

    def replay_follows_ptw_rate(self) -> float:
        """The paper's 98%+: DRAM-PTW lookups followed by DRAM replays."""
        if self.walks_with_dram_leaf == 0:
            return 0.0
        return self.replay_also_dram / self.walks_with_dram_leaf

    def as_dict(self) -> Dict[str, float]:
        return {
            "ptw_fraction": self.fraction("ptw"),
            "replay_fraction": self.fraction("replay"),
            "other_fraction": self.fraction("other"),
            "leaf_fraction_of_ptw": self.leaf_fraction_of_ptw(),
            "replay_follows_ptw_rate": self.replay_follows_ptw_rate(),
        }


class ReplayServiceBreakdown:
    """Figure 11 left: where TEMPO-era replays were served from.

    Only replays whose walk's leaf-PT access reached DRAM are counted
    (those are the ones TEMPO targets).
    """

    __slots__ = ("llc", "row_buffer", "unaided")

    def __init__(self) -> None:
        self.llc = 0
        self.row_buffer = 0
        self.unaided = 0

    @property
    def total(self) -> int:
        return self.llc + self.row_buffer + self.unaided

    def fraction(self, bucket: str) -> float:
        if self.total == 0:
            return 0.0
        return {"llc": self.llc, "row_buffer": self.row_buffer, "unaided": self.unaided}[
            bucket
        ] / self.total

    def as_dict(self) -> Dict[str, float]:
        return {
            "llc_fraction": self.fraction("llc"),
            "row_buffer_fraction": self.fraction("row_buffer"),
            "unaided_fraction": self.fraction("unaided"),
        }


class CoreResult:
    """Per-core outcome of a run."""

    __slots__ = ("workload_name", "references", "runtime", "dram_refs", "replay_service")

    def __init__(self, workload_name: str, references: int, runtime: RuntimeBreakdown, dram_refs: DramReferenceBreakdown, replay_service: ReplayServiceBreakdown) -> None:
        self.workload_name = workload_name
        self.references = references
        self.runtime = runtime
        self.dram_refs = dram_refs
        self.replay_service = replay_service

    @property
    def cycles(self) -> int:
        return self.runtime.total_cycles

    @property
    def ipc_proxy(self) -> float:
        """References retired per cycle -- the IPC stand-in used for
        weighted speedup (every trace record is one 'instruction')."""
        if self.cycles == 0:
            return 0.0
        return self.references / self.cycles


class SimulationResult:
    """Whole-system outcome: per-core results + shared-resource totals.

    *stats* is the unified flat metrics namespace (every StatGroup in
    the machine plus the manifest's scalar fields); *manifest* is the
    :class:`~repro.obs.manifest.RunManifest` provenance record.
    """

    def __init__(self, cores: List[CoreResult], energy_total: float, superpage_fraction: float, stats: Optional[Dict[str, Any]] = None, manifest: Optional[RunManifest] = None) -> None:
        self.cores = cores
        self.energy_total = energy_total
        self.superpage_fraction = superpage_fraction
        self.stats = stats if stats is not None else {}
        self.manifest = manifest

    @property
    def total_cycles(self) -> int:
        return max(core.cycles for core in self.cores)

    @property
    def core(self) -> CoreResult:
        """Convenience accessor for single-core runs."""
        if len(self.cores) != 1:
            raise SimulationError(
                "result has %d cores; use .cores" % len(self.cores),
                context={"num_cores": len(self.cores)},
            )
        return self.cores[0]

    def __repr__(self) -> str:
        return "SimulationResult(%d cores, %d cycles, %.1f energy)" % (
            len(self.cores),
            self.total_cycles,
            self.energy_total,
        )


def performance_improvement(baseline_cycles: int, improved_cycles: int) -> float:
    """The paper's headline metric: fraction of baseline runtime saved
    (0 = no change; 0.3 = 30% faster)."""
    if baseline_cycles == 0:
        return 0.0
    return (baseline_cycles - improved_cycles) / baseline_cycles


def energy_improvement(baseline_energy: float, improved_energy: float) -> float:
    if baseline_energy == 0:
        return 0.0
    return (baseline_energy - improved_energy) / baseline_energy


def weighted_speedup(shared_results: Sequence[CoreResult], alone_results: Sequence[CoreResult]) -> float:
    """Sum over applications of IPC_shared / IPC_alone."""
    if len(shared_results) != len(alone_results):
        raise SimulationError(
            "shared/alone core counts differ",
            context={"shared": len(shared_results), "alone": len(alone_results)},
        )
    total = 0.0
    for shared, alone in zip(shared_results, alone_results):
        if alone.ipc_proxy > 0:
            total += shared.ipc_proxy / alone.ipc_proxy
    return total


def max_slowdown(shared_results: Sequence[CoreResult], alone_results: Sequence[CoreResult]) -> float:
    """Max over applications of T_shared / T_alone (lower is fairer)."""
    if len(shared_results) != len(alone_results):
        raise SimulationError(
            "shared/alone core counts differ",
            context={"shared": len(shared_results), "alone": len(alone_results)},
        )
    worst = 0.0
    for shared, alone in zip(shared_results, alone_results):
        if alone.cycles > 0:
            worst = max(worst, shared.cycles / alone.cycles)
    return worst
