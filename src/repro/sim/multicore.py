"""Multiprogrammed simulation: shared run + per-application alone runs.

Follows the paper's Sec. 6.3 methodology: each application in a mix is
also run alone on the same configuration; *weighted speedup* and
*maximum slowdown* compare the shared execution against those alone
baselines.

The driver carries the observability hooks for its long multi-phase
runs: a :class:`~repro.obs.profiler.PhaseProfiler` times the shared run
and every alone run (the summary lands on
:attr:`MultiprogramResult.timings`), and an optional *progress* callback
receives one status line per phase.
"""

from repro.obs.profiler import PhaseProfiler
from repro.sim.metrics import max_slowdown, weighted_speedup
from repro.sim.system import SystemSimulator


class MultiprogramResult:
    """Outcome of one multiprogrammed mix."""

    __slots__ = ("shared", "alone", "weighted_speedup", "max_slowdown", "timings")

    def __init__(self, shared, alone, timings=None):
        self.shared = shared
        self.alone = alone
        self.weighted_speedup = weighted_speedup(shared.cores, [r.core for r in alone])
        self.max_slowdown = max_slowdown(shared.cores, [r.core for r in alone])
        #: Wall-clock seconds per phase ("shared", "alone.<name>", ...).
        self.timings = dict(timings) if timings else {}

    def __repr__(self):
        return "MultiprogramResult(ws=%.2f, ms=%.2f)" % (
            self.weighted_speedup,
            self.max_slowdown,
        )


class MulticoreSimulator:
    """Runs a mix shared, then each application alone."""

    def __init__(
        self, config, traces, seed=None, progress=None, check_invariants=None,
        timeline=None,
    ):
        self.config = config
        self.traces = list(traces)
        self.seed = seed if seed is not None else config.seed
        #: Optional callback receiving one status string per phase.
        self.progress = progress
        #: ``off``/``sample``/``full`` -- forwarded to every underlying
        #: :class:`SystemSimulator` (shared and alone runs alike).
        self.check_invariants = check_invariants
        #: Optional :class:`~repro.obs.timeline.TimelineRecorder` for
        #: the *shared* run only (alone runs would overwrite the shared
        #: timeline's unit tracks with unrelated clocks).
        self.timeline = timeline
        self.profiler = PhaseProfiler()

    def _announce(self, message):
        if self.progress is not None:
            self.progress(message)

    def run(self, max_records=None, alone_results=None):
        """Simulate the mix.

        *alone_results* lets callers reuse alone runs across scheduler
        sweeps (the alone baseline does not depend on swept parameters
        that only matter under sharing).
        """
        names = "+".join(trace.name for trace in self.traces)
        self._announce("running shared mix %s ..." % names)
        with self.profiler.phase("shared"):
            shared = SystemSimulator(
                self.config,
                self.traces,
                self.seed,
                check_invariants=self.check_invariants,
                timeline=self.timeline,
            ).run(max_records)
        if alone_results is None:
            alone_results = self.run_alone(max_records)
        records = sum(len(trace.records) for trace in self.traces)
        return MultiprogramResult(
            shared, alone_results, timings=self.profiler.summary(records=records)
        )

    def run_alone(self, max_records=None):
        """Run each application by itself on the same configuration."""
        results = []
        for trace in self.traces:
            self._announce("running %s alone ..." % trace.name)
            with self.profiler.phase("alone.%s" % trace.name):
                simulator = SystemSimulator(
                    self.config,
                    [trace],
                    self.seed,
                    check_invariants=self.check_invariants,
                )
                results.append(simulator.run(max_records))
        return results
