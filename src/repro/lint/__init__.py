"""simlint: AST-based invariant linting for the simulator.

The executor stack (PR 2) made correctness depend on properties no
runtime test can economically enforce -- determinism of timing-critical
code, completeness of the content-addressed cache key, coverage of the
serialized payload schema.  This package checks them statically:
``repro lint src/repro`` (or :func:`lint_paths` programmatically) runs
~8 simulator-specific rules, each with a stable ID, a severity, and a
fix-it message.  ``docs/static_analysis.md`` documents every rule.
"""

from __future__ import annotations

from repro.lint.base import Finding, Module, Rule
from repro.lint.engine import (
    LintConfig,
    lint_modules,
    lint_paths,
    load_pyproject_config,
    render_json,
    render_rules,
    render_text,
)
from repro.lint.rules import ALL_RULES, RULES_BY_ID, TIMING_CRITICAL_PACKAGES

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "TIMING_CRITICAL_PACKAGES",
    "Finding",
    "LintConfig",
    "Module",
    "Rule",
    "lint_modules",
    "lint_paths",
    "load_pyproject_config",
    "render_json",
    "render_rules",
    "render_text",
]
