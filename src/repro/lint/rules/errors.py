"""SL009: no bare builtin exceptions in timing-critical packages.

The resilience layer classifies failures by exception type: a
:class:`~repro.common.errors.ReproError` subclass carries structured
``context`` for the crash report, an :class:`~repro.common.errors.
InvariantViolation` is terminal (quarantine, no retries), everything
else is treated as a transient host fault and retried.  A ``raise
ValueError(...)`` inside the simulated machine therefore does two bad
things at once: it loses the machine-state context the flight recorder
exists to surface, and it gets *retried* even though simulation is
deterministic -- the retry burns attempts reproducing the same bug.
Timing-critical code must raise from the :mod:`repro.common.errors`
hierarchy (``ConfigError`` for bad inputs, ``SimulationError`` for
internal inconsistency).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.base import Finding, Module, Rule, dotted_name
from repro.lint.rules.determinism import TIMING_CRITICAL_PACKAGES

#: Builtin exception types whose raise is banned in simulation code.
#: ``NotImplementedError`` stays legal (abstract-method stubs), and
#: re-raises (``raise`` with no exception) are untouched.
_BANNED_EXCEPTIONS = (
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "AssertionError",
    "KeyError",
    "IndexError",
)


def _raised_type(node: ast.Raise) -> Optional[str]:
    """The name of the exception type a ``raise`` creates, if static."""
    exc = node.exc
    if exc is None:  # bare re-raise inside an except block
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = dotted_name(exc)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


class NoBareExceptionsRule(Rule):
    rule_id = "SL009"
    name = "no-bare-exceptions"
    severity = "error"
    rationale = (
        "the resilience layer keys retry/quarantine/crash-report "
        "behaviour off the ReproError hierarchy; a builtin exception "
        "from simulation code is retried as if transient and carries no "
        "machine-state context"
    )
    fixit = (
        "raise ConfigError (bad input) or SimulationError (internal "
        "inconsistency) from repro.common.errors, with a context dict"
    )

    def check_module(self, module: Module) -> Iterator[Finding]:
        if not module.is_in_package(TIMING_CRITICAL_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_type(node)
            if name in _BANNED_EXCEPTIONS:
                yield self.finding(
                    module,
                    node,
                    "raise of builtin %s in timing-critical code: the "
                    "executor would retry this deterministic failure and "
                    "the crash report gets no machine context" % name,
                )
