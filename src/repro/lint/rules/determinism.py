"""SL001: no nondeterminism in timing-critical packages.

The executor's content-addressed cache (PR 2) assumes a cell's result is
a pure function of ``(config, trace identity, seed, version)``.  Any
wall-clock read, unseeded randomness, or unordered iteration inside the
simulated machine silently breaks that contract: the cache then serves
results that a fresh run would not reproduce.  All randomness must flow
through :class:`repro.common.rng.DeterministicRng` and all iteration
over sets must impose an order (``sorted``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Finding, Module, Rule, dotted_name

#: Packages whose code contributes to simulated timing and therefore to
#: cached results.  ``common`` is excluded so DeterministicRng itself
#: can wrap :mod:`random`; ``obs``/``exec``/``analysis`` are host-side.
TIMING_CRITICAL_PACKAGES = (
    "sim",
    "mmu",
    "dram",
    "cache",
    "sched",
    "vm",
    "workloads",
    "core",
)

#: Modules whose import alone is a red flag in simulation code.
_BANNED_MODULES = {
    "time": "wall-clock reads make cached results irreproducible",
    "random": "module-level random bypasses the experiment seed",
    "uuid": "uuid generation is host-entropy nondeterminism",
    "secrets": "secrets draws host entropy",
    "datetime": "wall-clock reads make cached results irreproducible",
}

#: Banned attribute calls even when the module import is indirect.
_BANNED_CALLS = {
    "os.urandom": "os.urandom draws host entropy",
    "os.getrandom": "os.getrandom draws host entropy",
    "time.time": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.monotonic": "wall-clock read",
}


def _is_set_expression(node: ast.AST, set_locals: Set[str]) -> bool:
    """True when *node* statically looks set-valued: a set display or
    comprehension, a ``set(...)``/``frozenset(...)`` call, or a local
    name bound to one of those earlier in the same scope."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    return False


class NoNondeterminismRule(Rule):
    rule_id = "SL001"
    name = "no-nondeterminism"
    severity = "error"
    rationale = (
        "timing-critical code must be a pure function of (config, trace, "
        "seed): no wall clock, no unseeded randomness, no unordered-set "
        "iteration, or the result cache serves irreproducible results"
    )
    fixit = (
        "draw randomness from repro.common.rng.DeterministicRng, move "
        "wall-clock profiling to repro.obs, and iterate sets via sorted()"
    )

    def check_module(self, module: Module) -> Iterator[Finding]:
        if not module.is_in_package(TIMING_CRITICAL_PACKAGES):
            return
        set_scopes = _collect_set_locals(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.finding(
                            module,
                            node,
                            "import of %r in timing-critical package: %s"
                            % (alias.name, _BANNED_MODULES[root]),
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        module,
                        node,
                        "import from %r in timing-critical package: %s"
                        % (node.module, _BANNED_MODULES[root]),
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _BANNED_CALLS:
                    yield self.finding(
                        module,
                        node,
                        "call to %s() in timing-critical package: %s"
                        % (name, _BANNED_CALLS[name]),
                    )
            for iter_node in _iterations(node):
                if _is_set_expression(iter_node, set_scopes.get(id(node), set())):
                    yield self.finding(
                        module,
                        iter_node,
                        "iteration over an unordered set: element order is "
                        "hash-seed dependent and perturbs simulated timing",
                        "wrap the iterable in sorted(...) or use an ordered "
                        "container (dict keys keep insertion order)",
                    )


def _iterations(node: ast.AST) -> List[ast.AST]:
    """The iterable expressions consumed by *node*, if it iterates."""
    if isinstance(node, ast.For):
        return [node.iter]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return [generator.iter for generator in node.generators]
    return []


def _collect_set_locals(tree: ast.AST) -> Dict[int, Set[str]]:
    """Map ``id(iterating node)`` -> local names bound to set values in
    the enclosing function scope (single-assignment tracking only)."""
    scopes: Dict[int, Set[str]] = {}
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            continue
        bound: Set[str] = set()
        rebound_other: Set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expression(node.value, set()):
                        bound.add(target.id)
                    else:
                        rebound_other.add(target.id)
        names = bound - rebound_other
        if not names:
            continue
        for node in ast.walk(scope):
            if _iterations(node):
                scopes.setdefault(id(node), set()).update(names)
    return scopes
