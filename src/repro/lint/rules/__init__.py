"""The simlint rule registry.

Rule IDs are stable and documented in ``docs/static_analysis.md``; new
rules append the next SLnnn, existing IDs are never reused.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.base import Rule
from repro.lint.rules.cache_key import CacheKeyCompletenessRule
from repro.lint.rules.determinism import TIMING_CRITICAL_PACKAGES, NoNondeterminismRule
from repro.lint.rules.errors import NoBareExceptionsRule
from repro.lint.rules.hygiene import (
    NoConfigMutationRule,
    NoFloatCyclesRule,
    NoMutableDefaultsRule,
    NoPrintRule,
)
from repro.lint.rules.schema_drift import SchemaDriftRule
from repro.lint.rules.stat_registration import StatRegistrationRule

#: Every shipped rule, in ID order.
ALL_RULES: List[Rule] = [
    NoNondeterminismRule(),
    CacheKeyCompletenessRule(),
    SchemaDriftRule(),
    StatRegistrationRule(),
    NoConfigMutationRule(),
    NoFloatCyclesRule(),
    NoPrintRule(),
    NoMutableDefaultsRule(),
    NoBareExceptionsRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID", "TIMING_CRITICAL_PACKAGES"]
