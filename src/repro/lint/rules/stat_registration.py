"""SL004: stats must be born inside a StatGroup.

The MetricsRegistry (PR 1) flattens every :class:`StatGroup` in the
machine into ``SimulationResult.stats``.  That only works because
counters and histograms are *created through* their group
(``group.counter("hits")`` / ``group.histogram("latency")``): a
:class:`Counter` or :class:`Histogram` constructed directly is invisible
to the registry, so its numbers never reach exported results -- the
metric exists, increments, and silently exports nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import Finding, Module, Rule, dotted_name

#: The module that legitimately constructs the primitives (the
#: factory methods live there) -- plus lint's own fixtures in tests.
_ALLOWED_MODULES = ("repro.common.stats",)

_PRIMITIVES = ("Counter", "Histogram")


class StatRegistrationRule(Rule):
    rule_id = "SL004"
    name = "stat-registration"
    severity = "error"
    rationale = (
        "a Counter/Histogram constructed outside a StatGroup never "
        "reaches MetricsRegistry, so its measurements silently vanish "
        "from exported results"
    )
    fixit = (
        "create it through its owning group: group.counter(name) / "
        "group.histogram(name) (see repro.common.stats.StatGroup)"
    )

    def check_module(self, module: Module) -> Iterator[Finding]:
        if module.name in _ALLOWED_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            base = name.rsplit(".", 1)[-1]
            if base in _PRIMITIVES:
                yield self.finding(
                    module,
                    node,
                    "direct %s(...) construction bypasses StatGroup: the "
                    "metric will not appear in MetricsRegistry exports" % base,
                )
