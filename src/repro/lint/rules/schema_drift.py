"""SL003: the serialized payload schema must cover every result field.

:mod:`repro.exec.serialize` projects :class:`SimulationResult` onto the
JSON payload the disk cache stores, and rebuilds results from it.  A
field added to the result structures but not to the projection does not
crash anything -- it just silently comes back zeroed on every cache hit,
so warm-cache reports diverge from cold ones.  This rule pins the two
sides together: every slot of the result/breakdown classes and every
attribute ``SimulationResult.__init__`` sets must be named somewhere in
the serializer (as a string constant or attribute access).

``manifest`` is the one sanctioned exclusion: the
:class:`~repro.obs.manifest.RunManifest` object is not rebuilt because
its scalar projection already travels inside ``stats`` as ``manifest.*``
keys (see ``exec/serialize.py``'s module docstring).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.base import Finding, Module, Rule

#: Result attributes intentionally absent from the payload.
ALLOWED_MISSING = frozenset({"manifest"})


class SchemaDriftRule(Rule):
    rule_id = "SL003"
    name = "schema-drift"
    severity = "error"
    rationale = (
        "a SimulationResult field missing from the exec/serialize payload "
        "comes back zeroed on every cache hit, so warm-cache reports "
        "silently diverge from cold runs"
    )
    fixit = (
        "add the field to result_to_payload/payload_to_result (and bump "
        "PAYLOAD_SCHEMA so stale cache entries become unreachable)"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        metrics = _find_defining(modules, class_name="SimulationResult")
        serializer = _find_serializer(modules)
        if metrics is None or serializer is None:
            return
        covered = _serializer_vocabulary(serializer.tree)
        for class_name, attr_node, attr in _result_surface(metrics.tree):
            if attr in ALLOWED_MISSING or attr.startswith("_"):
                continue
            if attr not in covered:
                yield self.finding(
                    metrics,
                    attr_node,
                    "%s.%s is not covered by the serialized payload in %s: "
                    "cache hits would rebuild it zeroed" % (class_name, attr, serializer.path),
                )


def _find_defining(modules: Sequence[Module], class_name: str) -> Optional[Module]:
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return module
    return None


def _find_serializer(modules: Sequence[Module]) -> Optional[Module]:
    for module in modules:
        names = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.FunctionDef)
        }
        if "result_to_payload" in names and "payload_to_result" in names:
            return module
    return None


def _result_surface(tree: ast.AST) -> List[Tuple[str, ast.AST, str]]:
    """``(class, node, attribute)`` for every serialisable result field:
    ``__slots__`` entries of every slotted class in the metrics module,
    plus the ``self.x = ...`` attributes of ``SimulationResult``."""
    surface: List[Tuple[str, ast.AST, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for statement in node.body:
            if (
                isinstance(statement, ast.Assign)
                and any(
                    isinstance(target, ast.Name) and target.id == "__slots__"
                    for target in statement.targets
                )
                and isinstance(statement.value, (ast.Tuple, ast.List))
            ):
                for element in statement.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        surface.append((node.name, statement, element.value))
        if node.name == "SimulationResult":
            for statement in ast.walk(node):
                if (
                    isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Attribute)
                    and isinstance(statement.targets[0].value, ast.Name)
                    and statement.targets[0].value.id == "self"
                ):
                    surface.append((node.name, statement, statement.targets[0].attr))
    return surface


def _serializer_vocabulary(tree: ast.AST) -> Set[str]:
    """Every name the serializer mentions: string constants (tuple field
    lists, dict keys) and attribute accesses."""
    vocabulary: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            vocabulary.add(node.value)
        elif isinstance(node, ast.Attribute):
            vocabulary.add(node.attr)
    return vocabulary
