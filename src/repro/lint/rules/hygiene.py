"""Hygiene rules: SL005 no-config-mutation, SL006 no-float-cycles,
SL007 no-print, SL008 no-mutable-defaults.

These are the "makes the invariant rules moot" class of problems:

* mutating a config after construction desynchronises behaviour from
  the already-computed ``config_hash`` (SL005);
* floats leaking into cycle accumulators turn exact integer timing into
  platform-dependent rounding (SL006);
* ``print`` (or ``sys.stdout.write``) in library code corrupts
  machine-readable CLI output and bypasses the observability layer
  (SL007) -- interactive output belongs on stderr;
* mutable default arguments alias state across calls -- across *cells*,
  in executor code (SL008).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional

from repro.lint.base import Finding, Module, Rule, attribute_chain, dotted_name
from repro.lint.rules.determinism import TIMING_CRITICAL_PACKAGES

#: Modules where config construction/normalisation legitimately assigns
#: through config attribute chains.
_CONFIG_MUTATION_ALLOWED = ("repro.common.config",)

#: Attribute/variable names treated as exact-integer time accumulators.
_CYCLE_NAME = re.compile(r"(^|_)(cycles?|ticks?|time)$")

#: Modules allowed to print: the user-facing surfaces.
_PRINT_ALLOWED = ("repro.cli", "repro.__main__")


def _is_config_name(part: str) -> bool:
    return part == "config" or part == "cfg" or part.endswith("_config")


class NoConfigMutationRule(Rule):
    rule_id = "SL005"
    name = "no-config-mutation"
    severity = "error"
    rationale = (
        "config objects are hashed into the result-cache key at cell "
        "creation; mutating one afterwards runs a different machine than "
        "the key claims"
    )
    fixit = (
        "build a modified copy instead: dataclasses.replace / "
        "SystemConfig.copy_with / with_tempo"
    )

    def check_module(self, module: Module) -> Iterator[Finding]:
        if module.name in _CONFIG_MUTATION_ALLOWED:
            return
        for node in ast.walk(module.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                chain = attribute_chain(target)
                # Mutation = writing *through* a config object: some
                # prefix element (not the final attribute) is a config.
                # ``self.config = cfg`` stores a config and is fine;
                # ``self.config.num_cores = 4`` rewrites a hashed one.
                if chain is not None and any(
                    _is_config_name(part) for part in chain[:-1]
                ):
                    yield self.finding(
                        module,
                        target,
                        "assignment through a config object (%s): the config "
                        "was hashed at construction, so this mutation "
                        "invalidates every cache key derived from it"
                        % ".".join(chain),
                    )


class NoFloatCyclesRule(Rule):
    rule_id = "SL006"
    name = "no-float-cycles"
    severity = "error"
    rationale = (
        "cycle counts are exact integers; a float leaking in makes "
        "timing platform/rounding dependent and breaks bit-reproducible "
        "latency composition"
    )
    fixit = "use integer arithmetic (// not /, int literals not floats)"

    def check_module(self, module: Module) -> Iterator[Finding]:
        # Wall-clock floats in host-side code (obs profilers, bench) are
        # legitimate; only *simulated* time must stay integral.
        if not module.is_in_package(TIMING_CRITICAL_PACKAGES):
            return
        for node in ast.walk(module.tree):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AugAssign):
                target, value = node.target, node.value
                if isinstance(node.op, ast.Div):
                    value = node  # ``x /= y`` taints regardless of RHS
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if target is None or value is None:
                continue
            name = _target_name(target)
            if name is None or not _CYCLE_NAME.search(name):
                continue
            taint = _float_taint(value)
            if taint is not None:
                yield self.finding(
                    module,
                    node,
                    "%s accumulates cycles but is assigned a float-tainted "
                    "expression (%s)" % (name, taint),
                )


def _target_name(target: ast.AST) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _float_taint(value: ast.AST) -> Optional[str]:
    """A human-readable reason the expression produces floats, or None."""
    for node in ast.walk(value):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return "float literal %r" % node.value
        if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
            node.op, ast.Div
        ):
            return "true division / (use //)"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.rsplit(".", 1)[-1] == "float":
                return "float() conversion"
    return None


class NoPrintRule(Rule):
    rule_id = "SL007"
    name = "no-print"
    severity = "error"
    rationale = (
        "print / sys.stdout.write in library code interleaves with "
        "machine-readable CLI output and bypasses the obs layer's "
        "structured exporters"
    )
    fixit = (
        "write to the caller-supplied stream (CLI), use stderr for "
        "interactive progress, or route through repro.obs "
        "(tracer/metrics/progress hooks)"
    )

    def check_module(self, module: Module) -> Iterator[Finding]:
        if module.name in _PRINT_ALLOWED:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield self.finding(module, node, "print() call in library code")
            elif dotted_name(node.func) == "sys.stdout.write":
                yield self.finding(
                    module,
                    node,
                    "sys.stdout.write() in library code (use the "
                    "caller-supplied stream, or stderr for progress)",
                )


class NoMutableDefaultsRule(Rule):
    rule_id = "SL008"
    name = "no-mutable-defaults"
    severity = "error"
    rationale = (
        "a mutable default argument is shared across every call -- and "
        "across cells in executor code, where it aliases state between "
        "supposedly pure runs"
    )
    fixit = "default to None and create the container inside the function"

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                reason = _mutable_default(default)
                if reason is not None:
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        "%s() has a mutable default argument (%s)" % (name, reason),
                    )


def _mutable_default(default: ast.AST) -> Optional[str]:
    if isinstance(default, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(default, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(default, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(default, ast.Call):
        name = dotted_name(default.func)
        if name is not None and name.rsplit(".", 1)[-1] in (
            "list",
            "dict",
            "set",
            "bytearray",
            "defaultdict",
            "OrderedDict",
        ):
            return "%s()" % name
    return None
