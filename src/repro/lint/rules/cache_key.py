"""SL002: every config field must feed the content-addressed cache key.

``config_hash`` canonicalises ``dataclasses.asdict(SystemConfig)``; the
executor's disk cache (PR 2) addresses results by that hash.  A config
attribute that is *not* a dataclass field -- a bare class-level
assignment, a ``ClassVar`` used as a tunable, or a field whose type
``asdict``/JSON cannot canonicalise -- changes simulated behaviour
without changing the key, so the cache silently serves stale results.

The rule triggers on any module that defines a ``@dataclass`` named
``SystemConfig`` (the real one lives in :mod:`repro.common.config`) and
walks the dataclass graph reachable from it:

* bare (unannotated) class-level assignments are errors: they never
  become dataclass fields, so they are invisible to ``config_hash``;
* every reachable field annotation must be a JSON-stable scalar
  (``int``/``float``/``bool``/``str``) or another config dataclass;
* a ``@dataclass`` defined in the module but unreachable from
  ``SystemConfig`` is dead config -- it looks tunable but never feeds
  the key.

It also checks the executor side on any module defining ``SimCell``:
``identity()`` must hash the config (a ``config_hash`` call) and carry
the schema/package-version/trace/seed components PR 2's key derives
from.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import Finding, Module, Rule, decorator_names, dotted_name

_SCALAR_TYPES = {"int", "float", "bool", "str"}

#: Keys SimCell.identity() must emit for the cache key to cover what the
#: result actually depends on.
_REQUIRED_IDENTITY_KEYS = ("schema", "package_version", "config_sha256", "traces", "seed")


def _annotation_name(annotation: ast.AST) -> Optional[str]:
    """The plain type name of a field annotation (``int``,
    ``SubRowConfig``); ``None`` for subscripted/complex annotations."""
    name = dotted_name(annotation)
    if name is not None:
        return name.rsplit(".", 1)[-1]
    return None


def _is_classvar(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        return base is not None and base.rsplit(".", 1)[-1] == "ClassVar"
    name = dotted_name(annotation)
    return name is not None and name.rsplit(".", 1)[-1] == "ClassVar"


class CacheKeyCompletenessRule(Rule):
    rule_id = "SL002"
    name = "cache-key-completeness"
    severity = "error"
    rationale = (
        "behaviour-affecting config state that is invisible to "
        "config_hash makes the content-addressed result cache serve "
        "stale results"
    )
    fixit = (
        "make the attribute an annotated dataclass field of a scalar or "
        "config-dataclass type so dataclasses.asdict (and therefore "
        "config_hash and the cell key) captures it"
    )

    def check_module(self, module: Module) -> Iterator[Finding]:
        dataclasses_in_module = _collect_dataclasses(module.tree)
        if "SystemConfig" in dataclasses_in_module:
            for finding in self._check_config_module(module, dataclasses_in_module):
                yield finding
        cell = _find_class(module.tree, "SimCell")
        if cell is not None:
            for finding in self._check_cell_module(module, cell):
                yield finding

    # -- config side ---------------------------------------------------

    def _check_config_module(
        self, module: Module, classes: Dict[str, ast.ClassDef]
    ) -> Iterator[Finding]:
        reachable = _reachable_from(classes, "SystemConfig")
        for class_name in sorted(reachable):
            node = classes[class_name]
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    targets = ", ".join(
                        target.id
                        for target in statement.targets
                        if isinstance(target, ast.Name)
                    )
                    yield self.finding(
                        module,
                        statement,
                        "%s.%s is a bare class attribute, not a dataclass "
                        "field: dataclasses.asdict skips it, so it never "
                        "reaches config_hash or the result-cache key"
                        % (class_name, targets or "<attribute>"),
                    )
                elif isinstance(statement, ast.AnnAssign):
                    if _is_classvar(statement.annotation):
                        continue
                    type_name = _annotation_name(statement.annotation)
                    if type_name is None or (
                        type_name not in _SCALAR_TYPES and type_name not in classes
                    ):
                        field_name = (
                            statement.target.id
                            if isinstance(statement.target, ast.Name)
                            else "<field>"
                        )
                        yield self.finding(
                            module,
                            statement,
                            "%s.%s has type %r, which is neither a JSON-stable "
                            "scalar nor a config dataclass: config_hash cannot "
                            "canonicalise it deterministically"
                            % (class_name, field_name, type_name or "<complex>"),
                            "use int/float/bool/str or a nested config "
                            "dataclass (tuples/sets/objects do not survive "
                            "dataclasses.asdict + canonical JSON)",
                        )
        for class_name in sorted(set(classes) - reachable):
            yield self.finding(
                module,
                classes[class_name],
                "dataclass %s is not reachable from SystemConfig: its fields "
                "look tunable but never feed config_hash or the cache key"
                % class_name,
                "reference it from a SystemConfig field (or move it out of "
                "the config module)",
            )

    # -- executor side -------------------------------------------------

    def _check_cell_module(self, module: Module, cell: ast.ClassDef) -> Iterator[Finding]:
        identity = None
        for statement in cell.body:
            if isinstance(statement, ast.FunctionDef) and statement.name == "identity":
                identity = statement
                break
        if identity is None:
            yield self.finding(
                module,
                cell,
                "SimCell has no identity() method: the cache key has nothing "
                "canonical to hash",
                "define identity() returning the dict the cache key hashes",
            )
            return
        calls = {
            dotted_name(node.func)
            for node in ast.walk(identity)
            if isinstance(node, ast.Call)
        }
        if not any(name and name.rsplit(".", 1)[-1] == "config_hash" for name in calls):
            yield self.finding(
                module,
                identity,
                "SimCell.identity() never calls config_hash: config changes "
                "would not change the cache key",
                "include config_hash(self.config) in the identity dict",
            )
        keys = _identity_dict_keys(identity)
        for required in _REQUIRED_IDENTITY_KEYS:
            if required not in keys:
                yield self.finding(
                    module,
                    identity,
                    "SimCell.identity() omits the %r component: results that "
                    "differ in it would collide in the cache" % required,
                    "add the %r entry to the identity dict" % required,
                )


def _collect_dataclasses(tree: ast.AST) -> Dict[str, ast.ClassDef]:
    found = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and "dataclass" in decorator_names(node):
            found[node.name] = node
    return found


def _find_class(tree: ast.AST, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _reachable_from(classes: Dict[str, ast.ClassDef], root: str) -> Set[str]:
    reachable: Set[str] = set()
    frontier = [root] if root in classes else []
    while frontier:
        current = frontier.pop()
        if current in reachable:
            continue
        reachable.add(current)
        for statement in classes[current].body:
            if isinstance(statement, ast.AnnAssign):
                type_name = _annotation_name(statement.annotation)
                if type_name in classes:
                    frontier.append(type_name)
                # Nested types may also hide in default_factory lambdas.
                if statement.value is not None:
                    for node in ast.walk(statement.value):
                        if isinstance(node, ast.Name) and node.id in classes:
                            frontier.append(node.id)
    return reachable


def _identity_dict_keys(function: ast.FunctionDef) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys
