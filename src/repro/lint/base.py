"""Core vocabulary of the simlint static analyser.

A :class:`Rule` inspects parsed modules and yields :class:`Finding`
objects.  Two rule shapes exist:

* **module rules** implement :meth:`Rule.check_module` and see one file
  at a time (most hygiene rules);
* **project rules** implement :meth:`Rule.check_project` and see every
  parsed module at once (the cross-file invariants: cache-key
  completeness, schema drift).

Both shapes may be mixed in one rule class; the engine calls whichever
methods a rule overrides.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Severity levels, most severe first.  ``error`` findings are invariant
#: violations that can corrupt results; ``warning`` findings are hygiene
#: problems that make violations likely later.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: Actionable remediation, rendered alongside the message.
    fixit: str

    def render(self) -> str:
        """``path:line:col: SLnnn severity: message (fix: ...)``"""
        return "%s:%d:%d: %s %s: %s [fix: %s]" % (
            self.path,
            self.line,
            self.col,
            self.rule_id,
            self.severity,
            self.message,
            self.fixit,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fixit": self.fixit,
        }


@dataclass
class Module:
    """One parsed source file plus the context rules key off."""

    #: Path as given on the command line (rendered in findings).
    path: str
    #: Dotted module name, e.g. ``repro.sim.system`` (best effort: the
    #: path parts from the last ``repro`` directory down; bare stem when
    #: the file lives outside a ``repro`` tree, as lint fixtures do).
    name: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    @property
    def package_parts(self) -> Tuple[str, ...]:
        return tuple(self.name.split("."))

    def is_in_package(self, packages: Iterable[str]) -> bool:
        """True when the module lives under ``repro.<pkg>`` for any of
        *packages* (e.g. the timing-critical set)."""
        parts = self.package_parts
        return len(parts) >= 2 and parts[0] == "repro" and parts[1] in set(packages)


class Rule:
    """Base class: subclasses set the class attributes and override
    :meth:`check_module` and/or :meth:`check_project`."""

    rule_id: str = "SL000"
    name: str = "abstract"
    severity: str = "error"
    #: One-line rationale shown by ``repro lint --list-rules``.
    rationale: str = ""
    #: Default remediation message attached to findings.
    fixit: str = ""

    def check_module(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one module (default: none)."""
        return iter(())

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        """Yield findings that need the whole module set (default: none)."""
        return iter(())

    # ------------------------------------------------------------------

    def finding(
        self,
        module: Module,
        node: ast.AST,
        message: str,
        fixit: Optional[str] = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at *node* in *module*."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fixit=fixit if fixit is not None else self.fixit,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything
    more complex (calls, subscripts)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return "%s.%s" % (base, node.attr)
    return None


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """The name parts of an attribute target, e.g. ``self.config.x`` ->
    ``["self", "config", "x"]``; ``None`` when the chain passes through
    a call or subscript."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def decorator_names(node: ast.ClassDef) -> List[str]:
    """Flattened decorator names (``dataclass`` for both the bare and
    the called ``@dataclass(...)`` forms)."""
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None:
            names.append(name.rsplit(".", 1)[-1])
    return names
