"""SARIF 2.1.0 rendering for simlint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-hosting UIs ingest for inline annotations; CI uploads the
file as an artifact.  One run object, one rule descriptor per distinct
rule that fired or is registered, one result per finding.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, TextIO

from repro.lint.base import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: simlint severity -> SARIF level.
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.rationale or rule.name},
        "help": {"text": rule.fixit or ""},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def sarif_payload(
    findings: Sequence[Finding],
    rules: Optional[Sequence[Rule]] = None,
) -> Dict[str, object]:
    """The SARIF document as a plain dict (JSON-ready)."""
    descriptors: List[Dict[str, object]] = []
    seen = set()
    for rule in rules or ():
        if rule.rule_id not in seen:
            seen.add(rule.rule_id)
            descriptors.append(_rule_descriptor(rule))
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "level": _LEVELS.get(finding.severity, "warning"),
                "message": {
                    "text": "%s [fix: %s]" % (finding.message, finding.fixit)
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/")
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "https://github.com/repro/tempo"
                            "/blob/main/docs/static_analysis.md"
                        ),
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    out: TextIO,
    rules: Optional[Sequence[Rule]] = None,
) -> None:
    json.dump(sarif_payload(findings, rules), out, indent=2, sort_keys=True)
    out.write("\n")
