"""The simlint engine: file discovery, parsing, rule dispatch,
suppression, and rendering.

Entry point: :func:`lint_paths` -> sorted ``List[Finding]``.

Suppression, narrowest to widest:

* inline pragma on the offending line --
  ``# simlint: disable=SL001,SL007`` (or a bare ``# simlint: disable``
  for every rule);
* per-file ignores in ``pyproject.toml`` under
  ``[tool.simlint.per-file-ignores]``;
* rule-wide ``--disable SLnnn`` on the command line or ``disable`` in
  ``[tool.simlint]``.

The pyproject config is parsed with :mod:`tomllib` when the interpreter
ships it (3.11+); on older interpreters configuration silently falls
back to the built-in defaults, which lint exactly as CI does.
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.lint.base import Finding, Module, Rule
from repro.lint.rules import ALL_RULES

_PRAGMA = re.compile(r"#\s*simlint:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?")


class LintConfig:
    """Effective configuration: disabled rules + per-file ignores."""

    def __init__(
        self,
        disabled: Iterable[str] = (),
        per_file_ignores: Optional[Dict[str, List[str]]] = None,
    ) -> None:
        self.disabled = frozenset(disabled)
        #: ``{path glob-free suffix: [rule ids]}`` -- a finding is
        #: dropped when its path ends with the key.
        self.per_file_ignores = dict(per_file_ignores or {})

    def is_ignored(self, finding: Finding) -> bool:
        if finding.rule_id in self.disabled:
            return True
        normalized = finding.path.replace(os.sep, "/")
        for suffix, rules in self.per_file_ignores.items():
            if normalized.endswith(suffix) and finding.rule_id in rules:
                return True
        return False


def load_pyproject_config(start: str = ".") -> LintConfig:
    """Read ``[tool.simlint]`` from the nearest ``pyproject.toml`` at or
    above *start*; defaults when absent or unparsable."""
    try:
        import tomllib  # Python 3.11+
    except ImportError:
        return LintConfig()
    directory = os.path.abspath(start)
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            try:
                with open(candidate, "rb") as stream:
                    data = tomllib.load(stream)
            except (OSError, tomllib.TOMLDecodeError):
                return LintConfig()
            section = data.get("tool", {}).get("simlint", {})
            return LintConfig(
                disabled=section.get("disable", ()),
                per_file_ignores=section.get("per-file-ignores", {}),
            )
        parent = os.path.dirname(directory)
        if parent == directory:
            return LintConfig()
        directory = parent


# ----------------------------------------------------------------------


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(root, filename))
        elif path.endswith(".py"):
            files.append(path)
    return sorted(dict.fromkeys(files))


def module_name_for(path: str) -> str:
    """Dotted name from the last ``repro`` directory down (fixture files
    outside a repro tree keep their bare stem)."""
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    anchor = None
    for index, part in enumerate(parts[:-1]):
        if part == "repro":
            anchor = index
    if anchor is None:
        return stem
    package = parts[anchor:-1]
    if stem != "__init__":
        package = package + [stem]
    return ".".join(package)


def parse_module(path: str) -> Optional[Module]:
    """Parse one file; ``None`` (not a crash) on unreadable source --
    syntax errors are the compiler's job, not the linter's."""
    try:
        with open(path, encoding="utf-8") as stream:
            source = stream.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError):
        return None
    return Module(
        path=path,
        name=module_name_for(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def _suppressed_inline(finding: Finding, module: Module) -> bool:
    if not 1 <= finding.line <= len(module.lines):
        return False
    match = _PRAGMA.search(module.lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return finding.rule_id in {rule.strip() for rule in rules.split(",")}


def lint_modules(
    modules: Sequence[Module],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run every (enabled) rule over the parsed *modules*."""
    config = config if config is not None else LintConfig()
    active = [
        rule
        for rule in (rules if rules is not None else ALL_RULES)
        if rule.rule_id not in config.disabled
    ]
    by_path = {module.path: module for module in modules}
    findings: List[Finding] = []
    for rule in active:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(modules))
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and _suppressed_inline(finding, module):
            continue
        if config.is_ignored(finding):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Discover, parse and lint *paths*; the one-call API."""
    modules = []
    for path in discover_files(paths):
        module = parse_module(path)
        if module is not None:
            modules.append(module)
    return lint_modules(modules, config=config, rules=rules)


# ----------------------------------------------------------------------


def render_text(findings: Sequence[Finding], out: TextIO) -> None:
    for finding in findings:
        out.write(finding.render() + "\n")
    errors = sum(1 for finding in findings if finding.severity == "error")
    warnings = len(findings) - errors
    if findings:
        out.write(
            "simlint: %d finding(s) (%d error, %d warning)\n"
            % (len(findings), errors, warnings)
        )
    else:
        out.write("simlint: no findings\n")


def render_json(findings: Sequence[Finding], out: TextIO) -> None:
    payload = {
        "tool": "simlint",
        "findings": [finding.as_dict() for finding in findings],
        "counts": {
            "total": len(findings),
            "error": sum(1 for finding in findings if finding.severity == "error"),
            "warning": sum(
                1 for finding in findings if finding.severity == "warning"
            ),
        },
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def render_rules(out: TextIO, rules: Optional[Sequence[Rule]] = None) -> None:
    """``--list-rules``: one block per rule."""
    for rule in rules if rules is not None else ALL_RULES:
        out.write(
            "%s %-24s [%s]\n    why: %s\n    fix: %s\n"
            % (rule.rule_id, rule.name, rule.severity, rule.rationale, rule.fixit)
        )
