"""Whole-program analysis for simlint (v2).

simlint v1 rules see one file at a time (plus the two cross-file rules
that pattern-match a pair of modules).  The invariants PRs 2-5 rest on
-- what crosses the ``multiprocessing`` worker boundary, what
``simulate_cell`` may read, which stats actually reach the exported
namespace -- span the *call graph*, not a file.  This package builds
that view:

* :mod:`~repro.lint.whole_program.summaries` -- per-module extraction of
  function def/use summaries (calls, impurity facts, global writes,
  raise sites, worker spawns, stat registrations).  Serializable, so
  :mod:`~repro.lint.whole_program.cache` can key them by file content
  hash and make warm runs incremental.
* :mod:`~repro.lint.whole_program.graph` -- the project index: import
  resolution, class hierarchy, instance-attribute types, and the
  resolved call graph (conservative on dynamic dispatch: an
  unresolvable ``obj.method()`` fans out to every first-party method of
  that name).
* :mod:`~repro.lint.whole_program.rules` -- the interprocedural rules
  SL010-SL014, each a normal :class:`~repro.lint.base.Rule` so they
  compose with the v1 engine, suppression layers, and renderers.
* :mod:`~repro.lint.whole_program.baseline` -- the staged-adoption
  baseline file (``--baseline``): known findings are filtered, new ones
  still fail.

``repro lint --whole-program`` runs these on top of the v1 rules; see
``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.lint.whole_program.baseline import (
    Baseline,
    BaselineError,
    finding_fingerprint,
)
from repro.lint.whole_program.cache import SummaryCache
from repro.lint.whole_program.graph import ProjectIndex
from repro.lint.whole_program.rules import (
    WHOLE_PROGRAM_RULE_CLASSES,
    build_whole_program_rules,
)
from repro.lint.whole_program.summaries import ModuleSummary, extract_summary

__all__ = [
    "Baseline",
    "BaselineError",
    "ModuleSummary",
    "ProjectIndex",
    "SummaryCache",
    "WHOLE_PROGRAM_RULE_CLASSES",
    "build_whole_program_rules",
    "extract_summary",
    "finding_fingerprint",
]
