"""Project index and call graph for whole-program lint.

Built from the per-module summaries, the :class:`ProjectIndex` resolves
rendered chains (``self.controller.device.stats``) against first-party
symbols: import maps, class hierarchies, instance-attribute types
(including containers, factory returns, and constructor-parameter
inference), loop variables, and caller-to-callee parameter bindings.

Resolution is *conservative on dynamic dispatch*: an ``obj.method()``
call whose receiver cannot be typed fans out to every first-party
method named ``method`` -- except for a short list of ubiquitous
container/IO method names (``get``, ``items``, ``append``, ...), whose
fan-out would connect everything to everything and drown the graph in
false edges.  The trade is documented in ``docs/static_analysis.md``:
facts behind an excluded name are invisible to the engine, so
first-party code should not reuse those names for impure work.

Function ids are ``"<dotted.module>:<qualname>"``; class ids are
``"<dotted.module>:<ClassName>"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.whole_program.summaries import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
    ValueDesc,
)

#: Receiver-less method names too generic for name-match fallback.
FALLBACK_EXCLUDED: FrozenSet[str] = frozenset(
    {
        "__init__",
        "add",
        "append",
        "as_dict",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "endswith",
        "exists",
        "extend",
        "flat",
        "flush",
        "format",
        "from_dict",
        "get",
        "hexdigest",
        "index",
        "insert",
        "is_dir",
        "isoformat",
        "items",
        "join",
        "keys",
        "loads",
        "dumps",
        "mkdir",
        "open",
        "peek",
        "pop",
        "popitem",
        "put",
        "read",
        "read_text",
        "record",
        "register",
        "register_all",
        "remove",
        "resolve",
        "rsplit",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "strip",
        "to_dict",
        "update",
        "values",
        "write",
        "write_text",
    }
)

#: Marker binding target for a lambda flowing into a parameter.
LAMBDA_TARGET = "<lambda>"

_MAX_IMPORT_HOPS = 8


@dataclass
class Resolution:
    """Outcome of resolving one call chain."""

    callees: Set[str] = field(default_factory=set)
    instantiated: Set[str] = field(default_factory=set)  # class ids
    used_fallback: bool = False
    resolved: bool = False  # any concrete target found


@dataclass
class Reachability:
    """BFS result from a set of roots over the resolved call graph."""

    reached: Set[str]
    parents: Dict[str, Tuple[str, int]]  # fid -> (caller fid, call line)

    def chain(self, fid: str) -> List[str]:
        """Call path root -> ... -> fid, as function ids."""
        path = [fid]
        seen = {fid}
        while fid in self.parents:
            fid = self.parents[fid][0]
            if fid in seen:
                break
            seen.add(fid)
            path.append(fid)
        path.reverse()
        return path


class ProjectIndex:
    """Whole-program symbol/type/call-graph index over module summaries."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        #: fid -> (module name, function summary)
        self.functions: Dict[str, Tuple[str, FunctionSummary]] = {}
        #: cid -> module name
        self.classes: Dict[str, str] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.module_symbols: Dict[str, Dict[str, Tuple[str, str]]] = {}
        for mod, summary in summaries.items():
            symbols: Dict[str, Tuple[str, str]] = {}
            for qual, fn in summary.functions.items():
                fid = "%s:%s" % (mod, qual)
                self.functions[fid] = (mod, fn)
                if fn.class_name and qual == "%s.%s" % (fn.class_name, fn.name):
                    self.methods_by_name.setdefault(fn.name, []).append(fid)
                elif not fn.class_name and not fn.nested and qual == fn.name:
                    symbols[fn.name] = ("func", fid)
            for cls_name in summary.classes:
                cid = "%s:%s" % (mod, cls_name)
                self.classes[cid] = mod
                symbols[cls_name] = ("class", cid)
            self.module_symbols[mod] = symbols

        # Lazy/memoized state.
        self._factory_memo: Dict[str, Set[str]] = {}
        self._attr_memo: Dict[Tuple[str, str], Set[str]] = {}
        self._attr_in_progress: Set[Tuple[str, str]] = set()
        self._constructor_sites: Optional[Dict[str, List[Tuple[str, CallSite]]]] = None

        # Populated by analyze().
        self.edges: Dict[str, List[Tuple[str, int]]] = {}
        self.bindings: Dict[str, Dict[str, Set[str]]] = {}
        self.instantiated: Set[str] = set()
        self._analyzed = False

    # ------------------------------------------------------------------
    # Symbols and imports
    # ------------------------------------------------------------------

    def resolve_symbol(self, mod: str, name: str) -> Optional[Tuple[str, str]]:
        """``("func"|"class"|"module", id)`` for *name* seen from *mod*,
        following first-party re-export chains; None for stdlib/unknown."""
        for _ in range(_MAX_IMPORT_HOPS):
            symbols = self.module_symbols.get(mod)
            if symbols is None:
                return None
            if name in symbols:
                return symbols[name]
            summary = self.summaries.get(mod)
            if summary is None or name not in summary.imports:
                return None
            target = summary.imports[name]
            if target in self.summaries:
                return ("module", target)
            if "." not in target:
                return None  # stdlib top-level import
            mod, name = target.rsplit(".", 1)
        return None

    def resolve_class_chain(self, mod: str, chain: str) -> Optional[str]:
        """Class id for a rendered chain like ``Cls`` or ``alias.Cls``."""
        parts = chain.split(".")
        if len(parts) == 1:
            resolved = self.resolve_symbol(mod, parts[0])
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        head = self.resolve_symbol(mod, parts[0])
        for part in parts[1:]:
            if head is None or head[0] != "module":
                return None
            head = self.resolve_symbol(head[1], part)
        if head is not None and head[0] == "class":
            return head[1]
        return None

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------

    def class_bases(self, cid: str) -> List[str]:
        mod = self.classes.get(cid)
        if mod is None:
            return []
        summary = self.summaries[mod].classes[cid.split(":", 1)[1]]
        bases = []
        for base_chain in summary.bases:
            base_cid = self.resolve_class_chain(mod, base_chain)
            if base_cid is not None:
                bases.append(base_cid)
        return bases

    def class_mro(self, cid: str) -> List[str]:
        """Depth-first linearization (good enough for method lookup)."""
        order: List[str] = []
        seen: Set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            stack.extend(self.class_bases(current))
        return order

    def find_method(self, cid: str, name: str) -> Optional[str]:
        for klass in self.class_mro(cid):
            mod = self.classes.get(klass)
            if mod is None:
                continue
            cls_name = klass.split(":", 1)[1]
            summary = self.summaries[mod].classes[cls_name]
            if name in summary.methods:
                return "%s:%s.%s" % (mod, cls_name, name)
        return None

    def subclasses_of(self, root_names: Tuple[str, ...]) -> Set[str]:
        """All first-party classes deriving (transitively) from a class
        whose bare name is in *root_names* (e.g. ``("ReproError",)``)."""
        roots = {
            cid for cid in self.classes if cid.split(":", 1)[1] in root_names
        }
        changed = True
        members = set(roots)
        while changed:
            changed = False
            for cid in self.classes:
                if cid in members:
                    continue
                if any(base in members for base in self.class_bases(cid)):
                    members.add(cid)
                    changed = True
        return members

    # ------------------------------------------------------------------
    # Value typing
    # ------------------------------------------------------------------

    def factory_returns(self, fid: str) -> Set[str]:
        """Classes a factory function can return (constructor calls and
        class-bound locals visible in its return expressions)."""
        if fid in self._factory_memo:
            return self._factory_memo[fid]
        self._factory_memo[fid] = set()  # cycle guard
        entry = self.functions.get(fid)
        if entry is None:
            return set()
        mod, fn = entry
        classes: Set[str] = set()
        for chain in fn.returns.calls:
            cid = self.resolve_class_chain(mod, chain)
            if cid is not None:
                classes.add(cid)
                continue
            resolved = self._resolve_plain_callable(mod, fn, chain)
            if resolved is not None and resolved[0] == "func":
                classes.update(self.factory_returns(resolved[1]))
        for name in fn.returns.names:
            for chain in fn.local_classes.get(name, []):
                cid = self.resolve_class_chain(mod, chain)
                if cid is not None:
                    classes.add(cid)
        self._factory_memo[fid] = classes
        return classes

    def _resolve_plain_callable(
        self, mod: str, fn: FunctionSummary, chain: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a (possibly dotted) chain to a func/class without
        instance typing -- used for factory and constructor lookup."""
        parts = chain.split(".")
        head = parts[0]
        if head.endswith("[]") or head.endswith("()"):
            return None
        if len(parts) == 1:
            if head in fn.local_functions:
                return ("func", self._nested_fid(mod, fn, head))
            resolved = self.resolve_symbol(mod, head)
            if resolved is not None and resolved[0] in ("func", "class"):
                return resolved
            return None
        resolved = self.resolve_symbol(mod, head)
        for part in parts[1:]:
            if resolved is None or resolved[0] != "module":
                return None
            if part.endswith("[]") or part.endswith("()"):
                return None
            resolved = self.resolve_symbol(resolved[1], part)
        if resolved is not None and resolved[0] in ("func", "class"):
            return resolved
        return None

    def _nested_fid(self, mod: str, fn: FunctionSummary, name: str) -> str:
        return "%s:%s.<locals>.%s" % (mod, fn.qualname, name)

    def _constructor_call_sites(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        """cid -> [(caller fid, call site)] for direct constructor calls."""
        if self._constructor_sites is not None:
            return self._constructor_sites
        sites: Dict[str, List[Tuple[str, CallSite]]] = {}
        for fid, (mod, fn) in self.functions.items():
            for call in fn.calls:
                resolved = self._resolve_plain_callable(mod, fn, call.callee)
                if resolved is not None and resolved[0] == "class":
                    sites.setdefault(resolved[1], []).append((fid, call))
        self._constructor_sites = sites
        return sites

    def attr_classes(self, cid: str, attr: str) -> Set[str]:
        """Candidate classes for ``<instance of cid>.attr`` (container
        attributes yield their *element* class)."""
        key = (cid, attr)
        if key in self._attr_memo:
            return self._attr_memo[key]
        if key in self._attr_in_progress:
            return set()
        self._attr_in_progress.add(key)
        try:
            result: Set[str] = set()
            for klass in self.class_mro(cid):
                mod = self.classes.get(klass)
                if mod is None:
                    continue
                summary = self.summaries[mod].classes[klass.split(":", 1)[1]]
                typed = summary.attr_types.get(attr)
                if typed is None:
                    continue
                kind, text = typed
                if kind in ("instance", "container"):
                    resolved = self.resolve_class_chain(mod, text)
                    if resolved is not None:
                        result.add(resolved)
                elif kind == "factory":
                    factory = self._resolve_plain_callable(
                        mod, self.summaries[mod].functions.get("<module>", _EMPTY_FN), text
                    )
                    if factory is not None and factory[0] == "func":
                        result.update(self.factory_returns(factory[1]))
                elif kind == "param":
                    result.update(self._param_attr_classes(klass, text))
                if result:
                    break
            self._attr_memo[key] = result
            return result
        finally:
            self._attr_in_progress.discard(key)

    def _param_attr_classes(self, cid: str, param: str) -> Set[str]:
        """Infer the classes flowing into constructor parameter *param*
        of *cid* from every direct constructor call site."""
        mod = self.classes.get(cid)
        if mod is None:
            return set()
        init_fid = self.find_method(cid, "__init__")
        if init_fid is None:
            return set()
        _, init_fn = self.functions[init_fid]
        params = [p for p in init_fn.params if p != "self"]
        try:
            position = params.index(param)
        except ValueError:
            return set()
        result: Set[str] = set()
        for caller_fid, call in self._constructor_call_sites().get(cid, []):
            desc: Optional[ValueDesc] = None
            if position < len(call.args):
                desc = call.args[position]
            elif param in call.kwargs:
                desc = call.kwargs[param]
            if desc is None:
                continue
            result.update(self.value_classes(caller_fid, desc))
        return result

    def value_classes(self, fid: str, desc: ValueDesc) -> Set[str]:
        """Candidate classes for an argument descriptor seen in *fid*."""
        entry = self.functions.get(fid)
        if entry is None:
            return set()
        mod, fn = entry
        if desc.kind == "name":
            return self._name_classes(mod, fn, desc.text)
        if desc.kind == "attr":
            return self.chain_value_classes(fid, desc.text)
        if desc.kind == "call":
            resolved = self._resolve_plain_callable(mod, fn, desc.text)
            if resolved is None:
                return set()
            if resolved[0] == "class":
                return {resolved[1]}
            return self.factory_returns(resolved[1])
        return set()

    def _name_classes(self, mod: str, fn: FunctionSummary, name: str) -> Set[str]:
        result: Set[str] = set()
        for chain in fn.local_classes.get(name, []):
            cid = self.resolve_class_chain(mod, chain)
            if cid is not None:
                result.add(cid)
        if result:
            return result
        if name in fn.local_iters:
            fid = "%s:%s" % (mod, fn.qualname)
            return self.chain_value_classes(fid, fn.local_iters[name] + "[]")
        return result

    def chain_value_classes(self, fid: str, chain: str) -> Set[str]:
        """Candidate classes for a *value* chain (``self.ctrl.device`` --
        no trailing method call) evaluated in *fid*'s scope."""
        entry = self.functions.get(fid)
        if entry is None:
            return set()
        mod, fn = entry
        parts = chain.split(".")
        states = self._head_states(mod, fn, parts[0])
        for part in parts[1:]:
            states = self._walk_segment(states, part)
            if not states:
                return set()
        return {cid for kind, cid in states if kind == "class"}

    def _head_states(
        self, mod: str, fn: FunctionSummary, seg: str
    ) -> Set[Tuple[str, str]]:
        """Resolve the first chain segment to typed states:
        ("class", cid) instance / ("classobj", cid) / ("module", mod)."""
        subscripted = seg.endswith("[]")
        called = seg.endswith("()")
        name = seg[:-2] if (subscripted or called) else seg
        states: Set[Tuple[str, str]] = set()
        if name == "self" and fn.class_name:
            cid = "%s:%s" % (mod, fn.class_name)
            if cid in self.classes:
                states.add(("class", cid))
            return states
        if name == "super" and called and fn.class_name:
            cid = "%s:%s" % (mod, fn.class_name)
            for base in self.class_bases(cid):
                states.add(("class", base))
            return states
        for chain in fn.local_classes.get(name, []):
            cid = self.resolve_class_chain(mod, chain)
            if cid is not None:
                states.add(("class", cid))
        if states:
            return states
        if name in fn.local_iters:
            fid = "%s:%s" % (mod, fn.qualname)
            for cid in self.chain_value_classes(fid, fn.local_iters[name] + "[]"):
                states.add(("class", cid))
            if states:
                return states
        resolved = self.resolve_symbol(mod, name)
        if resolved is not None:
            kind, ident = resolved
            if kind == "module":
                states.add(("module", ident))
            elif kind == "class":
                if called:
                    states.add(("class", ident))  # Ctor() is an instance
                else:
                    states.add(("classobj", ident))
            elif kind == "func" and called:
                for cid in self.factory_returns(ident):
                    states.add(("class", cid))
        if not states and name in self.summaries.get(mod, _EMPTY_MODULE).module_containers:
            if subscripted:
                container = self.summaries[mod].module_containers[name]
                cid = self.resolve_class_chain(mod, container)
                if cid is not None:
                    states.add(("class", cid))
        return states

    def _walk_segment(
        self, states: Set[Tuple[str, str]], seg: str
    ) -> Set[Tuple[str, str]]:
        subscripted = seg.endswith("[]")
        called = seg.endswith("()")
        name = seg[:-2] if (subscripted or called) else seg
        out: Set[Tuple[str, str]] = set()
        for kind, ident in states:
            if kind == "module":
                resolved = self.resolve_symbol(ident, name)
                if resolved is None:
                    continue
                sym_kind, sym_id = resolved
                if sym_kind == "module":
                    out.add(("module", sym_id))
                elif sym_kind == "class":
                    out.add(("class" if called else "classobj", sym_id))
                elif sym_kind == "func" and called:
                    for cid in self.factory_returns(sym_id):
                        out.add(("class", cid))
            elif kind == "class":
                if called:
                    method = self.find_method(ident, name)
                    if method is not None:
                        for cid in self.factory_returns(method):
                            out.add(("class", cid))
                    continue
                for cid in self.attr_classes(ident, name):
                    out.add(("class", cid))
        return out

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def resolve_call(self, fid: str, call: CallSite) -> Resolution:
        """Resolve one call site's callees in the scope of *fid*,
        consulting accumulated parameter bindings."""
        resolution = Resolution()
        entry = self.functions.get(fid)
        if entry is None:
            return resolution
        mod, fn = entry
        chain = call.callee
        parts = chain.split(".")
        head = parts[0]

        if len(parts) == 1:
            name = head[:-2] if head.endswith(("[]", "()")) else head
            if name in fn.local_functions:
                resolution.callees.add(self._nested_fid(mod, fn, name))
                resolution.resolved = True
                return resolution
            if name in fn.local_lambdas:
                resolution.resolved = True  # lambda body not modeled
                return resolution
            bound = self.bindings.get(fid, {}).get(name)
            if bound:
                for target in bound:
                    if target != LAMBDA_TARGET:
                        resolution.callees.add(target)
                resolution.resolved = True
                return resolution
            resolved = self.resolve_symbol(mod, name)
            if resolved is not None:
                if resolved[0] == "func":
                    resolution.callees.add(resolved[1])
                    resolution.resolved = True
                elif resolved[0] == "class":
                    resolution.instantiated.add(resolved[1])
                    init = self.find_method(resolved[1], "__init__")
                    if init is not None:
                        resolution.callees.add(init)
                    resolution.resolved = True
            return resolution

        # Dotted chain: type the receiver, then look up the final method.
        final = parts[-1]
        final_name = final[:-2] if final.endswith(("[]", "()")) else final
        states = self._head_states(mod, fn, head)
        for part in parts[1:-1]:
            states = self._walk_segment(states, part)
            if not states:
                break
        for kind, ident in states:
            if kind == "module":
                resolved = self.resolve_symbol(ident, final_name)
                if resolved is not None:
                    if resolved[0] == "func":
                        resolution.callees.add(resolved[1])
                        resolution.resolved = True
                    elif resolved[0] == "class":
                        resolution.instantiated.add(resolved[1])
                        init = self.find_method(resolved[1], "__init__")
                        if init is not None:
                            resolution.callees.add(init)
                        resolution.resolved = True
            elif kind in ("class", "classobj"):
                method = self.find_method(ident, final_name)
                if method is not None:
                    resolution.callees.add(method)
                    resolution.resolved = True
        if not resolution.resolved and final_name not in FALLBACK_EXCLUDED:
            # Conservative dynamic-dispatch fan-out by method name.
            for target in self.methods_by_name.get(final_name, []):
                resolution.callees.add(target)
                resolution.used_fallback = True
        return resolution

    def callable_targets(self, fid: str, desc: ValueDesc) -> Set[str]:
        """Function-valued targets an argument descriptor can carry
        (for parameter binding): fids plus the ``<lambda>`` marker."""
        entry = self.functions.get(fid)
        if entry is None:
            return set()
        mod, fn = entry
        if desc.kind == "lambda":
            return {LAMBDA_TARGET}
        if desc.kind == "name":
            name = desc.text
            if name in fn.local_functions:
                return {self._nested_fid(mod, fn, name)}
            if name in fn.local_lambdas:
                return {LAMBDA_TARGET}
            bound = self.bindings.get(fid, {}).get(name)
            if bound:
                return set(bound)
            resolved = self.resolve_symbol(mod, name)
            if resolved is not None and resolved[0] == "func":
                return {resolved[1]}
            return set()
        if desc.kind == "attr":
            resolved = self._resolve_plain_callable(mod, fn, desc.text)
            if resolved is not None and resolved[0] == "func":
                return {resolved[1]}
        return set()

    # ------------------------------------------------------------------
    # Whole-graph analysis
    # ------------------------------------------------------------------

    def analyze(self) -> None:
        """Resolve every call site to edges, propagating parameter
        bindings to a fixpoint (callable arguments re-resolve the
        callee's own calls when new bindings arrive)."""
        if self._analyzed:
            return
        worklist = list(self.functions)
        queued = set(worklist)
        while worklist:
            fid = worklist.pop()
            queued.discard(fid)
            mod, fn = self.functions[fid]
            edges: List[Tuple[str, int]] = []
            touched: Set[str] = set()
            for call in fn.calls:
                resolution = self.resolve_call(fid, call)
                self.instantiated.update(resolution.instantiated)
                for callee in resolution.callees:
                    edges.append((callee, call.line))
                    if self._bind_arguments(fid, callee, call):
                        touched.add(callee)
            self.edges[fid] = edges
            for callee in touched:
                if callee not in queued:
                    worklist.append(callee)
                    queued.add(callee)
        self._analyzed = True

    def _bind_arguments(self, caller: str, callee: str, call: CallSite) -> bool:
        """Record callable arguments flowing into *callee*'s parameters;
        True when a new binding appeared (callee needs re-resolution)."""
        entry = self.functions.get(callee)
        if entry is None:
            return False
        _, callee_fn = entry
        params = [p for p in callee_fn.params if p != "self"]
        changed = False
        pairs: List[Tuple[str, ValueDesc]] = []
        for position, desc in enumerate(call.args):
            if position < len(params):
                pairs.append((params[position], desc))
        for name, desc in call.kwargs.items():
            if name in params:
                pairs.append((name, desc))
        for param, desc in pairs:
            if desc.kind not in ("name", "attr", "lambda"):
                continue
            targets = self.callable_targets(caller, desc)
            if not targets:
                continue
            slot = self.bindings.setdefault(callee, {}).setdefault(param, set())
            before = len(slot)
            slot.update(targets)
            if len(slot) != before:
                changed = True
        return changed

    def reachable_from(self, roots: List[str]) -> Reachability:
        """BFS over the analyzed edges from *roots* (function ids)."""
        self.analyze()
        reached: Set[str] = set()
        parents: Dict[str, Tuple[str, int]] = {}
        queue = [fid for fid in roots if fid in self.functions]
        reached.update(queue)
        while queue:
            fid = queue.pop(0)
            for callee, line in self.edges.get(fid, []):
                if callee in reached or callee not in self.functions:
                    continue
                reached.add(callee)
                parents[callee] = (fid, line)
                queue.append(callee)
        return Reachability(reached=reached, parents=parents)

    def functions_named(self, name: str) -> List[str]:
        """All function ids whose bare name matches (methods included)."""
        return sorted(
            fid
            for fid, (_, fn) in self.functions.items()
            if fn.name == name
        )

    def describe(self, fid: str) -> str:
        """Human-readable ``module.qualname`` for messages."""
        if ":" not in fid:
            return fid
        mod, qual = fid.split(":", 1)
        return "%s.%s" % (mod, qual)


_EMPTY_FN = FunctionSummary(
    name="<empty>", qualname="<empty>", class_name="", lineno=1, nested=False
)
_EMPTY_MODULE = ModuleSummary(path="", name="")
