"""Per-module def/use summaries for whole-program lint.

One :class:`ModuleSummary` captures everything the interprocedural
rules need from one file -- call sites with rendered receiver chains,
impurity facts (clock/env/cwd/entropy reads, unordered-set iteration),
module-global writes, ``raise`` sites, ``multiprocessing`` spawn sites,
stat creation/increment/registration sites, class shapes and
instance-attribute types.  Summaries are plain data (``to_dict`` /
``from_dict``) so the :class:`~repro.lint.whole_program.cache.SummaryCache`
can persist them keyed by file content hash: a warm run re-extracts only
changed files.

Rendered chains use ``.`` for attributes, ``[]`` for any subscript and
``()`` for an embedded call, e.g. ``self.hierarchy.l1[].stats`` -- the
graph layer resolves them against instance-attribute types.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lint.base import Module

#: Calls into these modules read the wall clock.
CLOCK_MODULES = ("time", "datetime")
#: Calls into these modules draw host entropy.
ENTROPY_MODULES = ("random", "uuid", "secrets")
#: Specific dotted calls mapped to a fact kind.
SPECIAL_CALLS = {
    "os.urandom": "random",
    "os.getrandom": "random",
    "os.getenv": "env",
    "os.getcwd": "cwd",
    "os.getcwdb": "cwd",
}
#: Any mention of these dotted chains (not only calls) is a fact.
SPECIAL_CHAINS = {"os.environ": "env"}

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "insert",
        "write",
    }
)


def render_chain(node: ast.AST) -> Optional[str]:
    """Render an attribute/subscript/call chain, ``None`` when the chain
    bottoms out in anything but a name (literals, operators, ...)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = render_chain(node.value)
        return None if base is None else "%s.%s" % (base, node.attr)
    if isinstance(node, ast.Subscript):
        base = render_chain(node.value)
        return None if base is None else base + "[]"
    if isinstance(node, ast.Call):
        base = render_chain(node.func)
        return None if base is None else base + "()"
    return None


@dataclass
class ValueDesc:
    """One rendered argument value at a call site."""

    kind: str  # "name" | "attr" | "lambda" | "call" | "const" | "other"
    text: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "text": self.text}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ValueDesc":
        return cls(kind=str(data["kind"]), text=str(data["text"]))


def describe_value(node: ast.AST) -> ValueDesc:
    if isinstance(node, ast.Lambda):
        return ValueDesc("lambda", "")
    if isinstance(node, ast.Name):
        return ValueDesc("name", node.id)
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        chain = render_chain(node)
        return ValueDesc("attr", chain) if chain else ValueDesc("other", "")
    if isinstance(node, ast.Call):
        chain = render_chain(node.func)
        return ValueDesc("call", chain) if chain else ValueDesc("call", "")
    if isinstance(node, ast.Constant):
        return ValueDesc("const", "")
    return ValueDesc("other", "")


@dataclass
class ExprScan:
    """Pickle-hazard scan of one expression tree (spawn args, returns)."""

    lambda_lines: List[int] = field(default_factory=list)
    open_lines: List[int] = field(default_factory=list)
    names: List[str] = field(default_factory=list)
    calls: List[str] = field(default_factory=list)
    attrs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lambda_lines": self.lambda_lines,
            "open_lines": self.open_lines,
            "names": self.names,
            "calls": self.calls,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExprScan":
        return cls(
            lambda_lines=[int(x) for x in data["lambda_lines"]],
            open_lines=[int(x) for x in data["open_lines"]],
            names=[str(x) for x in data["names"]],
            calls=[str(x) for x in data["calls"]],
            attrs=[str(x) for x in data.get("attrs", [])],
        )

    def merge(self, other: "ExprScan") -> None:
        self.lambda_lines.extend(other.lambda_lines)
        self.open_lines.extend(other.open_lines)
        self.names.extend(other.names)
        self.calls.extend(other.calls)
        self.attrs.extend(other.attrs)


def scan_expression(node: ast.AST) -> ExprScan:
    scan = ExprScan()
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            scan.lambda_lines.append(child.lineno)
        elif isinstance(child, ast.Call):
            chain = render_chain(child.func)
            if chain == "open":
                scan.open_lines.append(child.lineno)
            if chain is not None:
                scan.calls.append(chain)
        elif isinstance(child, ast.Attribute):
            chain = render_chain(child)
            if chain is not None:
                scan.attrs.append(chain)
        elif isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            scan.names.append(child.id)
    return scan


@dataclass
class CallSite:
    callee: str
    line: int
    args: List[ValueDesc] = field(default_factory=list)
    kwargs: Dict[str, ValueDesc] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "callee": self.callee,
            "line": self.line,
            "args": [value.to_dict() for value in self.args],
            "kwargs": {key: value.to_dict() for key, value in self.kwargs.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            callee=str(data["callee"]),
            line=int(data["line"]),
            args=[ValueDesc.from_dict(v) for v in data["args"]],
            kwargs={
                str(k): ValueDesc.from_dict(v) for k, v in data["kwargs"].items()
            },
        )


@dataclass
class Fact:
    """One local impurity/global-write fact inside a function."""

    kind: str  # "clock" | "env" | "cwd" | "random" | "set-iteration" | "global-write"
    line: int
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "line": self.line, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fact":
        return cls(
            kind=str(data["kind"]), line=int(data["line"]), detail=str(data["detail"])
        )


@dataclass
class RaiseSite:
    exc: str  # rendered exception constructor chain
    has_context: bool
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {"exc": self.exc, "has_context": self.has_context, "line": self.line}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RaiseSite":
        return cls(
            exc=str(data["exc"]),
            has_context=bool(data["has_context"]),
            line=int(data["line"]),
        )


@dataclass
class SpawnSite:
    """A ``<ctx>.Process(target=..., args=...)`` construction."""

    line: int
    target: Optional[ValueDesc]
    args_scan: Optional[ExprScan]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "target": self.target.to_dict() if self.target else None,
            "args_scan": self.args_scan.to_dict() if self.args_scan else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpawnSite":
        return cls(
            line=int(data["line"]),
            target=ValueDesc.from_dict(data["target"]) if data["target"] else None,
            args_scan=(
                ExprScan.from_dict(data["args_scan"]) if data["args_scan"] else None
            ),
        )


@dataclass
class FunctionSummary:
    """Everything the dataflow engine needs from one function."""

    name: str
    qualname: str  # within the module: "Class.method", "func", "f.<locals>.g"
    class_name: str  # "" for free functions
    lineno: int
    nested: bool
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    facts: List[Fact] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    returns: ExprScan = field(default_factory=ExprScan)
    #: local name -> candidate class chains, from ``x = ClassName(...)``
    #: bindings (a list: factory helpers rebind across branches).
    local_classes: Dict[str, List[str]] = field(default_factory=dict)
    #: nested function name -> lineno.
    local_functions: Dict[str, int] = field(default_factory=dict)
    #: local name -> lineno for ``x = lambda ...`` bindings.
    local_lambdas: Dict[str, int] = field(default_factory=dict)
    #: loop variable -> rendered iterable chain (``for core in self.cores``).
    local_iters: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "class_name": self.class_name,
            "lineno": self.lineno,
            "nested": self.nested,
            "params": self.params,
            "calls": [call.to_dict() for call in self.calls],
            "facts": [fact.to_dict() for fact in self.facts],
            "raises": [site.to_dict() for site in self.raises],
            "spawns": [spawn.to_dict() for spawn in self.spawns],
            "returns": self.returns.to_dict(),
            "local_classes": self.local_classes,
            "local_functions": self.local_functions,
            "local_lambdas": self.local_lambdas,
            "local_iters": self.local_iters,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=str(data["name"]),
            qualname=str(data["qualname"]),
            class_name=str(data["class_name"]),
            lineno=int(data["lineno"]),
            nested=bool(data["nested"]),
            params=[str(p) for p in data["params"]],
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            facts=[Fact.from_dict(f) for f in data["facts"]],
            raises=[RaiseSite.from_dict(r) for r in data["raises"]],
            spawns=[SpawnSite.from_dict(s) for s in data["spawns"]],
            returns=ExprScan.from_dict(data["returns"]),
            local_classes={
                str(k): [str(c) for c in v] for k, v in data["local_classes"].items()
            },
            local_functions={
                str(k): int(v) for k, v in data["local_functions"].items()
            },
            local_lambdas={str(k): int(v) for k, v in data["local_lambdas"].items()},
            local_iters={str(k): str(v) for k, v in data.get("local_iters", {}).items()},
        )


@dataclass
class ClassSummary:
    name: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    #: attr -> (kind, text): ("instance", "ClassName") from
    #: ``self.x = ClassName(...)``, ("container", "ClassName") from
    #: list/tuple/dict displays, comprehensions, or ``.append`` of
    #: constructor calls, ("factory", "func_chain") from
    #: ``self.x = make_thing(...)``, ("param", "arg_name") from
    #: ``self.x = arg`` where *arg* is a method parameter (resolved at
    #: the graph layer through constructor call sites).
    attr_types: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: attr -> (injected, lineno) for StatGroup-valued attributes;
    #: *injected* is True when the group may be supplied by the caller
    #: (constructor parameter or a parent group's ``.child()``).
    group_attrs: Dict[str, Tuple[bool, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": self.bases,
            "methods": self.methods,
            "attr_types": {k: list(v) for k, v in self.attr_types.items()},
            "group_attrs": {k: list(v) for k, v in self.group_attrs.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=str(data["name"]),
            lineno=int(data["lineno"]),
            bases=[str(b) for b in data["bases"]],
            methods=[str(m) for m in data["methods"]],
            attr_types={
                str(k): (str(v[0]), str(v[1])) for k, v in data["attr_types"].items()
            },
            group_attrs={
                str(k): (bool(v[0]), int(v[1]))
                for k, v in data["group_attrs"].items()
            },
        )


@dataclass
class StatSite:
    """One ``group.counter("name")`` / ``group.histogram("name")`` site."""

    stat: str
    kind: str  # "counter" | "histogram"
    class_name: str
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stat": self.stat,
            "kind": self.kind,
            "class_name": self.class_name,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StatSite":
        return cls(
            stat=str(data["stat"]),
            kind=str(data["kind"]),
            class_name=str(data["class_name"]),
            line=int(data["line"]),
        )


@dataclass
class Registration:
    """One ``registry.register(...)`` / ``register_all(...)`` call."""

    kind: str  # "register" | "register_all"
    arg: ValueDesc
    line: int
    class_name: str
    func: str  # qualname of the enclosing function (for loop-var context)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "arg": self.arg.to_dict(),
            "line": self.line,
            "class_name": self.class_name,
            "func": self.func,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Registration":
        return cls(
            kind=str(data["kind"]),
            arg=ValueDesc.from_dict(data["arg"]),
            line=int(data["line"]),
            class_name=str(data["class_name"]),
            func=str(data.get("func", "")),
        )


@dataclass
class ModuleSummary:
    path: str
    name: str  # dotted module name
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: module-level names bound to mutable containers -> lineno.
    module_mutables: Dict[str, int] = field(default_factory=dict)
    #: module-level name -> element class chain for tuple/list displays
    #: of constructor calls (``WORKLOADS = (Workload(...), ...)``).
    module_containers: Dict[str, str] = field(default_factory=dict)
    #: module-level string constants (``KIND_X = "x"``), used to resolve
    #: constant-name stat arguments.
    string_constants: Dict[str, str] = field(default_factory=dict)
    stat_creations: List[StatSite] = field(default_factory=list)
    #: stat names incremented anywhere in this module.
    stat_increments: List[str] = field(default_factory=list)
    #: classes that increment at least one stat, with a witness line.
    class_increments: Dict[str, int] = field(default_factory=dict)
    registrations: List[Registration] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "name": self.name,
            "imports": self.imports,
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "module_mutables": self.module_mutables,
            "module_containers": self.module_containers,
            "string_constants": self.string_constants,
            "stat_creations": [site.to_dict() for site in self.stat_creations],
            "stat_increments": self.stat_increments,
            "class_increments": self.class_increments,
            "registrations": [reg.to_dict() for reg in self.registrations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=str(data["path"]),
            name=str(data["name"]),
            imports={str(k): str(v) for k, v in data["imports"].items()},
            functions={
                str(k): FunctionSummary.from_dict(v)
                for k, v in data["functions"].items()
            },
            classes={
                str(k): ClassSummary.from_dict(v) for k, v in data["classes"].items()
            },
            module_mutables={
                str(k): int(v) for k, v in data["module_mutables"].items()
            },
            module_containers={
                str(k): str(v) for k, v in data["module_containers"].items()
            },
            string_constants={
                str(k): str(v) for k, v in data["string_constants"].items()
            },
            stat_creations=[StatSite.from_dict(s) for s in data["stat_creations"]],
            stat_increments=[str(s) for s in data["stat_increments"]],
            class_increments={
                str(k): int(v) for k, v in data["class_increments"].items()
            },
            registrations=[Registration.from_dict(r) for r in data["registrations"]],
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def _import_map(tree: ast.AST, module_name: str) -> Dict[str, str]:
    """Local name -> fully qualified target for every import."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module_name.split(".")
                anchor = parts[: len(parts) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = "%s.%s" % (base, alias.name) if base else alias.name
    return imports


def _function_params(node: ast.AST) -> List[str]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _is_set_expr(node: ast.AST, set_locals: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = render_chain(node.func)
        if chain in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    return False


def _iter_exprs(node: ast.AST) -> List[ast.AST]:
    if isinstance(node, ast.For):
        return [node.iter]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return [generator.iter for generator in node.generators]
    return []


def _direct_children(node: ast.AST) -> List[ast.AST]:
    """AST children, not descending into nested function/class scopes."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        out.append(child)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return out


class _Extractor:
    """Single-pass extraction of one module's summary."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.summary = ModuleSummary(path=module.path, name=module.name)
        self.summary.imports = _import_map(module.tree, module.name)
        self._module_level_names: Set[str] = set()
        self._stat_incremented: Set[str] = set()
        #: binding target chain ("self._hits" / "hits") -> stat names.
        self._stat_bindings: Dict[str, List[str]] = {}

    # -- helpers -------------------------------------------------------

    def _resolve_stat_name(self, node: ast.AST) -> Optional[str]:
        """The stat-name string of a counter()/histogram() argument:
        a literal, or a Name bound to a module-level string constant."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.summary.string_constants.get(node.id)
        return None

    def _stat_creation_call(self, node: ast.Call) -> Optional[Tuple[str, str]]:
        """``(stat_name, kind)`` when *node* is group.counter/histogram
        with a resolvable name."""
        if not isinstance(node.func, ast.Attribute):
            return None
        if node.func.attr not in ("counter", "histogram"):
            return None
        if not node.args:
            return None
        stat = self._resolve_stat_name(node.args[0])
        if stat is None:
            return None
        return stat, node.func.attr

    # -- module level --------------------------------------------------

    def run(self) -> ModuleSummary:
        tree = self.module.tree
        # Pass 1: module-level bindings (constants, mutables, containers).
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._module_level_names.add(node.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                self._module_level_names.add(target.id)
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    self.summary.string_constants[target.id] = value.value
                elif isinstance(
                    value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.SetComp, ast.ListComp)
                ):
                    self.summary.module_mutables[target.id] = node.lineno
                elif isinstance(value, ast.Call):
                    chain = render_chain(value.func)
                    if chain in ("dict", "list", "set", "defaultdict", "deque", "OrderedDict"):
                        self.summary.module_mutables[target.id] = node.lineno
                if isinstance(value, (ast.Tuple, ast.List)):
                    element_classes = {
                        render_chain(e.func)
                        for e in value.elts
                        if isinstance(e, ast.Call) and render_chain(e.func)
                    }
                    if len(element_classes) == 1:
                        element = element_classes.pop()
                        if element is not None:
                            self.summary.module_containers[target.id] = element

        # Pass 2: functions, classes, and module-level executable code.
        module_body = [
            node
            for node in ast.iter_child_nodes(tree)
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        self._extract_function_like(
            "<module>", "<module>", "", 1, False, [], module_body
        )
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(node, prefix="", class_name="")
            elif isinstance(node, ast.ClassDef):
                self._extract_class(node)

        self.summary.stat_increments = sorted(self._stat_incremented)
        return self.summary

    # -- classes -------------------------------------------------------

    def _extract_class(self, node: ast.ClassDef) -> None:
        info = ClassSummary(name=node.name, lineno=node.lineno)
        info.bases = [
            chain
            for chain in (render_chain(base) for base in node.bases)
            if chain is not None
        ]
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.append(statement.name)
        # Instance-attribute types from every method body.
        for statement in node.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = set(_function_params(statement))
            for child in ast.walk(statement):
                if isinstance(child, ast.Assign) and len(child.targets) == 1:
                    target = child.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    value = child.value
                    self._record_attr_type(info, attr, value, params)
                    self._record_group_attr(info, attr, value, params, child.lineno)
                elif (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "append"
                    and isinstance(child.func.value, ast.Attribute)
                    and isinstance(child.func.value.value, ast.Name)
                    and child.func.value.value.id == "self"
                    and len(child.args) == 1
                    and isinstance(child.args[0], ast.Call)
                ):
                    # self.xs.append(Ctor(...)) -> container-of-Ctor.
                    element = render_chain(child.args[0].func)
                    if element is not None:
                        info.attr_types.setdefault(
                            child.func.value.attr, ("container", element)
                        )
        self.summary.classes[node.name] = info
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(statement, prefix="", class_name=node.name)

    @staticmethod
    def _set_attr_type(info: ClassSummary, attr: str, kind: str, text: str) -> None:
        # First evidence wins, except concrete type evidence (a
        # constructor/factory/container) beats a bare-parameter binding
        # -- the common ``x if x is not None else Ctor(...)`` default
        # pattern should resolve to the constructor branch.
        existing = info.attr_types.get(attr)
        if existing is None or (existing[0] == "param" and kind != "param"):
            info.attr_types[attr] = (kind, text)

    def _record_attr_type(
        self, info: ClassSummary, attr: str, value: ast.AST, params: Set[str]
    ) -> None:
        if isinstance(value, ast.IfExp):
            # self.x = Ctor(...) if cond else None -- take either branch.
            self._record_attr_type(info, attr, value.body, params)
            self._record_attr_type(info, attr, value.orelse, params)
            return
        if isinstance(value, ast.Name):
            if value.id in params and value.id != "self":
                self._set_attr_type(info, attr, "param", value.id)
            return
        if isinstance(value, ast.Call):
            chain = render_chain(value.func)
            if chain is None:
                return
            # Heuristic: capitalized final segment is a constructor.
            final = chain.rsplit(".", 1)[-1]
            kind = "instance" if final[:1].isupper() else "factory"
            self._set_attr_type(info, attr, kind, chain)
            return
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            elements = {
                render_chain(e.func)
                for e in value.elts
                if isinstance(e, ast.Call) and render_chain(e.func)
            }
            if len(elements) == 1:
                element = elements.pop()
                if element is not None:
                    self._set_attr_type(info, attr, "container", element)
            return
        if isinstance(value, ast.Dict):
            elements = {
                render_chain(v.func)
                for v in value.values
                if isinstance(v, ast.Call) and render_chain(v.func)
            }
            if len(elements) == 1 and len(value.values) > 0:
                element = elements.pop()
                if element is not None:
                    self._set_attr_type(info, attr, "container", element)
            return
        comp_elt: Optional[ast.AST] = None
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_elt = value.elt
        elif isinstance(value, ast.DictComp):
            comp_elt = value.value
        if isinstance(comp_elt, ast.Call):
            chain = render_chain(comp_elt.func)
            if chain is not None:
                self._set_attr_type(info, attr, "container", chain)

    def _record_group_attr(
        self,
        info: ClassSummary,
        attr: str,
        value: ast.AST,
        params: Set[str],
        lineno: int,
    ) -> None:
        """Track StatGroup-valued attributes and whether the group may be
        injected by the caller (``stats if stats is not None else ...``)."""
        creates = any(
            isinstance(child, ast.Call) and render_chain(child.func) in ("StatGroup",)
            for child in ast.walk(value)
        )
        child_of = any(
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "child"
            for child in ast.walk(value)
        )
        if not creates and not child_of:
            return

        def param_outside_ctor(node: ast.AST) -> bool:
            # A parameter *inside* StatGroup(...) arguments is just the
            # group's label; only a param at a value position means the
            # group object itself can be caller-supplied.
            if isinstance(node, ast.Call) and render_chain(node.func) == "StatGroup":
                return False
            if (
                isinstance(node, ast.Name)
                and node.id in params
                and node.id != "self"
            ):
                return True
            return any(param_outside_ctor(c) for c in ast.iter_child_nodes(node))

        injected = child_of or param_outside_ctor(value)
        previous, first_line = info.group_attrs.get(attr, (False, lineno))
        info.group_attrs[attr] = (previous or injected, first_line)

    # -- functions -----------------------------------------------------

    def _extract_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_name: str,
    ) -> None:
        if prefix:
            qualname = "%s.<locals>.%s" % (prefix, node.name)
            nested = True
        elif class_name:
            qualname = "%s.%s" % (class_name, node.name)
            nested = False
        else:
            qualname = node.name
            nested = False
        self._extract_function_like(
            node.name,
            qualname,
            class_name,
            node.lineno,
            nested,
            _function_params(node),
            list(ast.iter_child_nodes(node)),
        )
        # Recurse into nested functions.
        for child in _direct_children(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(child, prefix=qualname, class_name=class_name)

    def _extract_function_like(
        self,
        name: str,
        qualname: str,
        class_name: str,
        lineno: int,
        nested: bool,
        params: List[str],
        body: List[ast.AST],
    ) -> None:
        info = FunctionSummary(
            name=name,
            qualname=qualname,
            class_name=class_name,
            lineno=lineno,
            nested=nested,
            params=params,
        )
        nodes: List[ast.AST] = []
        for statement in body:
            nodes.append(statement)
            nodes.extend(_direct_children(statement))

        declared_global: Set[str] = set()
        set_locals: Set[str] = set()
        rebound: Set[str] = set()
        for child in nodes:
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(child.value, set()):
                        set_locals.add(target.id)
                    else:
                        rebound.add(target.id)
        set_locals -= rebound

        for child in nodes:
            self._extract_statement(info, child, declared_global, set_locals)

        self.summary.functions[qualname] = info

    def _extract_statement(
        self,
        info: FunctionSummary,
        child: ast.AST,
        declared_global: Set[str],
        set_locals: Set[str],
    ) -> None:
        summary = self.summary
        if isinstance(child, ast.Global):
            declared_global.update(child.names)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.local_functions[child.name] = child.lineno
        elif isinstance(child, ast.Return) and child.value is not None:
            info.returns.merge(scan_expression(child.value))
        elif isinstance(child, ast.Raise):
            self._extract_raise(info, child)
        elif isinstance(child, ast.Assign) and len(child.targets) == 1:
            self._extract_assign(info, child, declared_global)
        elif isinstance(child, ast.AugAssign):
            self._extract_augassign(info, child, declared_global)
        elif isinstance(child, ast.Call):
            self._extract_call(info, child)
        elif isinstance(child, ast.Attribute):
            chain = render_chain(child)
            if chain is not None:
                base = chain.split(".", 1)[0]
                resolved = summary.imports.get(base)
                if resolved is not None:
                    qualified = chain.replace(base, resolved, 1)
                    kind = SPECIAL_CHAINS.get(qualified)
                    if kind is not None:
                        info.facts.append(Fact(kind, child.lineno, qualified))
        if isinstance(child, ast.For) and isinstance(child.target, ast.Name):
            iter_chain = render_chain(child.iter)
            if iter_chain is not None:
                info.local_iters.setdefault(child.target.id, iter_chain)
        elif isinstance(
            child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in child.generators:
                if isinstance(generator.target, ast.Name):
                    iter_chain = render_chain(generator.iter)
                    if iter_chain is not None:
                        info.local_iters.setdefault(generator.target.id, iter_chain)
        for iter_expr in _iter_exprs(child):
            if _is_set_expr(iter_expr, set_locals):
                info.facts.append(
                    Fact(
                        "set-iteration",
                        getattr(iter_expr, "lineno", getattr(child, "lineno", 1)),
                        "iteration over an unordered set",
                    )
                )

    def _extract_raise(self, info: FunctionSummary, node: ast.Raise) -> None:
        if not isinstance(node.exc, ast.Call):
            return
        chain = render_chain(node.exc.func)
        if chain is None:
            return
        has_context = any(keyword.arg == "context" for keyword in node.exc.keywords)
        info.raises.append(RaiseSite(exc=chain, has_context=has_context, line=node.lineno))

    def _extract_assign(
        self, info: FunctionSummary, node: ast.Assign, declared_global: Set[str]
    ) -> None:
        target = node.targets[0]
        value = node.value
        # global-write facts.
        if isinstance(target, ast.Name) and target.id in declared_global:
            info.facts.append(
                Fact("global-write", node.lineno, "assignment to global %r" % target.id)
            )
        self._flag_module_state_write(info, target, node.lineno)
        # local bindings for resolution.
        if isinstance(target, ast.Name):
            if isinstance(value, ast.Lambda):
                info.local_lambdas[target.id] = node.lineno
            else:
                candidates = [value]
                if isinstance(value, ast.IfExp):
                    candidates = [value.body, value.orelse]
                for candidate in candidates:
                    if not isinstance(candidate, ast.Call):
                        continue
                    chain = render_chain(candidate.func)
                    if chain is not None and chain.rsplit(".", 1)[-1][:1].isupper():
                        bucket = info.local_classes.setdefault(target.id, [])
                        if chain not in bucket:
                            bucket.append(chain)
        # stat bindings: <target> = group.counter("name").
        if isinstance(value, ast.Call):
            creation = self._stat_creation_call(value)
            if creation is not None:
                stat, kind = creation
                self.summary.stat_creations.append(
                    StatSite(stat, kind, info.class_name, node.lineno)
                )
                target_chain = render_chain(target)
                if target_chain is not None:
                    self._stat_bindings.setdefault(target_chain, []).append(stat)
        elif isinstance(value, ast.Dict):
            target_chain = render_chain(target)
            for dict_value in value.values:
                if isinstance(dict_value, ast.Call):
                    creation = self._stat_creation_call(dict_value)
                    if creation is not None:
                        stat, kind = creation
                        self.summary.stat_creations.append(
                            StatSite(stat, kind, info.class_name, node.lineno)
                        )
                        if target_chain is not None:
                            self._stat_bindings.setdefault(
                                target_chain + "[]", []
                            ).append(stat)
        # writes to a bound counter's .value: self._hits.value = n.
        if isinstance(target, ast.Attribute) and target.attr == "value":
            bound_chain = render_chain(target.value)
            if bound_chain is not None:
                self._mark_binding_incremented(info, bound_chain)

    def _extract_augassign(
        self, info: FunctionSummary, node: ast.AugAssign, declared_global: Set[str]
    ) -> None:
        target = node.target
        if isinstance(target, ast.Name) and target.id in declared_global:
            info.facts.append(
                Fact(
                    "global-write",
                    node.lineno,
                    "augmented assignment to global %r" % target.id,
                )
            )
        self._flag_module_state_write(info, target, node.lineno)
        if isinstance(target, ast.Attribute) and target.attr == "value":
            bound_chain = render_chain(target.value)
            if bound_chain is not None:
                self._mark_binding_incremented(info, bound_chain)

    def _flag_module_state_write(
        self, info: FunctionSummary, target: ast.AST, lineno: int
    ) -> None:
        """Subscript/attribute writes through a module-level binding."""
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        base: ast.AST = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        if base.id in self.summary.module_mutables or (
            base.id in self._module_level_names
            and base.id in self.summary.classes
        ):
            info.facts.append(
                Fact(
                    "global-write",
                    lineno,
                    "write through module-level state %r" % base.id,
                )
            )

    def _mark_binding_incremented(self, info: FunctionSummary, chain: str) -> None:
        stats = self._stat_bindings.get(chain)
        if stats:
            for stat in stats:
                self._stat_incremented.add(stat)
                self.summary.class_increments.setdefault(
                    info.class_name or "<module>", info.lineno
                )

    def _extract_call(self, info: FunctionSummary, node: ast.Call) -> None:
        summary = self.summary
        chain = render_chain(node.func)
        if chain is None:
            return
        line = node.lineno
        args = [describe_value(a) for a in node.args]
        kwargs = {
            keyword.arg: describe_value(keyword.value)
            for keyword in node.keywords
            if keyword.arg is not None
        }
        info.calls.append(CallSite(callee=chain, line=line, args=args, kwargs=kwargs))

        # Impurity facts from the import map.
        base = chain.split(".", 1)[0]
        resolved_base = summary.imports.get(base)
        if resolved_base is not None:
            qualified = chain.replace(base, resolved_base, 1)
            root = qualified.split(".", 1)[0]
            if root in CLOCK_MODULES:
                info.facts.append(Fact("clock", line, "call to %s()" % qualified))
            elif root in ENTROPY_MODULES:
                info.facts.append(Fact("random", line, "call to %s()" % qualified))
            else:
                kind = SPECIAL_CALLS.get(qualified)
                if kind is not None:
                    info.facts.append(Fact(kind, line, "call to %s()" % qualified))

        # Worker spawn sites: <ctx>.Process(target=..., args=...).
        if chain.rsplit(".", 1)[-1] == "Process":
            target_desc = kwargs.get("target")
            args_scan: Optional[ExprScan] = None
            for keyword in node.keywords:
                if keyword.arg == "args":
                    args_scan = scan_expression(keyword.value)
            info.spawns.append(SpawnSite(line=line, target=target_desc, args_scan=args_scan))

        # Mutating method calls on module-level state.
        if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATOR_METHODS:
            receiver: ast.AST = node.func.value
            while isinstance(receiver, (ast.Subscript, ast.Attribute)):
                receiver = receiver.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in summary.module_mutables
            ):
                info.facts.append(
                    Fact(
                        "global-write",
                        line,
                        "%s() on module-level state %r"
                        % (node.func.attr, receiver.id),
                    )
                )

        # Stat creation / immediate increments.
        creation = self._stat_creation_call(node)
        if creation is not None:
            stat, kind = creation
            summary.stat_creations.append(
                StatSite(stat, kind, info.class_name, line)
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("add", "record")
        ):
            inner = node.func.value
            if isinstance(inner, ast.Call):
                inner_creation = self._stat_creation_call(inner)
                if inner_creation is not None:
                    self._stat_incremented.add(inner_creation[0])
                    summary.class_increments.setdefault(
                        info.class_name or "<module>", line
                    )
            else:
                bound_chain = render_chain(inner)
                if bound_chain is not None:
                    self._mark_binding_incremented(info, bound_chain)

        # Metrics registrations.
        final = chain.rsplit(".", 1)[-1]
        if final in ("register", "register_all") and node.args:
            summary.registrations.append(
                Registration(
                    kind=final,
                    arg=describe_value(node.args[0]),
                    line=line,
                    class_name=info.class_name,
                    func=info.qualname,
                )
            )


def extract_summary(module: Module) -> ModuleSummary:
    """Extract the whole-program summary for one parsed module."""
    return _Extractor(module).run()
