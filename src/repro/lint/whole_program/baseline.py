"""Staged-adoption baseline for whole-program lint findings.

A baseline file records *known* findings so a tree can adopt a new rule
before every violation is fixed: baselined findings are filtered from
the report, anything new still fails.  The goal state -- and the state
this repo ships in -- is an **empty** baseline; CI asserts that.

Format (JSON, stable ordering so diffs are reviewable)::

    {
      "version": 1,
      "tool": "simlint",
      "entries": [
        {"rule": "SL013", "path": "src/repro/x.py",
         "fingerprint": "9f2a...", "message": "..."}
      ]
    }

The fingerprint is content-addressed (rule | path | message), not
line-addressed, so unrelated edits above a baselined finding do not
invalidate it, while any change to the finding itself does.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.lint.base import Finding

BASELINE_VERSION = 1


class BaselineError(Exception):
    """An unreadable or malformed baseline file.

    The CLI maps this to exit code 2 (usage error) with the message --
    a broken baseline must never silently un-suppress or suppress
    findings."""


def finding_fingerprint(finding: Finding) -> str:
    """Stable content hash of one finding (line numbers excluded)."""
    payload = "%s|%s|%s" % (finding.rule_id, finding.path, finding.message)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """An in-memory baseline: a set of finding fingerprints."""

    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return finding_fingerprint(finding) in self.entries

    def filter(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """``(kept, suppressed_count)`` after removing baselined findings."""
        kept = [f for f in findings if not self.matches(f)]
        return kept, len(findings) - len(kept)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fingerprint = finding_fingerprint(finding)
            baseline.entries[fingerprint] = {
                "rule": finding.rule_id,
                "path": finding.path,
                "fingerprint": fingerprint,
                "message": finding.message,
            }
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; raise :class:`BaselineError` with an
        actionable message on any defect."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise BaselineError(
                "cannot read baseline file %s: %s (pass --write-baseline to "
                "create one, or drop --baseline)" % (path, exc)
            ) from exc
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise BaselineError(
                "baseline file %s is not valid JSON: %s (regenerate it with "
                "--write-baseline)" % (path, exc)
            ) from exc
        if not isinstance(data, dict) or data.get("tool") != "simlint":
            raise BaselineError(
                "baseline file %s is not a simlint baseline (expected a JSON "
                "object with tool='simlint'); regenerate it with "
                "--write-baseline" % path
            )
        if data.get("version") != BASELINE_VERSION:
            raise BaselineError(
                "baseline file %s has unsupported version %r (this simlint "
                "writes version %d); regenerate it with --write-baseline"
                % (path, data.get("version"), BASELINE_VERSION)
            )
        raw_entries = data.get("entries")
        if not isinstance(raw_entries, list):
            raise BaselineError(
                "baseline file %s: 'entries' must be a list; regenerate it "
                "with --write-baseline" % path
            )
        baseline = cls()
        for index, entry in enumerate(raw_entries):
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise BaselineError(
                    "baseline file %s: entry %d is missing a 'fingerprint'; "
                    "regenerate it with --write-baseline" % (path, index)
                )
            fingerprint = str(entry["fingerprint"])
            baseline.entries[fingerprint] = {
                "rule": str(entry.get("rule", "")),
                "path": str(entry.get("path", "")),
                "fingerprint": fingerprint,
                "message": str(entry.get("message", "")),
            }
        return baseline

    def dump(self, path: Path) -> None:
        data: Dict[str, Any] = {
            "version": BASELINE_VERSION,
            "tool": "simlint",
            "entries": sorted(
                self.entries.values(),
                key=lambda e: (e["rule"], e["path"], e["fingerprint"]),
            ),
        }
        path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
