"""Interprocedural rules SL010-SL014.

Each rule is a normal :class:`repro.lint.base.Rule` implementing
``check_project``, so the v1 engine, pragma suppression, per-file
ignores, and renderers all apply unchanged.  The expensive part -- the
summary extraction and call-graph fixpoint -- runs once per module set
and is shared by all five rules through :class:`_AnalysisProvider`.

These rules live in their own registry (``WHOLE_PROGRAM_RULES`` via
:func:`build_whole_program_rules`), not ``ALL_RULES``: single-file runs
keep v1 semantics, ``repro lint --whole-program`` adds this set.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.base import Finding, Module, Rule
from repro.lint.whole_program.cache import SummaryCache
from repro.lint.whole_program.graph import (
    LAMBDA_TARGET,
    ProjectIndex,
    Reachability,
)
from repro.lint.whole_program.summaries import (
    ModuleSummary,
    SpawnSite,
    ValueDesc,
    extract_summary,
)

#: Module prefixes whose impurity is sanctioned for SL012: observability
#: provenance (RunManifest wall-clock timings are excluded from
#: bit-identity comparisons) and the deterministic-RNG gateway.
PURITY_ALLOWLIST = ("repro.obs.", "repro.common.rng")

#: The cell-purity roots (SL012).
CELL_ROOT_NAMES = ("simulate_cell",)

#: Executor entry points for SL014 (beyond everything defined in the
#: ``repro.exec`` package itself).  ``_pool_worker`` is the persistent
#: pool-worker main loop -- the spawn site every pooled cell runs under.
EXECUTOR_ROOT_NAMES = (
    "run_cells",
    "execute_resilient",
    "execute_pooled",
    "simulate_cell",
    "_pool_worker",
)

#: Fact kinds SL012 reports, with readable labels.
PURITY_FACTS = {
    "clock": "reads the wall clock",
    "env": "reads environment variables",
    "cwd": "reads the working directory",
    "random": "draws host entropy",
    "set-iteration": "iterates an unordered set",
}

_MAX_CHAIN_HOPS = 5


class WholeProgramAnalysis:
    """Summaries + project index for one module set (built once)."""

    def __init__(
        self, modules: Sequence[Module], cache_path: Optional[Path] = None
    ) -> None:
        self.modules = list(modules)
        self.cache = SummaryCache(cache_path)
        summaries: Dict[str, ModuleSummary] = {}
        for module in modules:
            summary = self.cache.get(module.path, module.source)
            if summary is None:
                summary = extract_summary(module)
                self.cache.put(module.path, module.source, summary)
            name = summary.name
            while name in summaries:  # fixture stem collisions
                name += "_"
            summaries[name] = summary
        self.cache.save()
        self.summaries = summaries
        self.index = ProjectIndex(summaries)
        self.index.analyze()

    # -- shared derived views ------------------------------------------

    def spawn_sites(self) -> List[Tuple[str, SpawnSite]]:
        sites: List[Tuple[str, SpawnSite]] = []
        for fid, (_, fn) in sorted(self.index.functions.items()):
            for spawn in fn.spawns:
                sites.append((fid, spawn))
        return sites

    def worker_roots(self) -> List[str]:
        """Function ids resolved as ``Process(target=...)`` entry points."""
        roots: Set[str] = set()
        for fid, spawn in self.spawn_sites():
            if spawn.target is None:
                continue
            for target in self.index.callable_targets(fid, spawn.target):
                if target != LAMBDA_TARGET:
                    roots.add(target)
        return sorted(roots)

    def describe_chain(self, reach: Reachability, fid: str) -> str:
        chain = [self.index.describe(hop) for hop in reach.chain(fid)]
        if len(chain) > _MAX_CHAIN_HOPS:
            chain = chain[:2] + ["..."] + chain[-2:]
        return " -> ".join(chain)

    def module_path(self, module_name: str) -> str:
        summary = self.summaries.get(module_name)
        return summary.path if summary is not None else module_name


class _AnalysisProvider:
    """Builds one :class:`WholeProgramAnalysis` per module set; the five
    rules hold the same provider so the graph is computed once."""

    def __init__(self, cache_path: Optional[Path] = None) -> None:
        self.cache_path = cache_path
        self._key: Optional[Tuple[Tuple[str, str], ...]] = None
        self._analysis: Optional[WholeProgramAnalysis] = None

    def get(self, modules: Sequence[Module]) -> WholeProgramAnalysis:
        key = tuple(
            (m.path, hashlib.sha256(m.source.encode("utf-8")).hexdigest()[:16])
            for m in modules
        )
        if self._analysis is None or key != self._key:
            self._analysis = WholeProgramAnalysis(modules, self.cache_path)
            self._key = key
        return self._analysis


class _WholeProgramRule(Rule):
    """Base: findings are built from (path, line) resolved through the
    graph, not from AST nodes."""

    def __init__(self, provider: _AnalysisProvider) -> None:
        self.provider = provider

    def make_finding(
        self, path: str, line: int, message: str, fixit: Optional[str] = None
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=0,
            message=message,
            fixit=fixit if fixit is not None else self.fixit,
        )


class WorkerBoundaryPicklability(_WholeProgramRule):
    """SL010: everything crossing ``Process(target=..., args=...)`` must
    be picklable *by construction*."""

    rule_id = "SL010"
    name = "worker-boundary-picklability"
    severity = "error"
    rationale = (
        "objects crossing the multiprocessing boundary are pickled; "
        "lambdas, closures, and open handles fail at spawn time (or "
        "silently fork unshared module state), so the boundary must be "
        "provably picklable from the call graph alone"
    )
    fixit = (
        "pass a module-level function as target= and plain data "
        "(dataclasses, primitives) in args=; hydrate handles inside the "
        "worker"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        analysis = self.provider.get(modules)
        index = analysis.index
        for fid, spawn in analysis.spawn_sites():
            mod, fn = index.functions[fid]
            path = analysis.module_path(mod)
            if spawn.target is None:
                yield self.make_finding(
                    path,
                    spawn.line,
                    "Process(...) without a resolvable target=: the worker "
                    "entry point cannot be proven picklable",
                )
            elif spawn.target.kind == "lambda":
                yield self.make_finding(
                    path,
                    spawn.line,
                    "lambda passed as Process target=: lambdas cannot be "
                    "pickled across the worker boundary",
                )
            else:
                targets = index.callable_targets(fid, spawn.target)
                if not targets:
                    yield self.make_finding(
                        path,
                        spawn.line,
                        "Process target %r does not resolve to a first-party "
                        "function: picklability cannot be proven by "
                        "construction" % (spawn.target.text,),
                    )
                for target in sorted(targets):
                    if target == LAMBDA_TARGET:
                        yield self.make_finding(
                            path,
                            spawn.line,
                            "Process target %r binds to a lambda: lambdas "
                            "cannot be pickled across the worker boundary"
                            % (spawn.target.text,),
                        )
                    elif ".<locals>." in target:
                        yield self.make_finding(
                            path,
                            spawn.line,
                            "Process target %r binds to nested function %s: "
                            "closures cannot be pickled across the worker "
                            "boundary"
                            % (spawn.target.text, index.describe(target)),
                        )
            yield from self._check_args(analysis, fid, spawn, path)

    def _check_args(
        self,
        analysis: WholeProgramAnalysis,
        fid: str,
        spawn: SpawnSite,
        path: str,
    ) -> Iterator[Finding]:
        index = analysis.index
        scan = spawn.args_scan
        if scan is None:
            return
        entry = index.functions[fid]
        fn = entry[1]
        for line in scan.lambda_lines:
            yield self.make_finding(
                path,
                line,
                "lambda inside Process args=: lambdas cannot be pickled "
                "across the worker boundary",
            )
        for line in scan.open_lines:
            yield self.make_finding(
                path,
                line,
                "open() handle inside Process args=: file objects cannot "
                "be pickled across the worker boundary",
            )
        mod_summary = analysis.summaries.get(entry[0])
        for name in sorted(set(scan.names)):
            if name in fn.local_lambdas:
                yield self.make_finding(
                    path,
                    spawn.line,
                    "local lambda %r flows into Process args=: lambdas "
                    "cannot be pickled across the worker boundary" % name,
                )
            elif name in fn.local_functions:
                yield self.make_finding(
                    path,
                    spawn.line,
                    "nested function %r flows into Process args=: closures "
                    "cannot be pickled across the worker boundary" % name,
                )
            elif mod_summary is not None and name in mod_summary.module_mutables:
                yield self.make_finding(
                    path,
                    spawn.line,
                    "module-level mutable %r flows into Process args=: "
                    "workers get an unshared copy, so mutations diverge "
                    "silently" % name,
                )
        # args built by a factory: audit the factory's return expression.
        for call_chain in sorted(set(scan.calls)):
            for target in sorted(
                index.callable_targets(
                    fid, _name_desc(call_chain)
                )
            ):
                if target == LAMBDA_TARGET:
                    yield self.make_finding(
                        path,
                        spawn.line,
                        "Process args= built by a lambda %r: the produced "
                        "values cannot be audited for picklability"
                        % call_chain,
                    )
                    continue
                factory_entry = index.functions.get(target)
                if factory_entry is None:
                    continue
                factory_mod, factory_fn = factory_entry
                factory_path = analysis.module_path(factory_mod)
                for line in factory_fn.returns.lambda_lines:
                    yield self.make_finding(
                        factory_path,
                        line,
                        "lambda in the return value of %s, which builds "
                        "Process args=: lambdas cannot be pickled across "
                        "the worker boundary" % index.describe(target),
                    )
                for line in factory_fn.returns.open_lines:
                    yield self.make_finding(
                        factory_path,
                        line,
                        "open() handle in the return value of %s, which "
                        "builds Process args=: file objects cannot be "
                        "pickled across the worker boundary"
                        % index.describe(target),
                    )
                for name in sorted(set(factory_fn.returns.names)):
                    if name in factory_fn.local_lambdas or (
                        name in factory_fn.local_functions
                    ):
                        yield self.make_finding(
                            factory_path,
                            factory_fn.lineno,
                            "%s returns callable %r into Process args=: "
                            "closures/lambdas cannot be pickled across the "
                            "worker boundary" % (index.describe(target), name),
                        )


class WorkerSharedStateMutation(_WholeProgramRule):
    """SL011: nothing reachable from a worker entry point may mutate
    shared module-level state."""

    rule_id = "SL011"
    name = "worker-shared-state-mutation"
    severity = "error"
    rationale = (
        "worker processes get copies of module state; a mutation that "
        "looks shared is silently process-local, so results differ "
        "between inline and isolated execution"
    )
    fixit = (
        "return the value from the worker (or send it over the result "
        "channel) instead of mutating module-level state"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        analysis = self.provider.get(modules)
        index = analysis.index
        roots = analysis.worker_roots()
        if not roots:
            return
        reach = index.reachable_from(roots)
        for fid in sorted(reach.reached):
            mod, fn = index.functions[fid]
            path = analysis.module_path(mod)
            for fact in fn.facts:
                if fact.kind != "global-write":
                    continue
                yield self.make_finding(
                    path,
                    fact.line,
                    "%s in %s, reachable from worker entry point (%s)"
                    % (
                        fact.detail,
                        index.describe(fid),
                        analysis.describe_chain(reach, fid),
                    ),
                )


class InterproceduralCellPurity(_WholeProgramRule):
    """SL012: nothing reachable from ``simulate_cell`` may read ambient
    host state (SL001 lifted from per-file to whole-program)."""

    rule_id = "SL012"
    name = "interprocedural-cell-purity"
    severity = "error"
    rationale = (
        "simulate_cell is the bit-identity root: any wall-clock, env, "
        "cwd, entropy, or set-order read anywhere below it makes cached "
        "and recomputed results diverge"
    )
    fixit = (
        "thread the value through SimCell/SystemConfig, or use the "
        "seeded repro.common.rng gateway; sort sets before iterating"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        analysis = self.provider.get(modules)
        index = analysis.index
        roots: List[str] = []
        for name in CELL_ROOT_NAMES:
            roots.extend(index.functions_named(name))
        if not roots:
            return
        reach = index.reachable_from(roots)
        for fid in sorted(reach.reached):
            mod, fn = index.functions[fid]
            if any(
                mod == prefix.rstrip(".") or mod.startswith(prefix)
                for prefix in PURITY_ALLOWLIST
            ):
                continue
            path = analysis.module_path(mod)
            for fact in fn.facts:
                label = PURITY_FACTS.get(fact.kind)
                if label is None:
                    continue
                yield self.make_finding(
                    path,
                    fact.line,
                    "%s %s (%s), reachable from simulate_cell (%s)"
                    % (
                        index.describe(fid),
                        label,
                        fact.detail,
                        analysis.describe_chain(reach, fid),
                    ),
                )


class DeadStatDetection(_WholeProgramRule):
    """SL013: stats created but never incremented, and incremented stats
    whose StatGroup never reaches the exported metrics namespace."""

    rule_id = "SL013"
    name = "dead-stat-detection"
    severity = "warning"
    rationale = (
        "a stat that is never incremented is dead weight in every "
        "payload; a stat that is incremented but whose group is never "
        "registered silently vanishes from results -- both mean the "
        "telemetry contract and the code disagree"
    )
    fixit = (
        "increment the stat on its event path, or register the owning "
        "StatGroup with the MetricsRegistry (and bump PAYLOAD_SCHEMA "
        "when the exported vocabulary changes); delete stats that lost "
        "their purpose"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        analysis = self.provider.get(modules)
        index = analysis.index
        incremented: Set[str] = set()
        for summary in analysis.summaries.values():
            incremented.update(summary.stat_increments)
        instantiated_names = {
            cid.split(":", 1)[1] for cid in index.instantiated
        }

        # (a) created, never incremented anywhere in the project.
        for mod_name, summary in sorted(analysis.summaries.items()):
            for site in summary.stat_creations:
                if site.stat in incremented:
                    continue
                if site.class_name and site.class_name not in instantiated_names:
                    continue  # never constructed in this tree: not live
                yield self.make_finding(
                    summary.path,
                    site.line,
                    "stat %r (%s) is created but never incremented anywhere "
                    "in the project" % (site.stat, site.kind),
                )

        # (b) incremented, but the owning group never reaches a registry.
        exported, wildcard = self._exported_classes(analysis)
        if wildcard:
            return  # an unresolvable registration may export anything
        creating_classes = set()
        for mod_name, summary in analysis.summaries.items():
            for site in summary.stat_creations:
                if site.class_name:
                    creating_classes.add("%s:%s" % (mod_name, site.class_name))
        for mod_name, summary in sorted(analysis.summaries.items()):
            for cls_name, cls in sorted(summary.classes.items()):
                if cls_name not in instantiated_names:
                    continue
                cid = "%s:%s" % (mod_name, cls_name)
                # Stats may be created by base-class methods (schedulers).
                creates_stats = any(
                    klass in creating_classes
                    for klass in index.class_mro(cid)
                )
                if not creates_stats:
                    continue
                own_groups = [
                    (attr, line)
                    for attr, (injected, line) in sorted(cls.group_attrs.items())
                    if not injected
                ]
                if not own_groups:
                    continue  # injected groups export via their parent
                if cid in exported:
                    continue
                attr, line = own_groups[0]
                yield self.make_finding(
                    summary.path,
                    line,
                    "StatGroup %r of %s holds stats that never reach the "
                    "exported metrics namespace: no MetricsRegistry "
                    "registration path covers it" % (attr, cls_name),
                )

    def _exported_classes(
        self, analysis: WholeProgramAnalysis
    ) -> Tuple[Set[str], bool]:
        """Classes whose groups are registered; ``wildcard`` True when a
        registration could not be resolved (rule degrades to no-op)."""
        index = analysis.index
        exported: Set[str] = set()
        wildcard = False
        for mod_name, summary in analysis.summaries.items():
            for reg in summary.registrations:
                fid = "%s:%s" % (mod_name, reg.func)
                reg_fn = summary.functions.get(reg.func)
                if (
                    reg.arg.kind == "name"
                    and reg_fn is not None
                    and (
                        reg.arg.text in reg_fn.params
                        or reg_fn.local_iters.get(reg.arg.text) in reg_fn.params
                    )
                ):
                    # Pass-through of the enclosing function's own
                    # parameter (or a loop over it) -- the registry's
                    # internals; the export is accounted at the concrete
                    # call site.
                    continue
                resolved_here = False
                if reg.arg.kind in ("attr", "name") and reg.arg.text:
                    chain = reg.arg.text
                    if "." in chain:
                        receiver, attr = chain.rsplit(".", 1)
                        for cid in index.chain_value_classes(fid, receiver):
                            if self._has_group_attr(analysis, cid, attr):
                                exported.add(cid)
                                resolved_here = True
                    else:
                        for cid in index.chain_value_classes(fid, chain):
                            exported.add(cid)
                            resolved_here = True
                elif reg.arg.kind == "call" and reg.arg.text:
                    receiver = reg.arg.text.rsplit(".", 1)[0]
                    if receiver != reg.arg.text:
                        for cid in index.chain_value_classes(fid, receiver):
                            exported.update(self._attr_closure(index, cid))
                            resolved_here = True
                if not resolved_here:
                    wildcard = True
        return exported, wildcard

    def _has_group_attr(
        self, analysis: WholeProgramAnalysis, cid: str, attr: str
    ) -> bool:
        for klass in analysis.index.class_mro(cid):
            mod = analysis.index.classes.get(klass)
            if mod is None:
                continue
            cls = analysis.summaries[mod].classes[klass.split(":", 1)[1]]
            if attr in cls.group_attrs:
                return True
        return False

    def _attr_closure(self, index: ProjectIndex, cid: str) -> Set[str]:
        """cid plus every class reachable through attribute types -- the
        conservative export set for ``register_all(x.stat_groups())``."""
        closure = {cid}
        queue = [cid]
        while queue:
            current = queue.pop()
            mod = index.classes.get(current)
            if mod is None:
                continue
            cls = index.summaries[mod].classes[current.split(":", 1)[1]]
            for attr in cls.attr_types:
                for nxt in index.attr_classes(current, attr):
                    if nxt not in closure:
                        closure.add(nxt)
                        queue.append(nxt)
        return closure


class ExceptionContextCompleteness(_WholeProgramRule):
    """SL014: ReproError raise sites reachable from the executor must
    pass a structured ``context`` dict."""

    rule_id = "SL014"
    name = "exception-context-completeness"
    severity = "warning"
    rationale = (
        "repro.verify's flight recorder and the resilience quarantine "
        "report serialize the context dict of every failure; a raise "
        "without context= produces an unactionable crash record"
    )
    fixit = (
        "pass context={...} with the identifying state (cell key, "
        "addresses, config fields) to the ReproError constructor"
    )

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        analysis = self.provider.get(modules)
        index = analysis.index
        error_classes = index.subclasses_of(("ReproError",))
        if not error_classes:
            return
        roots: List[str] = []
        for fid, (mod, _) in index.functions.items():
            if mod.startswith("repro.exec.") or mod == "repro.exec":
                roots.append(fid)
        for name in EXECUTOR_ROOT_NAMES:
            roots.extend(index.functions_named(name))
        if not roots:
            return
        reach = index.reachable_from(sorted(set(roots)))
        for fid in sorted(reach.reached):
            mod, fn = index.functions[fid]
            path = analysis.module_path(mod)
            for site in fn.raises:
                if site.has_context:
                    continue
                cid = index.resolve_class_chain(mod, site.exc)
                if cid is None or cid not in error_classes:
                    continue
                yield self.make_finding(
                    path,
                    site.line,
                    "raise %s(...) without context= in %s, reachable from "
                    "the executor (%s)"
                    % (
                        site.exc,
                        index.describe(fid),
                        analysis.describe_chain(reach, fid),
                    ),
                )


def _name_desc(chain: str) -> ValueDesc:
    if "." in chain or chain.endswith(("[]", "()")):
        return ValueDesc("attr", chain)
    return ValueDesc("name", chain)


#: Rule classes in ID order (the registry for docs/tests).
WHOLE_PROGRAM_RULE_CLASSES: Tuple[Type[_WholeProgramRule], ...] = (
    WorkerBoundaryPicklability,
    WorkerSharedStateMutation,
    InterproceduralCellPurity,
    DeadStatDetection,
    ExceptionContextCompleteness,
)


def build_whole_program_rules(
    cache_path: Optional[Path] = None,
) -> List[Rule]:
    """Instantiate SL010-SL014 sharing one analysis provider (the call
    graph is built once per module set, not once per rule)."""
    provider = _AnalysisProvider(cache_path)
    return [cls(provider) for cls in WHOLE_PROGRAM_RULE_CLASSES]
