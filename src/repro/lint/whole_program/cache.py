"""Content-hash summary cache: warm whole-program runs are incremental.

Summary extraction walks every AST in the project; on a warm run only
changed files should pay that cost.  The cache is one JSON file mapping
``path -> {sha, summary}`` where ``sha`` is the SHA-256 of the file
*content* (not mtime -- content hashing survives checkout churn and
clock skew).  A schema stamp invalidates every entry whenever the
summary format itself evolves.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.lint.whole_program.summaries import ModuleSummary

#: Bump whenever ModuleSummary's shape changes -- stale-format entries
#: must re-extract, never deserialize wrong.
CACHE_SCHEMA = 1


def content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Load-mutate-save cache of :class:`ModuleSummary` by content hash."""

    def __init__(self, path: Optional[Path]) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = None
            if (
                isinstance(data, dict)
                and data.get("schema") == CACHE_SCHEMA
                and isinstance(data.get("entries"), dict)
            ):
                self._entries = data["entries"]

    def get(self, path: str, source: str) -> Optional[ModuleSummary]:
        """The cached summary for *path* iff the content hash matches."""
        entry = self._entries.get(path)
        if entry is None or entry.get("sha") != content_sha(source):
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, path: str, source: str, summary: ModuleSummary) -> None:
        self._entries[path] = {
            "sha": content_sha(source),
            "summary": summary.to_dict(),
        }
        self._dirty = True

    def save(self) -> None:
        """Persist if backed by a file and anything changed."""
        if self.path is None or not self._dirty:
            return
        data = {"schema": CACHE_SCHEMA, "entries": self._entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(data), encoding="utf-8")
        self._dirty = False
