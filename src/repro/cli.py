"""Command-line interface: ``python -m repro <command>``.

Commands:

``list``
    Show the available workloads.
``run WORKLOAD``
    Simulate one workload and print the runtime/DRAM breakdowns
    (``--stats-json`` / ``--trace-events`` export the full metrics
    namespace and a ``chrome://tracing`` lifecycle trace).
``compare WORKLOAD``
    Run baseline vs. TEMPO on the same trace and print improvements.
``trace WORKLOAD -o FILE``
    Generate a trace file for later replay (see ``--trace`` on run).
``stats WORKLOAD``
    Simulate one workload and print (or export) every metric in the
    unified namespace: per-core TLB/MMU-cache/walker/cache structures,
    controller, DRAM banks, energy, and the run manifest.  ``--filter``
    narrows the dump with a glob over the dotted keys
    (``core0.tlb.*``, ``dram.bank*.busy_cycles``); a pattern without
    glob characters matches as a prefix.
``timeline WORKLOAD``
    Simulate one workload with per-unit busy/idle accounting and
    render ASCII utilization bars, phase timelines and the top-down
    translation/cache/DRAM/overlap bottleneck attribution
    (``docs/observability.md``).  ``--json`` / ``--csv`` export the
    same interval series; ``--interval`` sets the bucket width in
    cycles and ``--sample-interval`` the metric-snapshot cadence.
``experiment FIGURE``
    Run one of the paper-figure experiment drivers (fig01, fig04,
    fig10, fig11_left, fig11_right, fig12, fig13, fig14, fig15, fig16,
    fig17) and print its table.  ``--jobs N`` fans the driver's
    simulation cells across N worker processes; results are served from
    (and persisted to) a content-addressed cache unless ``--no-cache``.
    Sweeps are fault-tolerant (``docs/resilience.md``): failing cells
    retry up to ``--max-retries`` times, ``--cell-timeout`` kills hung
    workers, ``--resume`` continues an interrupted sweep from its
    checkpoint journal with zero re-simulation, ``--allow-partial``
    degrades exhausted cells to explicitly-missing results (exit code 3)
    instead of aborting, and ``--faults`` injects deterministic faults
    for testing.
``report -o FILE``
    Run every figure driver (and optionally the ablations) and write a
    markdown report with an embedded provenance manifest.  One executor
    is shared across all sections, so overlapping figures never
    simulate the same cell twice; ``--jobs`` / ``--no-cache`` /
    ``--cache-dir`` and the resilience flags (``--resume``,
    ``--max-retries``, ``--cell-timeout``, ``--allow-partial``,
    ``--faults``) work as for ``experiment``.  With ``--allow-partial``
    a degraded report carries a banner listing the missing cells and
    the run exits 3.
``serve``
    Run the sweep service: an asyncio HTTP API
    (``docs/service.md``) that owns one long-lived executor and
    content-addressed cache and serves many concurrent clients -- job
    submission, status polling, live telemetry streaming, and
    result/manifest retrieval.  ``--host``/``--port`` pick the bind
    address (``--port 0`` asks the OS for a free port, announced on
    stdout); ``--cache-dir`` locates the shared cache and the service's
    job journal; ``--jobs`` fans each sweep's cells across worker
    processes.  A server killed mid-sweep resumes its journaled jobs on
    restart with zero re-simulation.  Exits 0 on clean (signal)
    shutdown, 1 when serving fails (e.g. the port is taken), 2 on
    invalid options.
``verify``
    Run the differential/metamorphic oracle suite (``repro.verify``):
    fast-path vs event-engine equivalence, run-to-run determinism,
    TEMPO's replay-reduction metamorphic, trace-length monotonicity,
    and a full online-audit run.  ``--quick`` shrinks the runs for CI
    smoke use; exits 1 when any oracle fails.
``lint [PATHS...]``
    Run simlint, the AST-based invariant linter (default target:
    ``src/repro``): no nondeterminism in timing-critical packages,
    cache-key completeness, payload-schema coverage, stat registration,
    and the hygiene rules.  ``--format json`` for machine-readable
    output, ``--disable SLnnn`` to switch rules off, ``--list-rules``
    for the catalogue; exits 1 when findings remain.  Rules are
    documented in ``docs/static_analysis.md``.
"""

import argparse
import fnmatch
import os
import sys
from dataclasses import replace

from repro.common.config import default_system_config
from repro.verify.auditor import FULL_INTERVAL as _FULL_INTERVAL
from repro.obs import EventTracer, write_stats_csv, write_stats_json
from repro.obs.timeline import DEFAULT_INTERVAL as _TIMELINE_INTERVAL
from repro.sim.runner import (
    energy_fraction,
    run_baseline_and_tempo,
    run_workload,
    speedup_fraction,
)
from repro.sim.traceio import load_trace, save_trace
from repro.workloads.registry import (
    BIGDATA_WORKLOADS,
    EXTENSION_WORKLOADS,
    SMALL_WORKLOADS,
    make_trace,
)


def _build_config(args):
    config = default_system_config()
    overrides = {}
    if getattr(args, "row_policy", None):
        overrides["row_policy"] = replace(config.row_policy, policy=args.row_policy)
    if getattr(args, "scheduler", None):
        overrides["scheduler"] = replace(config.scheduler, policy=args.scheduler)
    if getattr(args, "imp", False):
        overrides["imp"] = replace(config.imp, enabled=True)
    if getattr(args, "memhog", None) is not None:
        overrides["vm"] = replace(config.vm, memhog_fraction=args.memhog)
    if overrides:
        config = config.copy_with(**overrides)
    if getattr(args, "no_tempo", False):
        config = config.with_tempo(False)
    config.validate()
    return config


def _invariant_mode(args):
    """The ``--check-invariants`` value, with ``off`` mapped to None so
    the simulator's zero-cost path stays literally ``audit is None``."""
    mode = getattr(args, "check_invariants", "off")
    return None if mode == "off" else mode


def _build_executor(args):
    """Executor for the experiment/report commands from their flags."""
    from repro.exec import (
        ExperimentExecutor,
        FaultSpec,
        HTTPBackend,
        ResiliencePolicy,
        ResultCache,
        default_cache_dir,
    )

    cache = None
    if not args.no_cache:
        remote = None
        if getattr(args, "cache_url", None):
            remote = HTTPBackend(args.cache_url)
        cache = ResultCache(args.cache_dir or default_cache_dir(), remote=remote)
    policy = ResiliencePolicy(
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        allow_partial=args.allow_partial,
    )
    faults = FaultSpec.parse(args.faults) if args.faults else None
    telemetry = None
    if getattr(args, "telemetry", None):
        from repro.exec import TelemetryLog

        telemetry = TelemetryLog(args.telemetry)
    return ExperimentExecutor(
        jobs=args.jobs,
        workers=args.workers,
        cache=cache,
        resilience=policy,
        faults=faults,
        resume=args.resume,
        check_invariants=_invariant_mode(args),
        telemetry=telemetry,
        kernel=getattr(args, "kernel", None),
    )


def _executor_exit_code(executor, out):
    """0 for a clean sweep, 3 when results are degraded (missing cells
    under ``--allow-partial``)."""
    if not executor.failed_cells:
        return 0
    out.write(
        "warning: degraded results -- %d cell(s) missing after retries\n"
        % len(executor.failed_cells)
    )
    return 3


def _filter_stats(stats, pattern):
    """Narrow a flat metrics dict with a glob over the dotted keys.

    A pattern without glob metacharacters keeps matching as a plain
    prefix (``--filter core0.tlb`` predates the glob support).
    """
    if any(ch in pattern for ch in "*?["):
        return {k: v for k, v in stats.items() if fnmatch.fnmatchcase(k, pattern)}
    return {k: v for k, v in stats.items() if k.startswith(pattern)}


def _resolve_workload(args):
    if getattr(args, "trace", None):
        return load_trace(args.trace)
    return args.workload


def _print_result(result, out):
    core = result.core
    out.write("workload:            %s\n" % core.workload_name)
    out.write("references:          %d\n" % core.references)
    out.write("cycles:              %d\n" % core.cycles)
    out.write("DRAM-PTW runtime:    %.1f%%\n" % (100 * core.runtime.fraction("ptw")))
    out.write("DRAM-replay runtime: %.1f%%\n" % (100 * core.runtime.fraction("replay")))
    out.write("DRAM-other runtime:  %.1f%%\n" % (100 * core.runtime.fraction("other")))
    out.write("leaf share of PTW:   %.1f%%\n" % (100 * core.dram_refs.leaf_fraction_of_ptw()))
    out.write("superpage coverage:  %.1f%%\n" % (100 * result.superpage_fraction))
    out.write("energy:              %.1f units\n" % result.energy_total)
    if core.replay_service.total:
        service = core.replay_service
        out.write(
            "replay service:      %.0f%% LLC / %.0f%% row buffer / %.0f%% unaided\n"
            % (
                100 * service.fraction("llc"),
                100 * service.fraction("row_buffer"),
                100 * service.fraction("unaided"),
            )
        )


def _cmd_list(args, out):
    out.write("big-data workloads (paper Sec. 5.1):\n")
    for workload in BIGDATA_WORKLOADS:
        out.write("  %-12s %s\n" % (workload.name, workload.description))
    out.write("small-footprint stand-ins:\n")
    for workload in SMALL_WORKLOADS:
        out.write("  %-20s %s\n" % (workload.name, workload.description))
    out.write("extensions:\n")
    for workload in EXTENSION_WORKLOADS:
        out.write("  %-12s %s\n" % (workload.name, workload.description))
    return 0


def _export_observability(result, tracer, args, out):
    """Write --stats-json / --trace-events artifacts when requested."""
    if getattr(args, "stats_json", None):
        written = write_stats_json(result.stats, args.stats_json)
        out.write("wrote %d metrics to %s\n" % (written, args.stats_json))
    if tracer is not None:
        written = tracer.write_chrome_trace(args.trace_events)
        out.write(
            "wrote %d trace events to %s (load in chrome://tracing)\n"
            % (written, args.trace_events)
        )


def _cmd_run(args, out):
    config = _build_config(args)
    tracer = EventTracer() if args.trace_events else None
    result = run_workload(
        _resolve_workload(args),
        config,
        length=args.length,
        seed=args.seed,
        tracer=tracer,
        check_invariants=_invariant_mode(args),
        kernel=args.kernel,
    )
    _print_result(result, out)
    _export_observability(result, tracer, args, out)
    return 0


def _cmd_stats(args, out):
    config = _build_config(args)
    tracer = EventTracer() if args.trace_events else None
    result = run_workload(
        _resolve_workload(args),
        config,
        length=args.length,
        seed=args.seed,
        tracer=tracer,
        check_invariants=_invariant_mode(args),
        kernel=args.kernel,
    )
    stats = result.stats
    if args.filter:
        stats = _filter_stats(stats, args.filter)
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, float):
            out.write("%s = %.6g\n" % (key, value))
        else:
            out.write("%s = %s\n" % (key, value))
    if args.csv:
        written = write_stats_csv(stats, args.csv)
        out.write("wrote %d metrics to %s\n" % (written, args.csv))
    _export_observability(result, tracer, args, out)
    return 0


def _cmd_timeline(args, out):
    from repro.obs import (
        TimelineRecorder,
        render_timeline,
        timeline_payload,
        write_timeline_csv,
        write_timeline_json,
    )

    config = _build_config(args)
    try:
        recorder = TimelineRecorder(
            interval=args.interval, sample_interval=args.sample_interval
        )
    except ValueError as exc:
        out.write("error: %s\n" % exc)
        return 2
    run_workload(
        _resolve_workload(args),
        config,
        length=args.length,
        seed=args.seed,
        check_invariants=_invariant_mode(args),
        timeline=recorder,
    )
    payload = timeline_payload(recorder)
    out.write(render_timeline(payload, width=args.width))
    if args.json:
        written = write_timeline_json(payload, args.json)
        out.write("wrote %d unit series to %s\n" % (written, args.json))
    if args.csv:
        written = write_timeline_csv(payload, args.csv)
        out.write("wrote %d timeline rows to %s\n" % (written, args.csv))
    return 0


def _cmd_compare(args, out):
    config = _build_config(args)
    baseline, tempo = run_baseline_and_tempo(
        _resolve_workload(args), config, length=args.length, seed=args.seed,
        kernel=getattr(args, "kernel", None),
    )
    out.write("baseline cycles: %d\n" % baseline.total_cycles)
    out.write("tempo cycles:    %d\n" % tempo.total_cycles)
    out.write("performance:     %+.1f%%\n" % (100 * speedup_fraction(baseline, tempo)))
    out.write("energy:          %+.1f%%\n" % (100 * energy_fraction(baseline, tempo)))
    return 0


def _cmd_trace(args, out):
    trace = make_trace(args.workload, length=args.length, seed=args.seed)
    written = save_trace(trace, args.output)
    out.write("wrote %d records to %s\n" % (written, args.output))
    return 0


def _cmd_experiment(args, out):
    from repro.analysis.experiments import (
        EXPERIMENT_DRIVERS,
        FIXED_WORKLOAD_FIGURES,
    )
    from repro.analysis.tables import render_experiment

    driver = EXPERIMENT_DRIVERS.get(args.figure)
    if driver is None:
        out.write(
            "unknown figure %r; choose from: %s\n"
            % (args.figure, ", ".join(sorted(EXPERIMENT_DRIVERS)))
        )
        return 2
    kwargs = {"length": args.length}
    if args.figure in FIXED_WORKLOAD_FIGURES:
        if args.workloads:
            out.write(
                "warning: %s uses a fixed workload set; ignoring --workloads %s\n"
                % (args.figure, " ".join(args.workloads))
            )
    elif args.workloads:
        kwargs["workloads"] = tuple(args.workloads)
    from repro.exec import CellExecutionError, SweepAborted

    try:
        executor = _build_executor(args)
    except ValueError as exc:
        out.write("error: %s\n" % exc)
        return 2
    try:
        result = driver(executor=executor, **kwargs)
    except (CellExecutionError, SweepAborted) as exc:
        out.write(executor.summary() + "\n")
        out.write("error: %s\n" % exc)
        return 1
    out.write(render_experiment(result))
    out.write("\n")
    out.write(executor.summary() + "\n")
    return _executor_exit_code(executor, out)


def _cmd_verify(args, out):
    from repro.verify import run_verification

    results = run_verification(
        out=lambda line: out.write(line + "\n"),
        quick=args.quick,
        length=args.length,
        seed=args.seed,
    )
    failed = [result for result in results if not result.passed]
    out.write(
        "%d/%d oracles passed\n" % (len(results) - len(failed), len(results))
    )
    return 1 if failed else 0


def _cmd_lint(args, out):
    from pathlib import Path

    from repro.lint import (
        ALL_RULES,
        LintConfig,
        lint_paths,
        load_pyproject_config,
        render_json,
        render_rules,
        render_text,
    )
    from repro.lint.sarif import render_sarif
    from repro.lint.whole_program import (
        Baseline,
        BaselineError,
        build_whole_program_rules,
    )

    # Whole-program analysis is the default for the project tree (bare
    # ``repro lint``); explicit paths opt in with --whole-program.
    whole_program = args.whole_program or not args.paths
    rules = list(ALL_RULES)
    if whole_program:
        cache_path = Path(args.summary_cache) if args.summary_cache else None
        rules.extend(build_whole_program_rules(cache_path))

    if args.list_rules:
        render_rules(out, rules=rules)
        return 0
    known = {rule.rule_id for rule in rules}
    unknown = [rule for rule in args.disable if rule not in known]
    if unknown:
        out.write(
            "unknown rule id(s): %s (known: %s)\n"
            % (", ".join(unknown), ", ".join(sorted(known)))
        )
        return 2
    paths = args.paths or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        out.write("no such path(s): %s\n" % ", ".join(missing))
        return 2

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except BaselineError as exc:
            out.write("error: %s\n" % exc)
            return 2

    config = load_pyproject_config(paths[0])
    if args.disable:
        config = LintConfig(
            disabled=set(config.disabled) | set(args.disable),
            per_file_ignores=config.per_file_ignores,
        )
    findings = lint_paths(paths, config=config, rules=rules)

    if args.write_baseline:
        Baseline.from_findings(findings).dump(Path(args.write_baseline))
        out.write(
            "wrote %d baseline entr%s to %s\n"
            % (
                len(findings),
                "y" if len(findings) == 1 else "ies",
                args.write_baseline,
            )
        )
        return 0

    suppressed = 0
    if baseline is not None:
        findings, suppressed = baseline.filter(findings)
    if args.format == "json":
        render_json(findings, out)
    elif args.format == "sarif":
        render_sarif(findings, out, rules=rules)
    else:
        render_text(findings, out)
        if suppressed:
            out.write("simlint: %d finding(s) suppressed by baseline\n" % suppressed)
    return 1 if findings else 0


def _cmd_report(args, out):
    from repro.analysis.report import write_report
    from repro.exec import CellExecutionError, SweepAborted

    def progress(message):
        # Progress is interactive chatter, not a result: it goes to
        # stderr so piping/redirecting the command stays clean.
        sys.stderr.write(message + "\n")

    try:
        executor = _build_executor(args)
    except ValueError as exc:
        out.write("error: %s\n" % exc)
        return 2
    try:
        path = write_report(
            args.output,
            include_ablations=not args.no_ablations,
            progress=progress,
            executor=executor,
        )
    except (CellExecutionError, SweepAborted) as exc:
        out.write(executor.summary() + "\n")
        out.write("error: %s\n" % exc)
        return 1
    out.write(executor.summary() + "\n")
    out.write("report written to %s\n" % path)
    return _executor_exit_code(executor, out)


def _cmd_serve(args, out):
    from repro.service import build_service

    if not 0 <= args.port <= 65535:
        out.write("error: --port must be in 0..65535 (got %d)\n" % args.port)
        return 2
    effective_workers = args.workers if args.workers is not None else args.jobs
    if effective_workers < 1:
        out.write(
            "error: --workers must be >= 1 (got %d)\n" % effective_workers
        )
        return 2
    try:
        service = build_service(
            cache_dir=args.cache_dir,
            jobs=args.jobs,
            workers=args.workers,
            kernel=args.kernel,
            check_invariants=_invariant_mode(args),
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
            heartbeat_timeout=args.heartbeat_timeout,
            allow_partial=args.allow_partial,
            faults=args.faults,
        )
    except ValueError as exc:
        out.write("error: %s\n" % exc)
        return 2

    def announce(host, port):
        out.write("serving on http://%s:%d\n" % (host, port))
        out.flush()

    try:
        service.run(args.host, args.port, announce=announce)
    except OSError as exc:
        out.write("error: cannot serve on %s:%d: %s\n" % (args.host, args.port, exc))
        return 1
    out.write("sweep service stopped\n")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TEMPO (ASPLOS 2017) reproduction: translation-triggered prefetching",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available workloads")

    def add_common(sub, needs_workload=True):
        if needs_workload:
            sub.add_argument("workload", nargs="?", default="xsbench",
                             help="workload name (default: xsbench)")
            sub.add_argument("--trace", help="replay a saved trace file instead")
        sub.add_argument("--length", type=int, default=12000, help="trace records")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--row-policy", choices=("open", "closed", "adaptive"))
        sub.add_argument("--scheduler", choices=("fcfs", "frfcfs", "bliss", "atlas"))
        sub.add_argument("--imp", action="store_true", help="enable the IMP prefetcher")
        sub.add_argument("--memhog", type=float, help="memhog fragmentation fraction")

    def add_kernel_flag(sub):
        sub.add_argument(
            "--kernel",
            choices=("scalar", "batch"),
            default="scalar",
            help="hot-loop kernel: 'scalar' resolves one reference at a "
            "time, 'batch' classifies chunks against struct-of-arrays "
            "snapshots and bulk-applies the regular majority "
            "(bit-identical; see docs/performance.md)",
        )

    def add_invariant_flag(sub):
        sub.add_argument(
            "--check-invariants",
            choices=("off", "sample", "full"),
            default="off",
            help="online invariant audits: 'off' is bit-identical and "
            "near-zero-cost, 'sample' checkpoints sparsely, 'full' audits "
            "every %d records (see docs/verification.md)" % _FULL_INTERVAL,
        )

    def add_observability(sub):
        sub.add_argument(
            "--stats-json",
            metavar="FILE",
            help="export the full metrics namespace (incl. manifest) as JSON",
        )
        sub.add_argument(
            "--trace-events",
            metavar="FILE",
            help="record lifecycle spans and export chrome://tracing JSON",
        )

    run_parser = subparsers.add_parser("run", help="simulate one workload")
    add_common(run_parser)
    add_observability(run_parser)
    add_invariant_flag(run_parser)
    add_kernel_flag(run_parser)
    run_parser.add_argument("--no-tempo", action="store_true", help="disable TEMPO")

    stats_parser = subparsers.add_parser(
        "stats", help="simulate one workload and dump every metric"
    )
    add_common(stats_parser)
    add_observability(stats_parser)
    add_invariant_flag(stats_parser)
    add_kernel_flag(stats_parser)
    stats_parser.add_argument("--no-tempo", action="store_true", help="disable TEMPO")
    stats_parser.add_argument(
        "--filter",
        metavar="GLOB",
        help="only metrics whose dotted key matches GLOB (e.g. 'core0.tlb.*', "
        "'dram.bank*.busy_cycles'); a pattern without glob characters "
        "matches as a prefix",
    )
    stats_parser.add_argument("--csv", metavar="FILE", help="also export metric,value CSV")

    timeline_parser = subparsers.add_parser(
        "timeline",
        help="render per-unit utilization bars and bottleneck attribution",
    )
    add_common(timeline_parser)
    add_invariant_flag(timeline_parser)
    timeline_parser.add_argument("--no-tempo", action="store_true", help="disable TEMPO")
    timeline_parser.add_argument(
        "--interval",
        type=int,
        default=_TIMELINE_INTERVAL,
        metavar="CYCLES",
        help="timeline bucket width in cycles (default: %d)" % _TIMELINE_INTERVAL,
    )
    timeline_parser.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="metric-snapshot cadence (default: same as --interval; 0 disables)",
    )
    timeline_parser.add_argument(
        "--width", type=int, default=60, help="bar/sparkline width in characters"
    )
    timeline_parser.add_argument(
        "--json", metavar="FILE", help="export the full timeline payload as JSON"
    )
    timeline_parser.add_argument(
        "--csv", metavar="FILE", help="export the interval series as CSV"
    )

    compare_parser = subparsers.add_parser("compare", help="baseline vs TEMPO")
    add_common(compare_parser)
    add_kernel_flag(compare_parser)

    trace_parser = subparsers.add_parser("trace", help="generate a trace file")
    trace_parser.add_argument("workload")
    trace_parser.add_argument("-o", "--output", required=True)
    trace_parser.add_argument("--length", type=int, default=12000)
    trace_parser.add_argument("--seed", type=int, default=0)

    def add_executor_flags(sub):
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="persistent pool workers for independent simulation cells "
            "(default: 1; wins over the legacy --jobs alias)",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="legacy alias for --workers (default: 1)",
        )
        sub.add_argument(
            "--heartbeat-timeout",
            type=float,
            default=10.0,
            metavar="SECONDS",
            help="kill and respawn a pool worker silent longer than this "
            "(default: 10)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the content-addressed result/trace cache",
        )
        sub.add_argument(
            "--cache-dir",
            metavar="PATH",
            help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro-tempo)",
        )
        sub.add_argument(
            "--cache-url",
            metavar="URL",
            help="remote sweep-service cache backend (http://host:port); "
            "reads fill from it, writes replicate to it, and any failure "
            "degrades gracefully to the local tier",
        )
        sub.add_argument(
            "--resume",
            action="store_true",
            help="continue an interrupted sweep from its checkpoint journal "
            "(completed cells are never re-simulated)",
        )
        sub.add_argument(
            "--max-retries",
            type=int,
            default=2,
            metavar="N",
            help="retries per failing cell before giving it up (default: 2)",
        )
        sub.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="kill and retry any cell running longer than this",
        )
        sub.add_argument(
            "--allow-partial",
            action="store_true",
            help="after retries are exhausted, proceed with explicitly-marked "
            "missing cells (exit code 3) instead of aborting",
        )
        sub.add_argument(
            "--faults",
            metavar="SPEC",
            help="deterministic fault injection for testing, e.g. "
            "'seed=0,kill=0.3,delay=0.2,delay-seconds=0.05,abort-after=4'",
        )
        sub.add_argument(
            "--telemetry",
            metavar="FILE",
            help="append structured sweep telemetry (batch/cell lifecycle "
            "events with durations) to FILE as JSON lines",
        )

    experiment_parser = subparsers.add_parser(
        "experiment", help="run a paper-figure experiment driver"
    )
    experiment_parser.add_argument("figure")
    experiment_parser.add_argument("--length", type=int, default=8000)
    experiment_parser.add_argument("--workloads", nargs="*", default=None)
    add_executor_flags(experiment_parser)
    add_invariant_flag(experiment_parser)
    add_kernel_flag(experiment_parser)

    report_parser = subparsers.add_parser(
        "report", help="run every figure driver and write a markdown report"
    )
    report_parser.add_argument("-o", "--output", required=True)
    report_parser.add_argument(
        "--no-ablations", action="store_true", help="figures only (faster)"
    )
    add_executor_flags(report_parser)
    add_invariant_flag(report_parser)
    add_kernel_flag(report_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the sweep service: an HTTP API over the shared executor",
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port; 0 asks the OS for a free one, announced on stdout "
        "(default: 8765)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="cache location shared with the CLI sweeps; the service also "
        "journals its jobs here (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-tempo)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="persistent pool workers each job's cells fan out across "
        "(jobs themselves run one at a time; default: 1; wins over the "
        "legacy --jobs alias)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="legacy alias for --workers (default: 1)",
    )
    serve_parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="kill and respawn a pool worker silent longer than this "
        "(default: 10)",
    )
    serve_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="default retries per failing cell; job specs may override "
        "(default: 2)",
    )
    serve_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-cell timeout; job specs may override",
    )
    serve_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="by default degrade (not fail) jobs whose cells exhaust retries",
    )
    serve_parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="deterministic fault injection for testing, e.g. "
        "'seed=0,kill=0.3,abort-after=4'",
    )
    add_invariant_flag(serve_parser)
    add_kernel_flag(serve_parser)

    verify_parser = subparsers.add_parser(
        "verify", help="run the differential/metamorphic oracle suite"
    )
    verify_parser.add_argument(
        "--quick", action="store_true", help="shorter runs (CI smoke mode)"
    )
    verify_parser.add_argument(
        "--length",
        type=int,
        default=None,
        metavar="N",
        help="trace records per oracle run (default: 4000, or 1200 with --quick)",
    )
    verify_parser.add_argument("--seed", type=int, default=0)

    lint_parser = subparsers.add_parser(
        "lint", help="run simlint, the AST-based invariant linter"
    )
    lint_parser.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src/repro)"
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )
    lint_parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by id (repeatable, e.g. --disable SL007)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    lint_parser.add_argument(
        "--whole-program",
        action="store_true",
        help=(
            "add the interprocedural rules SL010-SL014 (call-graph "
            "analysis; default when no paths are given)"
        ),
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file; new findings still fail",
    )
    lint_parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the baseline and exit 0",
    )
    lint_parser.add_argument(
        "--summary-cache",
        metavar="FILE",
        help=(
            "persist per-module analysis summaries keyed by content hash "
            "so warm whole-program runs only re-analyse changed files"
        ),
    )
    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "stats": _cmd_stats,
        "timeline": _cmd_timeline,
        "compare": _cmd_compare,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "verify": _cmd_verify,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
