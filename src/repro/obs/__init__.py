"""Observability: request-lifecycle tracing, unified metrics, provenance.

The measurement substrate every experiment and performance PR builds on:

* :class:`~repro.obs.tracer.EventTracer` -- per-reference lifecycle
  spans (TLB lookup, MMU-cache probes, walk accesses, DRAM service,
  replay service) with sim-time begin/end and outcome tags, exportable
  as a ``chrome://tracing`` JSON array.
* :class:`~repro.obs.registry.MetricsRegistry` -- walks every
  :class:`~repro.common.stats.StatGroup` in the machine into one flat
  dotted namespace with JSON/CSV exporters.
* :class:`~repro.obs.manifest.RunManifest` -- config snapshot + hash,
  seed, trace identity, package version and timings attached to every
  :class:`~repro.sim.metrics.SimulationResult`.
* :class:`~repro.obs.profiler.PhaseProfiler` -- wall-clock per phase and
  records/sec throughput with a periodic progress callback.
* :class:`~repro.obs.timeline.TimelineRecorder` -- per-unit busy/idle
  utilization (:class:`~repro.obs.timeline.UtilizationLedger`), top-down
  translation/cache/DRAM/overlap bottleneck attribution, and periodic
  metric snapshots (:class:`~repro.obs.timeline.IntervalSampler`),
  rendered by ``repro timeline``.

All hooks are nullable: a simulator built without a tracer, timeline or
progress callback pays a single ``is None`` test per record.
"""

from repro.obs.manifest import RunManifest
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry, write_stats_csv, write_stats_json
from repro.obs.timeline import (
    BottleneckAttributor,
    IntervalSampler,
    TimelineRecorder,
    UtilizationLedger,
    capture_timeline,
    render_timeline,
    timeline_payload,
    write_timeline_csv,
    write_timeline_json,
)
from repro.obs.tracer import EventTracer

__all__ = [
    "BottleneckAttributor",
    "EventTracer",
    "IntervalSampler",
    "MetricsRegistry",
    "PhaseProfiler",
    "RunManifest",
    "TimelineRecorder",
    "UtilizationLedger",
    "capture_timeline",
    "render_timeline",
    "timeline_payload",
    "write_stats_csv",
    "write_stats_json",
    "write_timeline_csv",
    "write_timeline_json",
]
