"""Structured event tracer for per-reference lifecycle spans.

The simulator emits one span per lifecycle stage of a trace record
(``record`` -> ``tlb`` / ``walk`` -> ``mmu_cache`` / ``pt_access`` ->
``dram`` -> ``replay``), each carrying its sim-time begin/end (cycles)
and a small tag dict (outcome, level, kind, ...).  Spans are stored as
plain tuples so the on-path cost is one list append; everything
presentation-related happens at export time.

Export target is the Chrome trace-event format (the JSON-array flavour),
loadable in ``chrome://tracing`` or https://ui.perfetto.dev: cores map
to Chrome *threads*, sim-time cycles map 1:1 onto microseconds.

The tracer is *nullable by convention*: simulator hot paths hold
``tracer = self.tracer`` locally and guard emissions with a single
``if tracer is not None`` -- a disabled run pays only that test.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: (name, cpu, begin, end_or_None, tags_or_None).
Span = Tuple[str, int, int, Optional[int], Optional[Dict[str, Any]]]


class EventTracer:
    """Records complete spans and instant events in sim time.

    *limit* bounds memory on long runs: once reached, further events are
    counted in :attr:`dropped` instead of stored (the Chrome export
    notes the drop count in its metadata).
    """

    __slots__ = ("events", "dropped", "_limit")

    #: Default cap: ~10 spans per record on a 100k-record run.
    DEFAULT_LIMIT = 1_000_000

    def __init__(self, limit: Optional[int] = DEFAULT_LIMIT) -> None:
        #: (name, cpu, begin, end_or_None, tags_or_None) tuples.
        self.events: List[Span] = []
        self.dropped = 0
        self._limit = limit

    def __len__(self) -> int:
        return len(self.events)

    def span(
        self,
        name: str,
        cpu: int,
        begin: int,
        end: Optional[int],
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a complete span ``[begin, end]`` (cycles) on *cpu*."""
        if self._limit is not None and len(self.events) >= self._limit:
            self.dropped += 1
            return
        self.events.append((name, cpu, begin, end, tags))

    def instant(
        self,
        name: str,
        cpu: int,
        ts: int,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a zero-duration marker at *ts*."""
        self.span(name, cpu, ts, None, tags)

    def clear(self) -> None:
        self.events = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def chrome_trace(self) -> List[Dict[str, Any]]:
        """Return the events as a Chrome trace-event list.

        Complete spans become ``ph="X"`` events with ``ts``/``dur``;
        instants become ``ph="i"``.  One cycle is rendered as one
        microsecond so the timeline zoom feels natural.
        """
        out: List[Dict[str, Any]] = []
        for name, cpu, begin, end, tags in self.events:
            event: Dict[str, Any] = {
                "name": name,
                "pid": 0,
                "tid": cpu,
                "ts": begin,
            }
            if end is None:
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = max(0, end - begin)
            if tags:
                event["args"] = dict(tags)
            out.append(event)
        if self.dropped:
            out.append(
                {
                    "name": "tracer_dropped_events",
                    "ph": "i",
                    "s": "g",
                    "pid": 0,
                    "tid": 0,
                    "ts": 0,
                    "args": {"dropped": self.dropped},
                }
            )
        return out

    def write_chrome_trace(self, path: str) -> int:
        """Write the Chrome-trace JSON array to *path*; returns the
        number of events written."""
        events = self.chrome_trace()
        with open(path, "w") as stream:
            json.dump(events, stream)
        return len(events)

    def __repr__(self) -> str:
        return "EventTracer(%d events, %d dropped)" % (len(self.events), self.dropped)
