"""Unified metrics namespace over every StatGroup in the machine.

Structures already keep their own :class:`~repro.common.stats.StatGroup`;
historically only the controller's and the energy model's survived into
:attr:`SimulationResult.stats`.  The registry collects *all* of them --
each under an explicit prefix (``core0``, ``core0.tlb``, ...) -- into
one flat ``{"dotted.path": number}`` dict, plus JSON/CSV exporters for
that dict.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.stats import StatGroup


class MetricsRegistry:
    """An ordered set of (prefix, StatGroup) registrations."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[Tuple[Optional[str], StatGroup]] = []

    def register(self, group: StatGroup, prefix: Optional[str] = None) -> StatGroup:
        """Register *group* to be flattened under *prefix* (the group's
        own name is always part of the key path)."""
        self._entries.append((prefix, group))
        return group

    def register_all(self, groups: Iterable[StatGroup], prefix: Optional[str] = None) -> None:
        for group in groups:
            self.register(group, prefix)

    def collect(self, into: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Flatten every registered group into one dict.

        Later registrations win on key collisions (they should not
        happen when prefixes are chosen sanely).
        """
        flat: Dict[str, Any] = {} if into is None else into
        for prefix, group in self._entries:
            flat.update(group.as_dict(prefix=prefix))
        return flat

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "MetricsRegistry(%d groups)" % len(self._entries)


def write_stats_json(stats: Mapping[str, Any], path: str, indent: int = 2) -> int:
    """Write a flat stats dict as sorted JSON; returns the key count."""
    with open(path, "w") as stream:
        json.dump(stats, stream, indent=indent, sort_keys=True)
        stream.write("\n")
    return len(stats)


def write_stats_csv(stats: Mapping[str, Any], path: str) -> int:
    """Write a flat stats dict as ``metric,value`` CSV rows; returns the
    key count."""
    with open(path, "w", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(("metric", "value"))
        for key in sorted(stats):
            writer.writerow((key, stats[key]))
    return len(stats)
