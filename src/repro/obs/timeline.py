"""Utilization timelines and top-down bottleneck attribution.

Three instruments, bundled by :class:`TimelineRecorder` and attached to
a run via ``SystemSimulator(..., timeline=recorder)``:

* :class:`UtilizationLedger` -- per-unit busy/idle cycle accounting.
  Every simulated unit (TLB levels, MMU caches, walkers, cache levels,
  DRAM banks and channels, the TEMPO and IMP engines) reports each busy
  span into its :class:`UnitTrack`; spans accumulate both a run total
  and a per-interval histogram so utilization can be plotted over time.
* :class:`BottleneckAttributor` -- splits every reference's cycles into
  translation-stall / cache-stall / DRAM-stall / overlap buckets.  The
  split is exact: the simulator reports each cycle increment as it
  happens, and the per-reference sum must equal the reference's elapsed
  cycles (``unattributed_cycles`` stays zero; tests pin this).  Bucket
  sums are kept per interval so the critical resource can be named for
  each slice of the run.
* :class:`IntervalSampler` -- snapshots the flattened metric namespace
  every N cycles into a time-sliced series (phase plots of TLB-miss
  rate, walk latency, replay-DRAM conversion over the run).

The off path is a single ``is None`` check in the simulator, and none
of the recorded data enters ``result.stats`` -- stats are bit-identical
with the recorder on or off (pinned by tests/test_timeline.py).

Rendering/export: :func:`timeline_payload` freezes a recorder into a
plain-dict payload; :func:`render_timeline` draws ASCII utilization
bars and phase timelines from it; :func:`write_timeline_json` /
:func:`write_timeline_csv` export the same payload, so text, JSON and
CSV provably show the same data.
"""

import json
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

#: Default width of one utilization/attribution interval, in cycles.
DEFAULT_INTERVAL = 4096

TIMELINE_SCHEMA_VERSION = 1

#: Attribution bucket names, in render order.  ``translation`` is every
#: cycle spent producing the physical address (TLB probes, MMU-cache
#: probes, page-table cache references, the TLB fill); ``cache`` is the
#: post-translation probe down the hierarchy; ``dram`` is time blocked
#: on the memory controller (page-table or demand requests, and waits
#: on in-flight prefetches); ``overlap`` is replay time fully hidden by
#: a timely TEMPO prefetch (the replay's LLC hit after the engine
#: already fetched the line).
BUCKETS: Tuple[str, str, str, str] = ("translation", "cache", "dram", "overlap")

_BUCKET_CHARS = {"translation": "T", "cache": "C", "dram": "D", "overlap": "O"}

#: Ten busy levels for the phase-timeline sparklines (pure ASCII).
_SPARK = " .:-=+*#%@"


class UnitTrack:
    """Busy-cycle accounting for one hardware unit.

    ``busy(start, end)`` adds the half-open span ``[start, end)`` to the
    unit's run total and distributes it across fixed-width interval
    buckets.  Spans are short relative to the interval width, so the
    distribution loop runs once or twice per report.
    """

    __slots__ = ("name", "busy_cycles", "horizon", "_interval", "_buckets")

    def __init__(self, name: str, interval: int) -> None:
        self.name = name
        self.busy_cycles = 0
        #: Largest ``end`` seen -- a lower bound on the run's extent.
        self.horizon = 0
        self._interval = interval
        self._buckets: Dict[int, int] = {}

    def busy(self, start: int, end: int) -> None:
        """Report the unit busy for the half-open span ``[start, end)``."""
        if end <= start:
            return
        self.busy_cycles += end - start
        if end > self.horizon:
            self.horizon = end
        interval = self._interval
        buckets = self._buckets
        index = start // interval
        last = (end - 1) // interval
        while index <= last:
            lo = index * interval
            hi = lo + interval
            span = min(end, hi) - max(start, lo)
            buckets[index] = buckets.get(index, 0) + span
            index += 1

    def series(self) -> List[Tuple[int, int]]:
        """``(interval_index, busy_cycles)`` rows, in time order."""
        return sorted(self._buckets.items())


class UtilizationLedger:
    """The shared per-unit busy/idle ledger.

    Units are created on demand by :meth:`unit`; the simulator wires one
    track into each hardware unit at construction time, so the hot-path
    cost with the ledger off is a single ``is None`` test per unit.
    """

    __slots__ = ("interval", "units")

    def __init__(self, interval: int = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive, got %d" % interval)
        self.interval = interval
        self.units: Dict[str, UnitTrack] = {}

    def unit(self, name: str) -> UnitTrack:
        """The (created-on-first-use) track for *name*."""
        track = self.units.get(name)
        if track is None:
            track = UnitTrack(name, self.interval)
            self.units[name] = track
        return track

    @property
    def horizon(self) -> int:
        """Largest busy-span end across every unit."""
        if not self.units:
            return 0
        return max(track.horizon for track in self.units.values())


class BottleneckAttributor:
    """Top-down per-reference cycle attribution.

    The simulator calls :meth:`begin` when a reference arrives at the
    TLB, the ``add_*`` methods for every cycle increment along the way,
    and :meth:`end` when the reference retires.  Per-core in-flight
    state keys on the cpu index so interleaved multicore streams do not
    corrupt each other.  Conservation is exact: ``unattributed_cycles``
    accumulates ``elapsed - attributed`` per reference and must be zero
    (IMP prefetch work runs outside any reference and is excluded).
    """

    __slots__ = (
        "interval",
        "references",
        "unattributed_cycles",
        "totals",
        "horizon",
        "_intervals",
        "_refs",
    )

    def __init__(self, interval: int = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive, got %d" % interval)
        self.interval = interval
        self.references = 0
        self.unattributed_cycles = 0
        self.totals: Dict[str, int] = {bucket: 0 for bucket in BUCKETS}
        self.horizon = 0
        #: interval index -> [translation, cache, dram, overlap]
        self._intervals: Dict[int, List[int]] = {}
        #: cpu -> [arrival, translation, cache, dram, overlap]
        self._refs: Dict[int, List[int]] = {}

    def begin(self, cpu: int, arrival: int) -> None:
        self._refs[cpu] = [arrival, 0, 0, 0, 0]

    def add_translation(self, cpu: int, cycles: int) -> None:
        self._refs[cpu][1] += cycles

    def add_cache(self, cpu: int, cycles: int) -> None:
        self._refs[cpu][2] += cycles

    def add_dram(self, cpu: int, cycles: int) -> None:
        self._refs[cpu][3] += cycles

    def add_overlap(self, cpu: int, cycles: int) -> None:
        self._refs[cpu][4] += cycles

    def end(self, cpu: int, finish: int) -> None:
        arrival, translation, cache, dram, overlap = self._refs.pop(cpu)
        self.references += 1
        attributed = translation + cache + dram + overlap
        self.unattributed_cycles += (finish - arrival) - attributed
        if finish > self.horizon:
            self.horizon = finish
        totals = self.totals
        totals["translation"] += translation
        totals["cache"] += cache
        totals["dram"] += dram
        totals["overlap"] += overlap
        cell = self._intervals.get(finish // self.interval)
        if cell is None:
            cell = [0, 0, 0, 0]
            self._intervals[finish // self.interval] = cell
        cell[0] += translation
        cell[1] += cache
        cell[2] += dram
        cell[3] += overlap

    def interval_rows(self) -> List[Tuple[int, int, int, int, int]]:
        """``(interval_index, translation, cache, dram, overlap)`` rows
        in time order."""
        return [
            (index, cell[0], cell[1], cell[2], cell[3])
            for index, cell in sorted(self._intervals.items())
        ]

    def critical(self, index: int) -> Optional[str]:
        """The bucket with the most cycles in interval *index* (first
        of :data:`BUCKETS` wins ties), or None for an empty interval."""
        cell = self._intervals.get(index)
        if cell is None or not any(cell):
            return None
        best = max(range(4), key=lambda i: (cell[i], -i))
        return BUCKETS[best]


class IntervalSampler:
    """Snapshots the flattened metric namespace every *every* cycles.

    The simulator binds a collector (``metrics_registry().collect``) at
    run start and calls :meth:`maybe_sample` once per retired record;
    :meth:`finish` takes the end-of-run snapshot.  Collection is
    side-effect-free, so sampling never perturbs the run and the series
    is deterministic across identical runs.
    """

    __slots__ = ("every", "samples", "_collect", "_next")

    def __init__(self, every: int) -> None:
        if every <= 0:
            raise ValueError("sample interval must be positive, got %d" % every)
        self.every = every
        self.samples: List[Tuple[int, Dict[str, Any]]] = []
        self._collect: Optional[Callable[[], Dict[str, Any]]] = None
        self._next = every

    def bind(self, collect: Callable[[], Dict[str, Any]]) -> None:
        self._collect = collect

    def maybe_sample(self, cycle: int) -> None:
        if cycle >= self._next and self._collect is not None:
            self.samples.append((cycle, self._collect()))
            self._next = cycle + self.every

    def finish(self, cycle: int) -> None:
        """Take the final snapshot (skipped if one landed on *cycle*)."""
        if self._collect is None:
            return
        if not self.samples or self.samples[-1][0] < cycle:
            self.samples.append((cycle, self._collect()))


class TimelineRecorder:
    """The bundle the simulator accepts as its ``timeline`` hook.

    *interval* sets the bucket width for both the ledger and the
    attributor; *sample_interval* sets the metric-snapshot period
    (default: same as *interval*; 0 disables sampling).
    """

    __slots__ = ("ledger", "attribution", "sampler")

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        sample_interval: Optional[int] = None,
    ) -> None:
        self.ledger = UtilizationLedger(interval)
        self.attribution = BottleneckAttributor(interval)
        if sample_interval is None:
            sample_interval = interval
        self.sampler = IntervalSampler(sample_interval) if sample_interval > 0 else None


def capture_timeline(
    workload: Any,
    config: Any = None,
    length: int = 12000,
    seed: int = 0,
    interval: int = DEFAULT_INTERVAL,
    sample_interval: Optional[int] = None,
) -> Tuple[Any, TimelineRecorder]:
    """Run *workload* with a fresh recorder attached; returns
    ``(SimulationResult, TimelineRecorder)``."""
    # Imported lazily: the simulator builds on this module.
    from repro.sim.runner import run_workload

    recorder = TimelineRecorder(interval, sample_interval)
    result = run_workload(
        workload, config, length=length, seed=seed, timeline=recorder
    )
    return result, recorder


# ----------------------------------------------------------------------
# Payload / export / rendering
# ----------------------------------------------------------------------


def timeline_payload(recorder: TimelineRecorder) -> Dict[str, Any]:
    """Freeze *recorder* into a JSON-serialisable payload dict.

    The same payload backs the ASCII renderer and both exporters."""
    attribution = recorder.attribution
    total_cycles = max(recorder.ledger.horizon, attribution.horizon)
    units: List[Dict[str, Any]] = []
    for name in sorted(recorder.ledger.units):
        track = recorder.ledger.units[name]
        utilization = track.busy_cycles / total_cycles if total_cycles else 0.0
        units.append(
            {
                "name": name,
                "busy_cycles": track.busy_cycles,
                "utilization": utilization,
                "series": [list(row) for row in track.series()],
            }
        )
    intervals = []
    for index, translation, cache, dram, overlap in attribution.interval_rows():
        intervals.append(
            {
                "index": index,
                "translation": translation,
                "cache": cache,
                "dram": dram,
                "overlap": overlap,
                "critical": attribution.critical(index),
            }
        )
    sampler = recorder.sampler
    samples = (
        [[cycle, dict(snapshot)] for cycle, snapshot in sampler.samples]
        if sampler is not None
        else []
    )
    return {
        "schema_version": TIMELINE_SCHEMA_VERSION,
        "total_cycles": total_cycles,
        "interval": recorder.ledger.interval,
        "units": units,
        "attribution": {
            "references": attribution.references,
            "unattributed_cycles": attribution.unattributed_cycles,
            "totals": dict(attribution.totals),
            "intervals": intervals,
        },
        "samples": samples,
    }


def write_timeline_json(payload: Dict[str, Any], path: str) -> int:
    """Write the payload as JSON; returns the number of units."""
    with open(path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    units: List[Dict[str, Any]] = payload["units"]
    return len(units)


def write_timeline_csv(payload: Dict[str, Any], path: str) -> int:
    """Write the payload as ``kind,name,interval_start,value`` rows;
    returns the row count (header excluded).

    Row kinds: ``unit`` (per-interval busy cycles), ``unit_total``
    (run-total busy cycles, interval_start empty), ``attribution``
    (per-interval bucket cycles), ``attribution_total`` and ``sample``
    (per-snapshot metric values, interval_start = sample cycle).
    """
    interval = int(payload["interval"])
    rows = 0
    with open(path, "w") as stream:
        stream.write("kind,name,interval_start,value\n")
        for unit in payload["units"]:
            for index, busy in unit["series"]:
                stream.write(
                    "unit,%s,%d,%d\n" % (unit["name"], index * interval, busy)
                )
                rows += 1
            stream.write("unit_total,%s,,%d\n" % (unit["name"], unit["busy_cycles"]))
            rows += 1
        attribution = payload["attribution"]
        for cell in attribution["intervals"]:
            start = cell["index"] * interval
            for bucket in BUCKETS:
                stream.write(
                    "attribution,%s,%d,%d\n" % (bucket, start, cell[bucket])
                )
                rows += 1
        for bucket in BUCKETS:
            stream.write(
                "attribution_total,%s,,%d\n" % (bucket, attribution["totals"][bucket])
            )
            rows += 1
        for cycle, snapshot in payload["samples"]:
            for key in sorted(snapshot):
                value = snapshot[key]
                if isinstance(value, (int, float)):
                    stream.write("sample,%s,%d,%s\n" % (key, cycle, value))
                    rows += 1
    return rows


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(fraction * width + 0.5)
    return "#" * filled + "-" * (width - filled)


def _columns(
    series: List[Tuple[int, int]], interval: int, total: int, columns: int
) -> List[int]:
    """Re-bin per-interval busy cycles into *columns* equal time slices."""
    out = [0] * columns
    if total <= 0:
        return out
    span = max(1, -(-total // columns))  # ceil(total / columns)
    for index, busy in series:
        column = min((index * interval) // span, columns - 1)
        out[column] += busy
    return out


def render_timeline(payload: Dict[str, Any], width: int = 60) -> str:
    """ASCII utilization bars, phase timelines and the bottleneck
    summary, rendered from a :func:`timeline_payload` dict."""
    width = max(width, 8)
    total = int(payload["total_cycles"])
    interval = int(payload["interval"])
    units: List[Dict[str, Any]] = payload["units"]
    lines: List[str] = []
    lines.append(
        "utilization timeline: %d cycles, %d-cycle intervals, %d units"
        % (total, interval, len(units))
    )
    lines.append("")

    name_width = max([len(u["name"]) for u in units] + [4])
    bar_width = max(8, width // 2)
    lines.append("per-unit utilization")
    for unit in units:
        lines.append(
            "  %-*s [%s] %5.1f%%  (%d busy cycles)"
            % (
                name_width,
                unit["name"],
                _bar(unit["utilization"], bar_width),
                100.0 * unit["utilization"],
                unit["busy_cycles"],
            )
        )
    lines.append("")

    span = max(1, -(-total // width)) if total > 0 else 1
    lines.append(
        "phase timeline (busy level per %d-cycle column, ' '=idle '@'=saturated)"
        % span
    )
    for unit in units:
        series = [(int(i), int(b)) for i, b in unit["series"]]
        cells = _columns(series, interval, total, width)
        glyphs = []
        for busy in cells:
            level = min(int((busy / span) * (len(_SPARK) - 1) + 0.5), len(_SPARK) - 1)
            glyphs.append(_SPARK[level])
        lines.append("  %-*s |%s|" % (name_width, unit["name"], "".join(glyphs)))
    lines.append("")

    attribution = payload["attribution"]
    totals: Dict[str, int] = attribution["totals"]
    attributed = sum(totals.values())
    lines.append("bottleneck attribution (per-reference cycle split)")
    for bucket in BUCKETS:
        share = totals[bucket] / attributed if attributed else 0.0
        lines.append(
            "  %-11s [%s] %5.1f%%  (%d cycles)"
            % (bucket, _bar(share, bar_width), 100.0 * share, totals[bucket])
        )
    lines.append(
        "  references: %d, unattributed cycles: %d"
        % (attribution["references"], attribution["unattributed_cycles"])
    )

    # Critical-resource strip: re-bin the per-interval bucket sums into
    # render columns and name the winner of each column.
    column_cells = [[0, 0, 0, 0] for _ in range(width)]
    for cell in attribution["intervals"]:
        column = min((int(cell["index"]) * interval) // span, width - 1)
        for slot, bucket in enumerate(BUCKETS):
            column_cells[column][slot] += int(cell[bucket])
    strip = []
    for cell_sums in column_cells:
        if not any(cell_sums):
            strip.append(".")
        else:
            best = max(range(4), key=lambda i: (cell_sums[i], -i))
            strip.append(_BUCKET_CHARS[BUCKETS[best]])
    lines.append(
        "  critical resource per column (T=translation C=cache D=dram "
        "O=overlap .=idle)"
    )
    lines.append("  %-*s |%s|" % (name_width, "critical", "".join(strip)))
    lines.append("")

    samples = payload["samples"]
    if samples:
        first_cycle = samples[0][0]
        last_cycle = samples[-1][0]
        lines.append(
            "interval samples: %d metric snapshots (cycles %d..%d); "
            "export with --json/--csv" % (len(samples), first_cycle, last_cycle)
        )
        lines.append("")
    return "\n".join(lines) + "\n"


def write_timeline_text(payload: Dict[str, Any], stream: TextIO, width: int = 60) -> None:
    """Render the payload to *stream* (convenience for the CLI)."""
    stream.write(render_timeline(payload, width))
