"""Run provenance: what exactly produced a result.

Every :class:`~repro.sim.metrics.SimulationResult` carries a
:class:`RunManifest` describing the run well enough to reproduce it (or
to notice you cannot): the full config snapshot and its SHA-256 hash,
the seed, the identity of every trace, the package version and the
measured wall-clock timings.  ``flat()`` projects the scalar fields into
the unified metrics namespace under ``manifest.``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


def config_snapshot(config: Any) -> Dict[str, Any]:
    """A plain-dict snapshot of a (dataclass) SystemConfig."""
    return dataclasses.asdict(config)


def config_hash(config: Any) -> str:
    """SHA-256 over the canonical JSON of the config snapshot."""
    canonical = json.dumps(config_snapshot(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def executor_provenance(executor: Any) -> List[Tuple[str, str]]:
    """``(field, value)`` provenance rows for an
    :class:`~repro.exec.ExperimentExecutor`: where every result came
    from, what the resilience layer had to absorb to get there, and --
    when a sweep was allowed to degrade -- exactly which cells are
    missing.  The report renders these under its Provenance section.
    """
    counters: Dict[str, int] = dict(executor.counters)
    rows: List[Tuple[str, str]] = [
        (
            "executor",
            "workers=%d; %d simulated, %d cache hits, %d memo hits, %d deduplicated"
            % (
                executor.jobs,
                counters.get("simulated", 0),
                counters.get("cache_hits", 0),
                counters.get("memo_hits", 0),
                counters.get("deduped", 0),
            ),
        )
    ]
    resilience = [
        "%d %s" % (counters.get(name, 0), label)
        for name, label in (
            ("resumed", "resumed"),
            ("retries", "retried"),
            ("timeouts", "timed out"),
            ("crashes", "crashed workers"),
            ("stalls", "stalled workers"),
            ("quarantined", "quarantined entries"),
            ("failed", "failed cells"),
        )
        if counters.get(name, 0)
    ]
    if resilience:
        rows.append(("resilience", ", ".join(resilience)))
    pool = [
        "%d %s" % (counters.get(name, 0), label)
        for name, label in (
            ("workers_spawned", "spawned"),
            ("workers_respawned", "respawned"),
            ("steals", "stolen cells"),
            ("poison_cells", "poison cells"),
        )
        if counters.get(name, 0)
    ]
    if pool:
        rows.append(("pool", ", ".join(pool)))
    cache = getattr(executor, "cache", None)
    remote = getattr(cache, "remote", None)
    if remote is not None or counters.get("backend_degraded", 0):
        backend = remote.describe() if remote is not None else "(injected outage)"
        detail = backend
        degraded = counters.get("backend_degraded", 0)
        if degraded:
            detail += "; %d ops degraded to local tier" % degraded
            reason = getattr(cache, "degrade_error", None)
            if reason:
                detail += " (%s)" % reason
        rows.append(("cache-backend", detail))
    modes = [
        "%d %s" % (counters.get(name, 0), label)
        for name, label in (
            ("inline_batches", "inline"),
            ("pooled_batches", "pooled"),
        )
        if counters.get(name, 0)
    ]
    if modes:
        rows.append(
            (
                "execution",
                "kernel=%s; %s"
                % (getattr(executor, "kernel", "scalar"), ", ".join(modes)),
            )
        )
    reasons: Mapping[str, int] = getattr(executor, "quarantine_reasons", None) or {}
    if reasons:
        rows.append(
            (
                "quarantine",
                ", ".join(
                    "%d %s" % (count, reason)
                    for reason, count in sorted(reasons.items())
                ),
            )
        )
    telemetry = getattr(executor, "telemetry", None)
    if telemetry is not None:
        rows.append(
            (
                "telemetry",
                "%d events -> `%s`" % (telemetry.events_written, telemetry.path),
            )
        )
    failed = list(getattr(executor, "failed_cells", ()))
    if failed:
        rows.append(
            (
                "degraded",
                "missing cells: "
                + ", ".join(
                    "%s (`%s`)" % (failure.workloads, failure.key[:12])
                    for failure in failed
                ),
            )
        )
    return rows


class RunManifest:
    """Provenance record for one simulation run."""

    __slots__ = (
        "config",
        "config_sha256",
        "seed",
        "num_cores",
        "traces",
        "warmup_records",
        "package_version",
        "python_version",
        "kernel",
        "timings",
        "audit",
    )

    def __init__(self, config: Any, seed: int, traces: Sequence[Any], warmup_records: Optional[int] = None, timings: Optional[Mapping[str, float]] = None, kernel: str = "scalar") -> None:
        # Imported here: repro/__init__ imports the sim stack which may
        # import us; reaching for the version lazily avoids the cycle.
        from repro import __version__

        self.config = config_snapshot(config)
        self.config_sha256 = config_hash(config)
        self.seed = seed
        self.num_cores = len(traces)
        self.traces: List[Dict[str, Any]] = [
            {
                "name": trace.name,
                "records": len(trace.records),
                "footprint_bytes": trace.footprint_bytes,
            }
            for trace in traces
        ]
        self.warmup_records = warmup_records
        self.package_version = __version__
        self.python_version = platform.python_version()
        #: Which hot-loop kernel produced the result ("scalar" or
        #: "batch").  Cached cells carry this in their stats payload, so
        #: a report can always say which kernel simulated each cell.
        self.kernel = kernel
        #: Wall-clock phase timings + throughput, filled in by the
        #: simulator's profiler after the run.
        self.timings: Dict[str, float] = dict(timings) if timings else {}
        #: Invariant-audit summary (mode, checkpoints, violations,
        #: flight-recorder stats), filled in when ``--check-invariants``
        #: is on.  Exported by :meth:`as_dict` but deliberately *not* by
        #: :meth:`flat`: the flat projection merges into the stats
        #: namespace, which must stay bit-identical between audited and
        #: unaudited runs.
        self.audit: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """Full nested manifest (JSON-serialisable)."""
        info = {
            "config": self.config,
            "config_sha256": self.config_sha256,
            "seed": self.seed,
            "num_cores": self.num_cores,
            "traces": self.traces,
            "warmup_records": self.warmup_records,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "kernel": self.kernel,
            "timings": self.timings,
        }
        if self.audit is not None:
            info["audit"] = self.audit
        return info

    def flat(self, prefix: str = "manifest") -> Dict[str, Any]:
        """Scalar projection for the unified metrics namespace."""
        flat: Dict[str, Any] = {
            "%s.config_sha256" % prefix: self.config_sha256,
            "%s.seed" % prefix: self.seed,
            "%s.num_cores" % prefix: self.num_cores,
            "%s.package_version" % prefix: self.package_version,
            "%s.python_version" % prefix: self.python_version,
            "%s.kernel" % prefix: self.kernel,
            "%s.workloads" % prefix: "+".join(t["name"] for t in self.traces),
            "%s.trace_records" % prefix: sum(t["records"] for t in self.traces),
        }
        if self.warmup_records is not None:
            flat["%s.warmup_records" % prefix] = self.warmup_records
        for name, value in self.timings.items():
            flat["%s.timing.%s" % (prefix, name)] = value
        return flat

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return "RunManifest(%s, seed=%d, cfg=%s)" % (
            "+".join(t["name"] for t in self.traces),
            self.seed,
            self.config_sha256[:12],
        )
