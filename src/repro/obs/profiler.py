"""Wall-clock phase profiling and progress reporting for long runs.

:class:`PhaseProfiler` measures host wall-clock per named phase (warmup,
measure, drain, shared, alone.*, ...) and derives records/sec
throughput; the summary lands in the run manifest's ``timings``.

:class:`ProgressMeter` rate-limits a user progress callback to once per
*interval* records so the callback's cost never shapes the simulation.
With no callback it renders to **stderr** -- interactive chatter must
never interleave with the machine-readable results on stdout (simlint
SL007 enforces the same rule statically).
"""

import sys
import time


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    __slots__ = ("phases", "_order", "_current", "_started")

    def __init__(self):
        self.phases = {}
        self._order = []
        self._current = None
        self._started = 0.0

    def begin(self, name):
        """Start *name*, ending any phase in progress."""
        self.end()
        self._current = name
        self._started = time.perf_counter()

    def end(self):
        """End the phase in progress (no-op when none is)."""
        if self._current is None:
            return
        elapsed = time.perf_counter() - self._started
        if self._current not in self.phases:
            self._order.append(self._current)
            self.phases[self._current] = 0.0
        self.phases[self._current] += elapsed
        self._current = None

    def phase(self, name):
        """Context-manager form: ``with profiler.phase("drain"): ...``"""
        return _PhaseScope(self, name)

    def total_seconds(self):
        return sum(self.phases.values())

    def summary(self, records=None):
        """``{"wall_seconds": ..., "wall_seconds.<phase>": ...}`` plus
        ``records_per_second`` when *records* is given."""
        self.end()
        out = {"wall_seconds": self.total_seconds()}
        for name in self._order:
            out["wall_seconds.%s" % name] = self.phases[name]
        if records is not None:
            out["records"] = records
            total = self.total_seconds()
            out["records_per_second"] = records / total if total > 0 else 0.0
        return out


class _PhaseScope:
    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler, name):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._profiler.begin(self._name)
        return self._profiler

    def __exit__(self, exc_type, exc, tb):
        self._profiler.end()
        return False


def _stderr_progress(done, total):
    """Default renderer: one status line per firing, on stderr so that
    stdout stays clean for results (never ``print``/stdout here)."""
    sys.stderr.write("progress: %d/%d records\n" % (done, total))


class ProgressMeter:
    """Calls ``callback(done, total)`` at most once per *interval*
    records.  ``tick()`` is the hot-path entry: one increment and one
    comparison per record between callbacks.  ``callback=None`` selects
    the default stderr renderer."""

    __slots__ = ("_callback", "_interval", "_total", "_done", "_next")

    def __init__(self, callback, total, interval=5000):
        self._callback = callback if callback is not None else _stderr_progress
        self._interval = max(1, interval)
        self._total = total
        self._done = 0
        self._next = self._interval

    def tick(self, amount=1):
        self._done += amount
        if self._done >= self._next:
            self._next = self._done + self._interval
            self._callback(self._done, self._total)

    def finish(self):
        """Always report the final count."""
        self._callback(self._done, self._total)
