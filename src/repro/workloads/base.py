"""Shared machinery for workload generators.

A :class:`TraceBuilder` places regions eagerly using the same
deterministic layout formula the simulator's AddressSpace uses (each
region on the next 1 GB boundary plus a guard gap), owns a seeded RNG,
and accumulates trace records.  Generators express their access patterns
through region handles.
"""

from repro.common.constants import CACHE_LINE_BYTES, PAGE_SIZE_1G
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.sim.trace import RegionSpec, Trace, TraceRecord
from repro.vm.address_space import REGION_SPACE_BASE

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB


class RegionHandle:
    """A generator's view of one placed region."""

    __slots__ = ("spec", "_rng")

    def __init__(self, spec, rng):
        self.spec = spec
        self._rng = rng

    @property
    def base(self):
        return self.spec.base

    @property
    def size(self):
        return self.spec.size

    def at(self, offset):
        """Address at *offset* into the region (wraps around)."""
        return self.spec.base + (offset % self.spec.size)

    def random(self, align=8):
        """Uniformly random aligned address inside the region."""
        slots = self.spec.size // align
        return self.spec.base + self._rng.randint(0, slots - 1) * align

    def zipf(self, align=CACHE_LINE_BYTES, skew=0.99):
        """Zipf-skewed address (hot head, long tail)."""
        slots = self.spec.size // align
        return self.spec.base + self._rng.zipf_index(slots, skew) * align

    def clustered(
        self,
        chunk_bytes=2 * 1024 * 1024,
        hot_chunks=2048,
        tail=0.01,
        align=CACHE_LINE_BYTES,
    ):
        """Irregular access with steady-state chunk reuse.

        A *hot set* of ``hot_chunks`` 2 MB chunks, strided across the
        whole region, receives ``1 - tail`` of the draws (uniform chunk,
        uniform line within); the remaining ``tail`` explores the full
        region.  This reproduces how real sparse workloads touch memory
        in steady state: upper-level page-table entries (one per chunk,
        revisited every few hundred references) stay cache-resident,
        while leaf entries (one per 4 KB page, almost never revisited)
        stay cold -- yielding the paper's observation that 96%+ of DRAM
        page-table accesses are for leaf PTs (Sec. 2.2), with the page
        working set still vastly exceeding TLB reach.
        """
        total_chunks = max(self.spec.size // chunk_bytes, 1)
        hot_chunks = min(hot_chunks, total_chunks)
        if tail > 0.0 and self._rng.random() < tail:
            chunk = self._rng.randint(0, total_chunks - 1)
        else:
            stride = max(total_chunks // hot_chunks, 1)
            chunk = (self._rng.randint(0, hot_chunks - 1) * stride) % total_chunks
        lines = chunk_bytes // align
        within = self._rng.randint(0, lines - 1) * align
        return self.spec.base + chunk * chunk_bytes + within


class TraceBuilder:
    """Accumulates records + regions into a :class:`Trace`."""

    def __init__(self, name, seed):
        self.name = name
        self.rng = DeterministicRng(seed, "workload.%s" % name)
        self._specs = []
        self._records = []
        self._next_base = REGION_SPACE_BASE

    def region(self, name, size, allow_superpages=True, thp_eligibility=1.0):
        """Declare + place a region; returns its handle.

        Placement mirrors ``AddressSpace.allocate_region`` exactly so the
        simulator reproduces the same bases.
        """
        if size <= 0:
            raise ConfigError(
                "region %r must have positive size" % name,
                context={"region": name, "size": size},
            )
        base = self._next_base
        end = base + size
        # Next 1 GB boundary at/after the end, plus a 1 GB guard gap.
        self._next_base = ((end + PAGE_SIZE_1G - 1) // PAGE_SIZE_1G + 1) * PAGE_SIZE_1G
        spec = RegionSpec(name, size, base, allow_superpages, thp_eligibility)
        self._specs.append(spec)
        return RegionHandle(spec, self.rng.derive("region.%s" % name))

    def read(self, vaddr, gap=0, pattern=None):
        self._records.append(TraceRecord(vaddr, False, gap, pattern))

    def write(self, vaddr, gap=0, pattern=None):
        self._records.append(TraceRecord(vaddr, True, gap, pattern))

    def __len__(self):
        return len(self._records)

    def build(self):
        """Return the finished trace."""
        return Trace(self.name, self._records, self._specs)


class Workload:
    """Registry entry: metadata + a trace factory."""

    __slots__ = ("name", "bigdata", "description", "_factory")

    def __init__(self, name, bigdata, description, factory):
        self.name = name
        self.bigdata = bigdata
        self.description = description
        self._factory = factory

    def build(self, length, seed=0):
        """Generate a trace with roughly *length* records."""
        return self._factory(length, seed)

    def __repr__(self):
        kind = "bigdata" if self.bigdata else "small"
        return "Workload(%s, %s)" % (self.name, kind)
