"""Extension workloads beyond the paper's evaluated suite.

The paper's introduction motivates TEMPO with "big key-value stores" and
"multi-dimensional data sets"; these generators cover those two classes
so downstream users have ready-made templates:

* ``kvstore`` -- memcached-style point lookups: hot index descent, then
  a scattered value read (plus occasional log appends).
* ``btree`` -- database B+-tree range scans: a root-to-leaf descent with
  cache-resident upper levels and cold leaves, then a short sequential
  leaf scan.

Both are TLB-thrashing at the leaf/value level while keeping upper
levels hot -- the exact profile TEMPO targets.
"""

from repro.workloads.base import GB, MB, TraceBuilder


def build_kvstore(length, seed=0):
    """Memcached-like: skewed point GETs over a ~1 TB value heap."""
    builder = TraceBuilder("kvstore", seed)
    index = builder.region("hash_index", 64 * MB)
    values = builder.region("value_heap", 1024 * GB, thp_eligibility=0.65)
    log = builder.region("append_log", 32 * GB)
    rng = builder.rng
    log_offset = 0
    while len(builder) < length:
        builder.read(index.zipf(skew=0.8), gap=3)    # bucket lookup
        value = values.clustered(hot_chunks=2048, tail=0.004)
        builder.read(value, gap=2, pattern="val")    # value header
        if rng.random() < 0.6:
            builder.read(values.at(value - values.base + 64), gap=1, pattern="val")
        if rng.random() < 0.1:                       # SET: append to log
            builder.write(log.at(log_offset), gap=3)
            log_offset += 64
    return builder.build()


def build_btree(length, seed=0):
    """B+-tree range scans: hot internal nodes, cold leaves."""
    builder = TraceBuilder("btree", seed)
    internal = builder.region("internal_nodes", 128 * MB)
    leaves = builder.region("leaf_pages", 768 * GB, thp_eligibility=0.70)
    rng = builder.rng
    while len(builder) < length:
        for _ in range(3):  # root-to-leaf descent through hot internals
            builder.read(internal.zipf(skew=0.75), gap=2)
        leaf_base = leaves.clustered(hot_chunks=1792, tail=0.004)
        scan_lines = rng.randint(2, 5)
        for line in range(scan_lines):  # short sequential scan inside the leaf
            builder.read(leaves.at(leaf_base - leaves.base + line * 64), gap=1)
        if rng.random() < 0.05:
            builder.write(leaves.at(leaf_base - leaves.base), gap=2)
    return builder.build()
