"""Small-footprint Spec/Parsec stand-ins (paper Fig. 11 right).

These workloads fit comfortably in the TLB reach and cache hierarchy, so
DRAM page-table accesses are rare; they exist to verify TEMPO's hardware
does *no harm* when it has nothing to prefetch.  Footprints are tens of
megabytes with strong temporal/spatial locality and compute-heavy gaps.
"""

from repro.workloads.base import KB, MB, TraceBuilder


def build_small_stream(length, seed=0):
    """bzip2-like: sequential scans with a hot dictionary."""
    builder = TraceBuilder("bzip2_small", seed)
    data = builder.region("buffer", 32 * MB)
    dictionary = builder.region("dictionary", 512 * KB)
    offset = 0
    while len(builder) < length:
        builder.read(data.at(offset), gap=12)
        builder.read(dictionary.zipf(skew=0.9), gap=6)
        builder.write(data.at(offset + 64), gap=8)
        offset += 64
    return builder.build()


def build_small_blocked(length, seed=0):
    """gcc-like: blocked reuse over moderate working sets."""
    builder = TraceBuilder("gcc_small", seed)
    ir = builder.region("ir_nodes", 48 * MB)
    symbols = builder.region("symbols", 8 * MB)
    rng = builder.rng
    block = 0
    while len(builder) < length:
        block_base = (block % 96) * (512 * KB)
        for _ in range(8):
            builder.read(ir.at(block_base + rng.randint(0, 8191) * 64), gap=10)
        builder.read(symbols.zipf(skew=0.8), gap=8)
        block += 1
    return builder.build()


def build_small_zipf(length, seed=0):
    """astar-like: skewed graph search over a small map."""
    builder = TraceBuilder("astar_small", seed)
    grid = builder.region("map", 24 * MB)
    open_list = builder.region("open_list", 2 * MB)
    while len(builder) < length:
        builder.read(open_list.zipf(skew=0.95), gap=14)
        builder.read(grid.zipf(skew=0.85), gap=10)
        builder.write(open_list.zipf(skew=0.95), gap=8)
    return builder.build()


def build_small_compute(length, seed=0):
    """blackscholes-like: compute-bound sequential option sweeps."""
    builder = TraceBuilder("blackscholes_small", seed)
    options = builder.region("options", 16 * MB)
    offset = 0
    while len(builder) < length:
        builder.read(options.at(offset), gap=40)
        builder.write(options.at(offset + 32), gap=30)
        offset += 64
    return builder.build()


def build_small_pointer(length, seed=0):
    """swaptions-like: small pointer-rich working set with heavy math."""
    builder = TraceBuilder("swaptions_small", seed)
    paths = builder.region("paths", 20 * MB)
    rng = builder.rng
    while len(builder) < length:
        for _ in range(3):
            builder.read(paths.zipf(skew=0.8), gap=25)
        if rng.random() < 0.5:
            builder.write(paths.zipf(skew=0.8), gap=15)
    return builder.build()


def build_small_mining(length, seed=0):
    """freqmine-like: FP-tree mining with good temporal locality."""
    builder = TraceBuilder("freqmine_small", seed)
    tree = builder.region("fp_tree", 40 * MB)
    counts = builder.region("counts", 4 * MB)
    rng = builder.rng
    while len(builder) < length:
        node = tree.zipf(skew=0.9)
        for hop in range(rng.randint(2, 4)):
            builder.read(node + hop * 64, gap=9)
        builder.write(counts.zipf(skew=0.95), gap=7)
    return builder.build()
