"""Workload registry: name -> generator."""

from typing import List

from repro.common.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.bigdata import (
    build_canneal,
    build_graph500,
    build_illustris,
    build_lsh,
    build_mcf,
    build_sgms,
    build_spmv,
    build_xsbench,
)
from repro.workloads.extensions import build_btree, build_kvstore
from repro.workloads.small import (
    build_small_blocked,
    build_small_compute,
    build_small_mining,
    build_small_pointer,
    build_small_stream,
    build_small_zipf,
)

#: The paper's eight big-memory workloads, in its figure order.
BIGDATA_WORKLOADS = (
    Workload("mcf", True, "Spec mcf: network-simplex pointer chasing", build_mcf),
    Workload("canneal", True, "Parsec canneal: annealing element swaps", build_canneal),
    Workload("lsh", True, "locality-sensitive hashing probes", build_lsh),
    Workload("spmv", True, "sparse matrix-vector multiply", build_spmv),
    Workload("sgms", True, "symmetric Gauss-Seidel smoother", build_sgms),
    Workload("graph500", True, "BFS over a scale-free graph", build_graph500),
    Workload("xsbench", True, "Monte Carlo neutron transport", build_xsbench),
    Workload("illustris", True, "cosmological tree/particle simulation", build_illustris),
)

#: Small-footprint Spec/Parsec stand-ins (do-no-harm check).
SMALL_WORKLOADS = (
    Workload("bzip2_small", False, "sequential compression scans", build_small_stream),
    Workload("gcc_small", False, "blocked IR traversal", build_small_blocked),
    Workload("astar_small", False, "skewed small-map search", build_small_zipf),
    Workload("blackscholes_small", False, "compute-bound option sweeps", build_small_compute),
    Workload("swaptions_small", False, "small pointer-rich Monte Carlo", build_small_pointer),
    Workload("freqmine_small", False, "FP-tree mining", build_small_mining),
)

#: Extensions beyond the paper's suite (key-value store / B+-tree
#: templates from the introduction's motivation).
EXTENSION_WORKLOADS = (
    Workload("kvstore", True, "memcached-style point lookups (extension)", build_kvstore),
    Workload("btree", True, "B+-tree range scans (extension)", build_btree),
)

_ALL = {
    workload.name: workload
    for workload in BIGDATA_WORKLOADS + SMALL_WORKLOADS + EXTENSION_WORKLOADS
}


def workload_names(
    bigdata_only: bool = False, include_extensions: bool = False
) -> List[str]:
    if bigdata_only:
        return [workload.name for workload in BIGDATA_WORKLOADS]
    names = [workload.name for workload in BIGDATA_WORKLOADS + SMALL_WORKLOADS]
    if include_extensions:
        names += [workload.name for workload in EXTENSION_WORKLOADS]
    return names


def get_workload(name):
    workload = _ALL.get(name)
    if workload is None:
        raise ConfigError(
            "unknown workload %r (known: %s)" % (name, ", ".join(sorted(_ALL))),
            context={"workload": name, "known": sorted(_ALL)},
        )
    return workload


def make_trace(name, length=20000, seed=0):
    """Generate a trace for the named workload."""
    return get_workload(name).build(length, seed)
