"""Big-data workload generators (paper Sec. 5.1).

Each generator reproduces its application's memory-access signature at
the paper's scale: multi-hundred-gigabyte to terabyte virtual footprints
accessed sparsely and irregularly, with small hot metadata structures and
per-workload mixes of sequential, strided, pointer-chasing, and indirect
(``A[B[i]]``, labelled for IMP) streams.  ``gap`` values encode each
application's compute intensity between references.

Virtual footprints are huge but *sparse* -- the simulator materializes
page-table state only for touched pages -- which is exactly how the
governing ratios (footprint >> TLB reach, leaf page table >> LLC) stay
paper-faithful (DESIGN.md Sec. 2).

The ``thp_eligibility`` of each cold region is tuned per workload so the
transparent-hugepage coverage lands in the paper's Figure 10 (right)
band of roughly 50-80% of the footprint.
"""

from repro.workloads.base import GB, MB, TB, TraceBuilder


def build_xsbench(length, seed=0):
    """Monte Carlo neutron transport: per lookup, a binary search over
    hot unionized energy grids, then scattered cross-section reads over a
    terabyte nuclide table.  The paper's most PTW-bound workload."""
    builder = TraceBuilder("xsbench", seed)
    grid = builder.region("energy_grid", 8 * MB)
    nuclides = builder.region("nuclide_xs", 1 * TB, thp_eligibility=0.55)
    rng = builder.rng
    while len(builder) < length:
        # Binary search over the (cacheable) energy grid.
        builder.read(grid.zipf(skew=0.7), gap=1)
        # Cross-section lookups: one per nuclide sampled, scattered.
        stream = rng.randint(0, 3)
        for _ in range(7):
            builder.read(nuclides.clustered(hot_chunks=3584, tail=0.004), gap=1, pattern="xs%d" % stream)
    return builder.build()


def build_spmv(length, seed=0):
    """Sparse matrix-vector multiply: sequential streams over the matrix
    values/column indices, indirect gathers from the dense vector."""
    builder = TraceBuilder("spmv", seed)
    matrix = builder.region("csr_matrix", 768 * GB, thp_eligibility=0.70)
    vector = builder.region("x_vector", 512 * GB, thp_eligibility=0.70)
    result = builder.region("y_vector", 96 * GB, thp_eligibility=0.70)
    offset = 0
    row = 0
    while len(builder) < length:
        for _ in range(builder.rng.randint(2, 5)):  # non-zeros in this row
            builder.read(matrix.at(offset), gap=2)          # value (stream)
            builder.read(matrix.at(offset + 8), gap=0)      # col index (stream)
            builder.read(vector.clustered(align=8, hot_chunks=2048, tail=0.004), gap=1, pattern="x")  # gather
            offset += 16
        builder.write(result.at(row * 8), gap=2)
        row += 1
    return builder.build()


def build_graph500(length, seed=0):
    """BFS over a scale-free graph: random adjacency-list bases, short
    sequential edge bursts, scattered visited-set updates."""
    builder = TraceBuilder("graph500", seed)
    frontier = builder.region("frontier", 64 * MB)
    adjacency = builder.region("adjacency", 896 * GB, thp_eligibility=0.65)
    visited = builder.region("visited", 320 * GB, thp_eligibility=0.65)
    rng = builder.rng
    cursor = 0
    while len(builder) < length:
        builder.read(frontier.at(cursor * 8), gap=2)  # pop next vertex
        cursor += 1
        edge_base = adjacency.clustered(hot_chunks=2304, tail=0.006)
        degree = rng.geometric(3)
        for edge in range(min(degree, 6)):
            builder.read(edge_base + edge * 8, gap=1, pattern="adj")
            builder.read(visited.clustered(hot_chunks=1536, tail=0.004), gap=1, pattern="visit")
    return builder.build()


def build_mcf(length, seed=0):
    """Spec mcf: network-simplex pointer chasing over arc/node arrays --
    dependent chains no prefetcher predicts."""
    builder = TraceBuilder("mcf", seed)
    nodes = builder.region("nodes", 640 * GB, thp_eligibility=0.60)
    arcs = builder.region("arcs", 384 * GB, thp_eligibility=0.60)
    hot = builder.region("basket", 4 * MB)
    rng = builder.rng
    while len(builder) < length:
        builder.read(hot.zipf(skew=0.8), gap=3)
        for _ in range(rng.randint(3, 7)):  # chase a pricing chain
            builder.read(nodes.clustered(hot_chunks=2048, tail=0.004), gap=2)
            if rng.random() < 0.4:
                builder.read(arcs.clustered(hot_chunks=1024, tail=0.004), gap=1)
        if rng.random() < 0.2:
            builder.write(nodes.clustered(hot_chunks=2048, tail=0.004), gap=1)
    return builder.build()


def build_canneal(length, seed=0):
    """Parsec canneal: simulated-annealing element swaps -- pairs of
    random reads/writes with occasional spatially-adjacent sharing
    (which is why open-row policies suit it best, Fig. 14)."""
    builder = TraceBuilder("canneal", seed)
    netlist = builder.region("netlist", 1 * TB, thp_eligibility=0.75)
    hot = builder.region("temperature", 1 * MB)
    rng = builder.rng
    while len(builder) < length:
        builder.read(hot.zipf(skew=0.9), gap=4)
        first = netlist.clustered(hot_chunks=1792, tail=0.004)
        second = netlist.clustered(hot_chunks=1792, tail=0.004)
        builder.read(first, gap=2)
        builder.read(second, gap=1)
        # Threads often also touch spatially-adjacent netlist elements.
        for neighbour in range(rng.randint(1, 3)):
            builder.read(netlist.at(first - netlist.base + (neighbour + 1) * 64), gap=1)
        builder.write(first, gap=1)
        builder.write(second, gap=1)
    return builder.build()


def build_lsh(length, seed=0):
    """Locality-sensitive hashing: hot query vectors, scattered bucket
    probes across several hash tables."""
    builder = TraceBuilder("lsh", seed)
    query = builder.region("query_vectors", 16 * MB)
    tables = builder.region("hash_tables", 1 * TB, thp_eligibility=0.60)
    rng = builder.rng
    while len(builder) < length:
        for _ in range(3):  # hash computation reads
            builder.read(query.zipf(skew=0.6), gap=2)
        for table in range(4):  # probe each table's bucket
            bucket = tables.clustered(hot_chunks=1280, tail=0.004)
            builder.read(bucket, gap=1, pattern="t%d" % table)
            if rng.random() < 0.5:
                builder.read(tables.at(bucket - tables.base + 64), gap=1, pattern="t%d" % table)
    return builder.build()


def build_sgms(length, seed=0):
    """Symmetric Gauss-Seidel smoother on an *unstructured* mesh:
    forward/backward triangular-solve sweeps whose off-diagonal entries
    gather from irregularly numbered neighbour rows."""
    builder = TraceBuilder("sgms", seed)
    matrix = builder.region("lower_upper", 512 * GB, thp_eligibility=0.80)
    unknowns = builder.region("unknowns", 640 * GB, thp_eligibility=0.80)
    rng = builder.rng
    offset = 0
    while len(builder) < length:
        builder.read(matrix.at(offset), gap=3)  # row pointer / diagonal
        # Off-diagonal gathers: neighbours of an unstructured mesh row
        # are scattered through the unknown vector.
        for _ in range(rng.randint(2, 4)):
            builder.read(unknowns.clustered(hot_chunks=1536, tail=0.004), gap=1, pattern="nbr")
        builder.write(unknowns.clustered(hot_chunks=1536, tail=0.004), gap=2)
        offset += 64
    return builder.build()


def build_illustris(length, seed=0):
    """Illustris cosmology: octree walks + particle neighbour gathers --
    the poorest locality of the suite (closed-row wins, Fig. 14)."""
    builder = TraceBuilder("illustris", seed)
    tree = builder.region("octree", 512 * GB, thp_eligibility=0.50)
    particles = builder.region("particles", 1 * TB, thp_eligibility=0.50)
    rng = builder.rng
    while len(builder) < length:
        for _ in range(rng.randint(3, 6)):  # descend the tree
            builder.read(tree.clustered(hot_chunks=3072, tail=0.008), gap=1)
        for _ in range(rng.randint(2, 4)):  # gather neighbour particles
            builder.read(particles.clustered(hot_chunks=3072, tail=0.008), gap=1)
        if rng.random() < 0.3:
            builder.write(particles.clustered(hot_chunks=3072, tail=0.008), gap=1)
    return builder.build()
