"""Synthetic workload generators standing in for the paper's Pin traces.

One generator per evaluated application (Sec. 5.1): mcf, canneal, lsh,
spmv, sgms, graph500, xsbench, illustris -- each reproducing that
workload's memory-access *signature* (hot/cold mix, sequential vs.
irregular streams, indirect ``A[B[i]]`` patterns for IMP, footprint
scale) -- plus small-footprint Spec/Parsec stand-ins used to verify
TEMPO does no harm (Figure 11 right).
"""

from repro.workloads.base import TraceBuilder
from repro.workloads.registry import (
    BIGDATA_WORKLOADS,
    SMALL_WORKLOADS,
    make_trace,
    workload_names,
)

__all__ = [
    "TraceBuilder",
    "BIGDATA_WORKLOADS",
    "SMALL_WORKLOADS",
    "make_trace",
    "workload_names",
]
