"""Memory schedulers: FCFS, FR-FCFS (Rixner et al. [43]), BLISS
(Subramanian et al. [23, 24]), and TEMPO's transaction-queue grouping
wrapper (paper Sec. 4.3b).

A scheduler picks the next request to service from a channel's pending
list.  The controller supplies a *context* with two predicates:

``row_hit(request)``
    Would this request hit the currently open row of its bank?
``reserved_against(request)``
    Is the request's bank soft-reserved for a different CPU (TEMPO's
    BLISS grace period, Sec. 4.3)?

Conventions shared by every policy:

* only requests with ``not_before <= now`` are eligible (``None`` is
  returned when nothing is; the controller then advances its clock);
* writebacks are deprioritized -- they are scheduled only when nothing
  else is eligible;
* reservations are *delays*: a bank inside another CPU's grace period is
  off-limits until the reservation expires (the paper keeps the
  prefetched row open before switching to a competing application's
  references -- Sec. 4.3).  Reservations always expire, so no request is
  deferred by more than the grace period.
"""

from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.sched.request import KIND_PT, KIND_TEMPO_PREFETCH, KIND_WRITEBACK


def _eligible(pending, now, context):
    return [
        request
        for request in pending
        if request.not_before <= now and not context.reserved_against(request)
    ]


def _split_writebacks(candidates):
    normal = [request for request in candidates if request.kind != KIND_WRITEBACK]
    return (normal, False) if normal else (candidates, True)


def _oldest(candidates):
    return min(candidates, key=lambda request: (request.enqueue_time, request.req_id))


def _row_hit_oldest(candidates, context):
    """FR-FCFS core rule: oldest row-hitting request, else oldest."""
    hits = [request for request in candidates if context.row_hit(request)]
    return _oldest(hits) if hits else _oldest(candidates)


class FcfsScheduler:
    """Strict age order."""

    name = "fcfs"

    def __init__(self, config=None):
        self.stats = StatGroup("sched.fcfs")

    def pick(self, pending, now, context):
        candidates = _eligible(pending, now, context)
        if not candidates:
            return None
        candidates, _ = _split_writebacks(candidates)
        return _oldest(candidates)

    def on_scheduled(self, request, now):
        pass


class FrFcfsScheduler:
    """First-ready, first-come-first-served: row hits jump the queue."""

    name = "frfcfs"

    def __init__(self, config=None):
        self.stats = StatGroup("sched.frfcfs")

    def pick(self, pending, now, context):
        candidates = _eligible(pending, now, context)
        if not candidates:
            return None
        candidates, _ = _split_writebacks(candidates)
        return _row_hit_oldest(candidates, context)

    def on_scheduled(self, request, now):
        pass


class BlissScheduler:
    """Blacklisting memory scheduler.

    BLISS counts *consecutive* requests served from the same application;
    crossing the threshold blacklists that application (it caused
    interference), and blacklisted applications yield to the others.
    The blacklist clears periodically.

    TEMPO integration (paper Sec. 4.3): prefetches increment the
    consecutive counter with *half* the weight of demand references
    (``bliss_prefetch_increment`` = 1 vs ``bliss_demand_increment`` = 2
    by default); Figure 16 sweeps this ratio.
    """

    name = "bliss"

    def __init__(self, config):
        if config is None:
            raise ConfigError(
                "BlissScheduler needs a SchedulerConfig",
                context={"scheduler": "bliss"},
            )
        self.config = config
        self._blacklist = set()
        self._last_cpu = None
        self._consecutive_weight = 0
        self._next_clear = config.bliss_clearing_interval
        self.stats = StatGroup("sched.bliss")

    @property
    def _weighted_threshold(self):
        return self.config.bliss_blacklist_threshold * self.config.bliss_demand_increment

    def blacklisted(self, cpu):
        return cpu in self._blacklist

    def pick(self, pending, now, context):
        self._maybe_clear(now)
        candidates = _eligible(pending, now, context)
        if not candidates:
            return None
        candidates, _ = _split_writebacks(candidates)
        favoured = [
            request for request in candidates if request.cpu not in self._blacklist
        ]
        pool = favoured if favoured else candidates
        return _row_hit_oldest(pool, context)

    def on_scheduled(self, request, now):
        self._maybe_clear(now)
        if request.kind == KIND_WRITEBACK:
            return
        if request.cpu != self._last_cpu:
            self._last_cpu = request.cpu
            self._consecutive_weight = 0
        increment = (
            self.config.bliss_prefetch_increment
            if request.is_prefetch
            else self.config.bliss_demand_increment
        )
        self._consecutive_weight += increment
        if self._consecutive_weight >= self._weighted_threshold:
            if request.cpu not in self._blacklist:
                self._blacklist.add(request.cpu)
                self.stats.counter("blacklistings").add()
            self._consecutive_weight = 0

    def _maybe_clear(self, now):
        if now >= self._next_clear:
            self._blacklist.clear()
            self._next_clear = now + self.config.bliss_clearing_interval
            self.stats.counter("clearings").add()


class AtlasScheduler:
    """ATLAS-style least-attained-service scheduling (Kim et al. [19]).

    Each CPU accumulates *attained service* -- the DRAM service time its
    requests have consumed in the current quantum.  Requests from the
    CPU with the least attained service rank first (so bursty heavy
    applications cannot starve light ones); row hits break ties within
    a rank, then age.  Ranks reset every quantum.

    This scheduler is an extension beyond the paper's evaluated set
    (BLISS); the paper cites ATLAS as related work, and the ablation
    benchmark compares TEMPO across all four schedulers.
    """

    name = "atlas"

    def __init__(self, config):
        if config is None:
            raise ConfigError(
                "AtlasScheduler needs a SchedulerConfig",
                context={"scheduler": "atlas"},
            )
        self.config = config
        self._attained = {}
        self._next_reset = config.atlas_quantum_cycles
        self.stats = StatGroup("sched.atlas")

    def attained_service(self, cpu):
        return self._attained.get(cpu, 0)

    def pick(self, pending, now, context):
        self._maybe_reset(now)
        candidates = _eligible(pending, now, context)
        if not candidates:
            return None
        candidates, _ = _split_writebacks(candidates)
        least = min(self._attained.get(request.cpu, 0) for request in candidates)
        ranked = [
            request
            for request in candidates
            if self._attained.get(request.cpu, 0) == least
        ]
        return _row_hit_oldest(ranked, context)

    def on_scheduled(self, request, now):
        self._maybe_reset(now)
        if request.kind == KIND_WRITEBACK:
            return
        # Attained service is approximated by a unit charge per request;
        # the relative ranking (not the absolute number) is what matters.
        self._attained[request.cpu] = self._attained.get(request.cpu, 0) + 1

    def _maybe_reset(self, now):
        if now >= self._next_reset:
            self._attained.clear()
            self._next_reset = now + self.config.atlas_quantum_cycles
            self.stats.counter("quantum_resets").add()


class TempoGroupingScheduler:
    """TEMPO's transaction-queue scanning (paper Sec. 4.3b, Figure 8).

    Page-table requests lie on the critical path, so they go first --
    grouped so that translations sharing a DRAM row are serviced
    back-to-back.  Their prefetches follow, again grouped by row.
    Everything else falls through to the wrapped base policy.
    """

    def __init__(self, base):
        self.base = base
        self.name = "tempo+%s" % base.name
        self.stats = StatGroup("sched.tempo")

    def pick(self, pending, now, context):
        candidates = _eligible(pending, now, context)
        if not candidates:
            return None
        pt_requests = [request for request in candidates if request.kind == KIND_PT]
        if pt_requests:
            self.stats.counter("pt_first").add()
            return _row_hit_oldest(pt_requests, context)
        prefetches = [
            request for request in candidates if request.kind == KIND_TEMPO_PREFETCH
        ]
        if prefetches:
            self.stats.counter("prefetch_grouped").add()
            return _row_hit_oldest(prefetches, context)
        return self.base.pick(pending, now, context)

    def on_scheduled(self, request, now):
        self.base.on_scheduled(request, now)

    def __getattr__(self, attribute):
        # Delegate introspection helpers (e.g. BLISS's `blacklisted`).
        return getattr(self.base, attribute)


def make_scheduler(scheduler_config, tempo_enabled=False):
    """Build the configured scheduler, wrapped for TEMPO when enabled."""
    policy = scheduler_config.policy
    if policy == "fcfs":
        base = FcfsScheduler(scheduler_config)
    elif policy == "frfcfs":
        base = FrFcfsScheduler(scheduler_config)
    elif policy == "bliss":
        base = BlissScheduler(scheduler_config)
    elif policy == "atlas":
        base = AtlasScheduler(scheduler_config)
    else:
        raise ConfigError(
            "unknown scheduler %r" % (policy,),
            context={
                "policy": policy,
                "known": ["fcfs", "frfcfs", "bliss", "atlas"],
            },
        )
    return TempoGroupingScheduler(base) if tempo_enabled else base
