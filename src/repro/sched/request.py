"""Memory requests: the transaction-queue entries the controller
schedules.

The paper's Sec. 4.1 TxQ detail is modelled in the *slot cost*: a
TEMPO-tagged leaf page-table access carries the replay's cache-line
index, which does not fit a standard entry, so it is broken into two
transactions -- hence ``slots() == 2`` for tagged PT requests.
"""

import itertools

from repro.common.errors import ConfigError

KIND_DEMAND = "demand"
KIND_PT = "pt"
KIND_TEMPO_PREFETCH = "tempo_prefetch"
KIND_IMP_PREFETCH = "imp_prefetch"
KIND_WRITEBACK = "writeback"

_ALL_KINDS = (
    KIND_DEMAND,
    KIND_PT,
    KIND_TEMPO_PREFETCH,
    KIND_IMP_PREFETCH,
    KIND_WRITEBACK,
)

_request_ids = itertools.count()


class MemoryRequest:
    """One transaction headed for DRAM."""

    __slots__ = (
        "req_id",
        "paddr",
        "is_write",
        "kind",
        "cpu",
        "enqueue_time",
        "not_before",
        # --- page-table metadata ---
        "pt_leaf",
        # --- TEMPO metadata, set on tagged leaf-PT requests ---
        "tempo_tagged",
        "pte",
        "replay_line_index",
        # --- set when a TEMPO prefetch is created ---
        "origin_pt_id",
        # --- filled in at service time ---
        "start_time",
        "finish_time",
        "outcome",
    )

    def __init__(
        self,
        paddr,
        kind,
        cpu=0,
        is_write=False,
        enqueue_time=0,
        not_before=0,
        pt_leaf=False,
        tempo_tagged=False,
        pte=None,
        replay_line_index=0,
        origin_pt_id=None,
    ):
        if kind not in _ALL_KINDS:
            raise ConfigError(
                "unknown request kind %r" % (kind,),
                context={"kind": kind, "paddr": paddr},
            )
        self.req_id = next(_request_ids)
        self.paddr = paddr
        self.is_write = is_write
        self.kind = kind
        self.cpu = cpu
        self.enqueue_time = enqueue_time
        self.not_before = not_before
        self.pt_leaf = pt_leaf
        self.tempo_tagged = tempo_tagged
        self.pte = pte
        self.replay_line_index = replay_line_index
        self.origin_pt_id = origin_pt_id
        self.start_time = None
        self.finish_time = None
        self.outcome = None

    @property
    def is_prefetch(self):
        return self.kind in (KIND_TEMPO_PREFETCH, KIND_IMP_PREFETCH)

    @property
    def is_pt(self):
        return self.kind == KIND_PT

    def slots(self):
        """Transaction-queue slots consumed (tagged PT requests carry the
        piggybacked replay-line info in a second entry)."""
        return 2 if self.tempo_tagged else 1

    def __repr__(self):
        return "MemoryRequest(#%d %s 0x%x cpu%d)" % (
            self.req_id,
            self.kind,
            self.paddr,
            self.cpu,
        )
