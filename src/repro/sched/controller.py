"""The memory controller: transaction queues, scheduling, DRAM access,
and TEMPO's prefetch triggering (paper Figure 7).

Timing model (DESIGN.md Sec. 5): per-channel clocks plus per-bank
``ready_at`` serialization.  A request's service start is::

    start = max(channel_clock, bank.ready_at, request.not_before)

The channel's command/data bus is occupied for ``bus_cycles`` per
request, so requests to *different* banks of one channel can overlap
their array access with each other's bus transfer -- a first-order model
of bank-level parallelism.  Completion as seen by the core adds the
fixed ``controller_overhead_cycles`` (queue entry/exit + on-chip
network).

TEMPO hooks, all active only when a :class:`~repro.core.prefetch_engine.
PrefetchEngine` is installed:

* tagged leaf-PT requests occupy two TxQ slots and, once serviced,
  trigger the engine to enqueue the replay-data prefetch (not
  schedulable until the anticipation window passes);
* serviced prefetches record a :class:`PrefetchOutcome` the system
  simulator uses to decide whether the replay enjoys an LLC hit, a
  row-buffer hit, or neither;
* after a prefetch, the bank is soft-reserved for the triggering CPU for
  the grace period (paper Sec. 4.3, Figure 16 right);
* when the transaction queue is full, incoming prefetches are dropped
  (the paper's "pathological cases" in Figure 11 left).
"""

from repro.common.stats import StatGroup
from repro.dram.bank import OUTCOME_HIT, DramDevice
from repro.dram.subrow import SubRowSet
from repro.sched.request import (
    KIND_PT,
    KIND_TEMPO_PREFETCH,
    KIND_WRITEBACK,
    MemoryRequest,
)
from repro.sched.schedulers import make_scheduler


class PrefetchOutcome:
    """What TEMPO managed to do for one walk's replay."""

    __slots__ = ("paddr", "row_ready_at", "llc_ready_at", "dropped")

    def __init__(self, paddr, row_ready_at=None, llc_ready_at=None, dropped=False):
        self.paddr = paddr
        self.row_ready_at = row_ready_at
        self.llc_ready_at = llc_ready_at
        self.dropped = dropped

    def __repr__(self):
        if self.dropped:
            return "PrefetchOutcome(dropped)"
        return "PrefetchOutcome(0x%x, row@%s, llc@%s)" % (
            self.paddr,
            self.row_ready_at,
            self.llc_ready_at,
        )


class _SchedulerContext:
    """Predicates the scheduler evaluates against live bank state."""

    __slots__ = ("_controller", "now")

    def __init__(self, controller, now):
        self._controller = controller
        self.now = now

    def row_hit(self, request):
        return self._controller.device.classify(request.paddr, self.now) == OUTCOME_HIT

    def reserved_against(self, request):
        bank = self._controller.device.bank_for(request.paddr)
        return bank.reserved_against(request.cpu, self.now)


class MemoryController:
    """See module docstring."""

    def __init__(self, system_config, energy_model=None, prefetch_engine=None):
        config = system_config
        self.config = config
        tempo_on = config.tempo.enabled and prefetch_engine is not None
        bank_factory = None
        if config.dram.subrows.enabled:
            bank_factory = SubRowSet(config.dram, config.num_cores)
        self.device = DramDevice(config.dram, config.row_policy, bank_factory)
        self.scheduler = make_scheduler(
            config.scheduler, tempo_enabled=tempo_on and config.tempo.txq_grouping
        )
        self.engine = prefetch_engine
        self.energy = energy_model
        self._banks_per_channel = config.dram.banks_per_channel
        self._bus_cycles = config.dram.bus_cycles
        self._overhead = config.dram.controller_overhead_cycles
        self._capacity = config.dram.txq_capacity
        self._queues = [[] for _ in range(config.dram.channels)]
        self._clock = [0] * config.dram.channels
        self._outcomes = {}
        self.stats = StatGroup("controller")
        # Hot-path counter memos (avoid per-request string formatting).
        self._served_counters = {}
        self._outcome_counters = {}
        self._enqueued_counters = {}
        self._latency_hists = {}
        self._served_pt_leaf = self.stats.counter("served_pt_leaf")
        #: Nullable utilization tracks (:mod:`repro.obs.timeline`):
        #: per-channel bus occupancy plus the TEMPO engine's service time.
        self._util_channels = None
        self._util_engine = None

    def attach_util(self, channel_tracks, engine_track=None):
        """Wire busy/idle accounting into the utilization ledger."""
        self._util_channels = list(channel_tracks)
        self._util_engine = engine_track

    # ------------------------------------------------------------------
    # Submission API (used by the system simulator)
    # ------------------------------------------------------------------

    def channel_of(self, paddr):
        return self.device.address_map.bank_index(paddr) // self._banks_per_channel

    def _queue_slots_used(self, channel):
        return sum(request.slots() for request in self._queues[channel])

    def enqueue(self, request):
        """Place *request* in its channel's transaction queue.

        Returns False when a prefetch was dropped for lack of TxQ space
        (demand/PT/writeback requests are always accepted -- the sources
        throttle themselves by blocking).
        """
        channel = self.channel_of(request.paddr)
        if request.is_prefetch:
            used = self._queue_slots_used(channel)
            if used + request.slots() > self._capacity:
                self.stats.counter("prefetch_dropped_txq_full").add()
                if request.kind == KIND_TEMPO_PREFETCH:
                    self._outcomes[request.origin_pt_id] = PrefetchOutcome(
                        request.paddr, dropped=True
                    )
                return False
        self._queues[channel].append(request)
        counter = self._enqueued_counters.get(request.kind)
        if counter is None:
            counter = self.stats.counter("enqueued_%s" % request.kind)
            self._enqueued_counters[request.kind] = counter
        counter.value += 1
        return True

    def submit_and_wait(self, request, now):
        """Blocking demand path: enqueue, drain until serviced.

        Returns the completion time as seen by the core (service end +
        controller/NoC overhead), or ``None`` when a prefetch-kind
        request was dropped at enqueue for lack of TxQ space.
        """
        if not self.enqueue(request):
            return None
        channel = self.channel_of(request.paddr)
        if self._clock[channel] < now:
            self._clock[channel] = now
        while request.finish_time is None:
            self._service_next(channel)
        return request.finish_time

    def submit_async(self, request, now):
        """Fire-and-forget path (prefetches, writebacks)."""
        channel = self.channel_of(request.paddr)
        if self._clock[channel] < now:
            self._clock[channel] = now
        return self.enqueue(request)

    def submit_writeback(self, paddr, cpu, now):
        request = MemoryRequest(
            paddr, KIND_WRITEBACK, cpu=cpu, is_write=True, enqueue_time=now
        )
        self.submit_async(request, now)
        return request

    def advance_to(self, time):
        """Service everything that can start before *time* (lets queued
        prefetches land within the slack window before a replay)."""
        for channel in range(len(self._queues)):
            self._drain_channel_until(channel, time)

    def drain_all(self):
        """Service every queued request (end-of-simulation cleanup).

        Returns the latest channel clock afterwards.
        """
        for channel, queue in enumerate(self._queues):
            while queue:
                self._service_next(channel)
        return max(self._clock)

    # ------------------------------------------------------------------
    # Event-driven interface (multicore driver)
    # ------------------------------------------------------------------

    @property
    def num_channels(self):
        return len(self._queues)

    def has_pending(self, channel):
        return bool(self._queues[channel])

    def next_decision_time(self, channel):
        """Earliest time *channel* could service its next request, or
        ``None`` when its queue is empty.  The event-driven multicore
        driver services channels in decision-time order so cross-core
        causality holds."""
        queue = self._queues[channel]
        if not queue:
            return None
        now = self._clock[channel]
        earliest = min(self._available_at(request, now) for request in queue)
        return max(now, earliest)

    def service_one(self, channel):
        """Service exactly one request on *channel* (public wrapper)."""
        return self._service_next(channel)

    # ------------------------------------------------------------------
    # TEMPO bookkeeping
    # ------------------------------------------------------------------

    def take_prefetch_outcome(self, pt_req_id):
        """Pop the PrefetchOutcome recorded for a tagged PT request."""
        return self._outcomes.pop(pt_req_id, None)

    def cancel_prefetch(self, pt_req_id):
        """Remove a still-queued prefetch whose replay already went to
        DRAM on its own (late prefetch, now useless)."""
        for queue in self._queues:
            for position, request in enumerate(queue):
                if (
                    request.kind == KIND_TEMPO_PREFETCH
                    and request.origin_pt_id == pt_req_id
                ):
                    del queue[position]
                    self.stats.counter("prefetch_cancelled_late").add()
                    return True
        return False

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------

    def _drain_channel_until(self, channel, time):
        queue = self._queues[channel]
        while queue:
            earliest = min(
                max(self._clock[channel], request.not_before) for request in queue
            )
            if earliest >= time:
                return
            self._service_next(channel)

    def _service_next(self, channel):
        """Schedule and service exactly one request on *channel*."""
        queue = self._queues[channel]
        if not queue:
            return None
        now = self._clock[channel]
        context = _SchedulerContext(self, now)
        request = self.scheduler.pick(queue, now, context)
        if request is None:
            # Nothing eligible yet: jump to the earliest availability,
            # accounting for grace-period reservations (which always
            # expire, so this cannot deadlock).
            self._clock[channel] = min(
                self._available_at(req, now) for req in queue
            )
            context = _SchedulerContext(self, self._clock[channel])
            request = self.scheduler.pick(queue, self._clock[channel], context)
            if request is None:
                return None
        queue.remove(request)
        return self._service(channel, request)

    def _available_at(self, request, now):
        """Earliest time *request* becomes schedulable."""
        available = request.not_before
        bank = self.device.bank_for(request.paddr)
        if bank.reserved_against(request.cpu, max(now, available)):
            available = max(available, bank.reserved_until)
        return available

    def _service(self, channel, request):
        keep_open_extra = None
        latency_override = None
        if self.engine is not None and self.engine.active:
            if request.kind == KIND_PT and request.tempo_tagged:
                keep_open_extra = self.engine.config.wait_cycles
            elif request.kind == KIND_TEMPO_PREFETCH:
                # The row prefetch is a bare activation into the row
                # buffer (paper: 60-100 cycles), not a full column access.
                latency_override = self.engine.config.prefetch_row_cycles
        start, end, outcome = self.device.access(
            request.paddr,
            self._clock[channel],
            keep_open_extra,
            cpu=request.cpu,
            is_prefetch=request.is_prefetch,
            latency_override=latency_override,
        )
        request.start_time = start
        request.outcome = outcome
        request.finish_time = end + self._overhead
        # Bus occupied for the burst; the bank keeps working until `end`.
        self._clock[channel] = start + self._bus_cycles
        if self._util_channels is not None:
            self._util_channels[channel].busy(start, start + self._bus_cycles)
            if self._util_engine is not None and request.kind == KIND_TEMPO_PREFETCH:
                self._util_engine.busy(start, end)
        self.scheduler.on_scheduled(request, start)
        if self.energy is not None:
            self.energy.record_dram_access(outcome, request.is_prefetch)
        served = self._served_counters.get(request.kind)
        if served is None:
            served = self.stats.counter("served_%s" % request.kind)
            self._served_counters[request.kind] = served
        served.value += 1
        outcome_key = (request.kind, outcome)
        outcome_counter = self._outcome_counters.get(outcome_key)
        if outcome_counter is None:
            outcome_counter = self.stats.counter(
                "outcome_%s_%s" % (request.kind, outcome)
            )
            self._outcome_counters[outcome_key] = outcome_counter
        outcome_counter.value += 1
        # Service-latency distribution per kind (enqueue -> core-visible
        # completion); percentiles surface in the metrics export.
        latency_hist = self._latency_hists.get(request.kind)
        if latency_hist is None:
            latency_hist = self.stats.histogram("latency_%s" % request.kind)
            self._latency_hists[request.kind] = latency_hist
        latency_hist.record(request.finish_time - request.enqueue_time)
        if request.kind == KIND_PT and request.pt_leaf:
            self._served_pt_leaf.value += 1
        self._post_service_hooks(request, end)
        return request

    def _post_service_hooks(self, request, end):
        if self.engine is None:
            return
        if request.kind == KIND_PT and request.tempo_tagged:
            prefetch = self.engine.build_prefetch(request, end)
            if prefetch is not None:
                accepted = self.enqueue(prefetch)
                if accepted:
                    self.stats.counter("tempo_prefetches_enqueued").add()
            else:
                self._outcomes[request.req_id] = PrefetchOutcome(0, dropped=True)
        elif request.kind == KIND_TEMPO_PREFETCH:
            # The LLC ship-out starts when the row buffer has the data
            # (`end`); the controller-overhead return path overlaps it.
            self._outcomes[request.origin_pt_id] = PrefetchOutcome(
                request.paddr,
                row_ready_at=end,
                llc_ready_at=self.engine.llc_ready_time(end),
            )
            grace = self.engine.config.grace_period_cycles
            if grace > 0:
                self.device.bank_for(request.paddr).reserve(request.cpu, end + grace)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self):
        return max(self._clock)

    def pending_requests(self):
        return sum(len(queue) for queue in self._queues)

    def __repr__(self):
        return "MemoryController(%s, %d pending)" % (
            self.scheduler.name,
            self.pending_requests(),
        )
