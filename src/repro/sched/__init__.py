"""Memory controller and scheduling policies.

``request`` defines the transaction-queue entry; ``schedulers`` houses
FCFS, FR-FCFS and the BLISS blacklisting scheduler plus TEMPO's
transaction-queue grouping wrapper; ``controller`` is the memory
controller that ties the queue, the scheduler, the DRAM device, and
TEMPO's prefetch engine together.
"""

from repro.sched.request import (
    KIND_DEMAND,
    KIND_IMP_PREFETCH,
    KIND_PT,
    KIND_TEMPO_PREFETCH,
    KIND_WRITEBACK,
    MemoryRequest,
)
from repro.sched.schedulers import (
    AtlasScheduler,
    BlissScheduler,
    FcfsScheduler,
    FrFcfsScheduler,
    TempoGroupingScheduler,
    make_scheduler,
)
from repro.sched.controller import MemoryController, PrefetchOutcome

__all__ = [
    "KIND_DEMAND",
    "KIND_PT",
    "KIND_TEMPO_PREFETCH",
    "KIND_IMP_PREFETCH",
    "KIND_WRITEBACK",
    "MemoryRequest",
    "FcfsScheduler",
    "FrFcfsScheduler",
    "BlissScheduler",
    "AtlasScheduler",
    "TempoGroupingScheduler",
    "make_scheduler",
    "MemoryController",
    "PrefetchOutcome",
]
