"""Structured sweep telemetry: a JSONL event log for executor batches.

Every lifecycle event the :class:`~repro.exec.executor.ExperimentExecutor`
observes -- batch start/finish, per-cell state transitions, completions
with durations, cache hits, retries (visible as repeated ``cell_state``
attempts), quarantines, failures -- is appended to one file as a JSON
object per line.  The log is the progress-streaming substrate for sweep
tooling: ``tail -f`` it, or parse it after the fact for per-cell wall
times.

Timestamps (``t``) and durations are host wall-clock seconds; they
describe the *sweep*, never simulated time, so telemetry cannot perturb
results.  The file is opened in append mode and flushed per event so a
crashed run leaves a complete prefix.
"""

import json
import time
from typing import IO, Any, Dict, Optional

TELEMETRY_SCHEMA = 1


class TelemetryLog:
    """Append-only JSONL event writer; see module docstring.

    One instance may span several batches (e.g. ``repro report``); the
    executor summarises the event count into manifest provenance via
    :attr:`events_written`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events_written = 0
        self._stream: Optional[IO[str]] = open(path, "a")
        #: key -> wall-clock start of its current running attempt.
        self._running_since: Dict[str, float] = {}

    def _emit(self, event: str, fields: Dict[str, Any]) -> None:
        if self._stream is None:
            return
        record: Dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA,
            "event": event,
            "t": time.time(),
        }
        record.update(fields)
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        self.events_written += 1

    def emit(self, event: str, fields: Optional[Dict[str, Any]] = None) -> None:
        """Append one caller-defined event (same envelope as the
        executor's own: ``schema``, ``event``, wall-clock ``t``).

        This is the extension point for layers above the executor --
        the sweep service brackets each job's executor events with
        ``job_started`` / ``job_finished`` records in the same stream,
        so one JSONL file tells a job's whole story in order.
        """
        self._emit(event, dict(fields) if fields else {})

    # -- batch lifecycle ------------------------------------------------

    def batch_start(self, cells: int, unique: int) -> None:
        self._emit("batch_start", {"cells": cells, "unique": unique})

    def batch_finish(self, counters: Dict[str, int]) -> None:
        self._emit("batch_finish", {"counters": dict(counters)})

    # -- per-cell events ------------------------------------------------

    def cell_state(self, key: str, state: str, attempt: int, info: Optional[str]) -> None:
        """A scheduler state transition (``running`` at attempt > 0 is a
        retry)."""
        if state == "running":
            self._running_since[key] = time.time()
        fields: Dict[str, Any] = {"key": key, "state": state, "attempt": attempt}
        if info:
            fields["info"] = str(info)
        self._emit("cell_state", fields)

    def cell_done(self, key: str, attempt: int) -> None:
        started = self._running_since.pop(key, None)
        fields: Dict[str, Any] = {"key": key, "attempt": attempt}
        if started is not None:
            fields["duration_seconds"] = time.time() - started
        self._emit("cell_done", fields)

    def cell_failed(self, key: str, attempts: int, error: str) -> None:
        self._running_since.pop(key, None)
        self._emit("cell_failed", {"key": key, "attempts": attempts, "error": error})

    def cache_hit(self, key: str, source: str, resumed: bool = False) -> None:
        """*source* is ``memo`` or ``disk``."""
        self._emit("cache_hit", {"key": key, "source": source, "resumed": resumed})

    def quarantine(self, key: str, reason: str) -> None:
        self._emit("quarantine", {"key": key, "reason": reason})

    # -- pool fabric events ---------------------------------------------

    def worker_event(self, action: str, worker_id: int, info: str = "") -> None:
        """A pool-worker lifecycle event (``spawned`` / ``respawned`` /
        ``crashed`` / ``stalled`` / ``poison``); *info* carries the exit
        code or the cell key prefix involved."""
        fields: Dict[str, Any] = {"action": action, "worker": worker_id}
        if info:
            fields["info"] = str(info)
        self._emit("worker", fields)

    def backend_degraded(self, backend: str, failures: int, error: str) -> None:
        """The remote cache backend failed *failures* operation(s) and
        the cache degraded to its local tier."""
        self._emit(
            "backend_degraded",
            {"backend": backend, "failures": failures, "error": error},
        )

    # -------------------------------------------------------------------

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __repr__(self) -> str:
        return "TelemetryLog(%r, %d events)" % (self.path, self.events_written)
