"""Parallel experiment execution with content-addressed caching.

The evaluation suite decomposes every figure driver into independent
simulation *cells*; this package schedules them -- across
``multiprocessing`` workers, through an on-disk result/trace cache, and
back together in driver order.  See ``docs/performance.md`` for the
architecture and the cache-key derivation.
"""

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.cells import PAYLOAD_SCHEMA, SimCell, trace_key
from repro.exec.executor import ExperimentExecutor, simulate_cell
from repro.exec.faults import FaultPlan, FaultSpec, InjectedFault
from repro.exec.resilience import (
    CellExecutionError,
    CellFailure,
    CheckpointStore,
    ResiliencePolicy,
    SweepAborted,
    missing_cell_payload,
)
from repro.exec.serialize import payload_to_result, result_to_payload
from repro.exec.telemetry import TelemetryLog

__all__ = [
    "CellExecutionError",
    "CellFailure",
    "CheckpointStore",
    "ExperimentExecutor",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "PAYLOAD_SCHEMA",
    "ResiliencePolicy",
    "ResultCache",
    "SimCell",
    "SweepAborted",
    "TelemetryLog",
    "default_cache_dir",
    "missing_cell_payload",
    "payload_to_result",
    "result_to_payload",
    "simulate_cell",
    "trace_key",
]
