"""Parallel experiment execution with content-addressed caching.

The evaluation suite decomposes every figure driver into independent
simulation *cells*; this package schedules them -- across
``multiprocessing`` workers, through an on-disk result/trace cache, and
back together in driver order.  See ``docs/performance.md`` for the
architecture and the cache-key derivation.
"""

from repro.exec.backend import (
    CacheBackend,
    CacheBackendError,
    HTTPBackend,
    LocalDirBackend,
)
from repro.exec.cache import QuarantineReason, ResultCache, default_cache_dir
from repro.exec.cells import PAYLOAD_SCHEMA, SimCell, trace_key
from repro.exec.executor import ExperimentExecutor, simulate_cell
from repro.exec.faults import FaultPlan, FaultSpec, InjectedFault
from repro.exec.pool import PoolConfig, WorkerContext, execute_pooled
from repro.exec.resilience import (
    CellExecutionError,
    CellFailure,
    CheckpointStore,
    ResiliencePolicy,
    SweepAborted,
    missing_cell_payload,
)
from repro.exec.serialize import payload_to_result, result_to_payload
from repro.exec.telemetry import TelemetryLog

__all__ = [
    "CacheBackend",
    "CacheBackendError",
    "CellExecutionError",
    "CellFailure",
    "CheckpointStore",
    "ExperimentExecutor",
    "FaultPlan",
    "FaultSpec",
    "HTTPBackend",
    "InjectedFault",
    "LocalDirBackend",
    "PAYLOAD_SCHEMA",
    "PoolConfig",
    "QuarantineReason",
    "ResiliencePolicy",
    "ResultCache",
    "SimCell",
    "SweepAborted",
    "TelemetryLog",
    "WorkerContext",
    "default_cache_dir",
    "execute_pooled",
    "missing_cell_payload",
    "payload_to_result",
    "result_to_payload",
    "simulate_cell",
    "trace_key",
]
