"""The parallel experiment executor.

``ExperimentExecutor.run_cells`` takes an ordered list of
:class:`~repro.exec.cells.SimCell` and returns the matching
:class:`~repro.sim.metrics.SimulationResult` list *in that order*, no
matter where each result came from:

1. the in-process memo (same cell earlier this invocation -- this is
   what lets ``repro report`` never simulate a cell twice even with the
   disk cache disabled),
2. the content-addressed disk cache (same cell in any earlier
   invocation on this machine), or
3. a fresh simulation -- inline when ``jobs == 1``, fanned out across a
   ``multiprocessing`` pool otherwise.

Determinism: cells carry their own seed and every simulation derives all
randomness from it (:mod:`repro.common.rng`), so scheduling order cannot
leak into results -- a pool run is bit-identical to a serial run.
"""

import multiprocessing

from repro.exec.cache import ResultCache
from repro.exec.cells import PAYLOAD_SCHEMA, SimCell
from repro.exec.serialize import payload_to_result, result_to_payload


def simulate_cell(cell, cache=None, trace_memo=None):
    """Run one cell to completion and return its payload dict.

    *cache* (a :class:`~repro.exec.cache.ResultCache`) supplies and
    receives persisted traces; *trace_memo* is an optional in-process
    ``(name, length, seed) -> Trace`` memo for serial execution.
    """
    # Imported here so pool workers pay the import once per process and
    # the module stays importable without the full sim stack.
    from repro.sim.system import SystemSimulator
    from repro.workloads.registry import make_trace

    traces = []
    for name in cell.workloads:
        memo_key = (name, cell.length, cell.seed)
        trace = trace_memo.get(memo_key) if trace_memo is not None else None
        if trace is None and cache is not None:
            trace = cache.get_trace(name, cell.length, cell.seed)
        if trace is None:
            trace = make_trace(name, length=cell.length, seed=cell.seed)
            if cache is not None:
                cache.put_trace(trace, cell.length, cell.seed)
        if trace_memo is not None:
            trace_memo[memo_key] = trace
        traces.append(trace)
    result = SystemSimulator(cell.config, traces, seed=cell.seed).run()
    return result_to_payload(result)


def _pool_worker(args):
    """Top-level (picklable) pool entry point: simulate one cell."""
    cell, cache_root = args
    cache = ResultCache(cache_root) if cache_root is not None else None
    return simulate_cell(cell, cache)


class ExperimentExecutor:
    """Schedules cells across workers, through the cache, in order."""

    def __init__(self, jobs=1, cache=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        #: Optional :class:`~repro.exec.cache.ResultCache`; ``None``
        #: keeps everything in-process (the memo still deduplicates).
        self.cache = cache
        self._memo = {}
        self._trace_memo = {}
        #: Where results came from, cumulatively: ``simulated`` fresh
        #: runs, ``cache_hits`` disk loads, ``memo_hits`` in-process
        #: reuse, ``deduped`` duplicate cells within one batch.
        self.counters = {
            "simulated": 0,
            "cache_hits": 0,
            "memo_hits": 0,
            "deduped": 0,
        }

    # ------------------------------------------------------------------

    def run_cell(self, cell):
        """Convenience wrapper: one cell, one result."""
        return self.run_cells([cell])[0]

    def run_cells(self, cells):
        """Resolve every cell; returns results in input order."""
        cells = list(cells)
        keys = [cell.key() for cell in cells]

        unique = {}
        for cell, key in zip(cells, keys):
            unique.setdefault(key, cell)
        self.counters["deduped"] += len(cells) - len(unique)

        resolved = {}
        pending = {}
        for key, cell in unique.items():
            payload = self._memo.get(key)
            if payload is not None:
                self.counters["memo_hits"] += 1
                resolved[key] = payload
                continue
            if self.cache is not None:
                payload = self.cache.get(key)
                if payload is not None and payload.get("schema") == PAYLOAD_SCHEMA:
                    self.counters["cache_hits"] += 1
                    self._memo[key] = payload
                    resolved[key] = payload
                    continue
            pending[key] = cell

        if pending:
            self.counters["simulated"] += len(pending)
            for key, payload in self._execute(pending):
                self._memo[key] = payload
                resolved[key] = payload
                if self.cache is not None:
                    self.cache.put(key, payload)

        return [payload_to_result(resolved[key]) for key in keys]

    def _execute(self, pending):
        """Simulate the missing cells; yields ``(key, payload)``."""
        if self.jobs > 1 and len(pending) > 1:
            cache_root = self.cache.root if self.cache is not None else None
            items = [(cell, cache_root) for cell in pending.values()]
            workers = min(self.jobs, len(items))
            with multiprocessing.get_context().Pool(workers) as pool:
                payloads = pool.map(_pool_worker, items)
            return list(zip(pending.keys(), payloads))
        return [
            (key, simulate_cell(cell, self.cache, self._trace_memo))
            for key, cell in pending.items()
        ]

    # ------------------------------------------------------------------

    def summary(self):
        """One status line: where this executor's results came from."""
        return (
            "executor: %(simulated)d simulated, %(cache_hits)d from cache, "
            "%(memo_hits)d memoized, %(deduped)d deduplicated" % self.counters
        )

    def __repr__(self):
        return "ExperimentExecutor(jobs=%d, cache=%r)" % (self.jobs, self.cache)
