"""The parallel, fault-tolerant experiment executor.

``ExperimentExecutor.run_cells`` takes an ordered list of
:class:`~repro.exec.cells.SimCell` and returns the matching
:class:`~repro.sim.metrics.SimulationResult` list *in that order*, no
matter where each result came from:

1. the in-process memo (same cell earlier this invocation -- this is
   what lets ``repro report`` never simulate a cell twice even with the
   disk cache disabled),
2. the content-addressed disk cache (same cell in any earlier
   invocation on this machine), or
3. a fresh simulation -- inline when nothing requires process
   isolation, otherwise on the supervised persistent worker pool
   (``workers`` long-lived processes pulling cells from a shared
   queue, :mod:`repro.exec.pool`) through
   :func:`repro.exec.resilience.execute_resilient`.

Fault tolerance (see ``docs/resilience.md`` and
``docs/distribution.md``): every batch journals per-cell state to a
:class:`~repro.exec.resilience.CheckpointStore` under the cache root,
so an interrupted sweep resumed with ``resume=True`` re-simulates
nothing that completed.  Failing cells are retried per the
:class:`~repro.exec.resilience.ResiliencePolicy` (timeouts kill the
worker; crashed and heartbeat-stalled workers are respawned and their
claims requeued; a cell that kills several workers in a row is
quarantined as a poison cell); corrupt or schema-stale cache entries
are quarantined -- moved aside, never deleted -- and re-simulated; a
failing remote cache backend degrades to the local tier; and with
``allow_partial`` a cell that exhausts its retries degrades to an
explicitly-marked missing payload (recorded in
:attr:`ExperimentExecutor.failed_cells`) instead of aborting the
campaign.

Determinism: cells carry their own seed and every simulation derives all
randomness from it (:mod:`repro.common.rng`), so scheduling order,
retries, and resumption cannot leak into results -- an interrupted,
resumed, parallel run is bit-identical to a serial uncached one.
"""

import contextlib
import os

from typing import Optional, Union

from repro.exec.cache import QuarantineReason, ResultCache
from repro.exec.cells import PAYLOAD_SCHEMA, SimCell
from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.pool import PoolConfig, WorkerContext
from repro.exec.resilience import (
    CellExecutionError,
    CheckpointStore,
    ResiliencePolicy,
    execute_resilient,
    missing_cell_payload,
)
from repro.exec.serialize import payload_to_result, result_to_payload
from repro.exec.telemetry import TelemetryLog


def simulate_cell(cell, cache=None, trace_memo=None, check_invariants=None, kernel=None):
    """Run one cell to completion and return its payload dict.

    *cache* (a :class:`~repro.exec.cache.ResultCache`) supplies and
    receives persisted traces; *trace_memo* is an optional in-process
    ``(name, length, seed) -> Trace`` memo for serial execution;
    *check_invariants* (``off``/``sample``/``full``) arms the online
    audit suite for the run; *kernel* (``scalar``/``batch``) selects the
    hot-loop kernel (bit-identical results either way -- the choice is
    recorded in the payload's ``manifest.kernel`` stat).
    """
    # Imported here so pool workers pay the import once per process and
    # the module stays importable without the full sim stack.
    from repro.sim.system import SystemSimulator
    from repro.workloads.registry import make_trace

    traces = []
    for name in cell.workloads:
        memo_key = (name, cell.length, cell.seed)
        trace = trace_memo.get(memo_key) if trace_memo is not None else None
        if trace is None and cache is not None:
            trace = cache.get_trace(name, cell.length, cell.seed)
        if trace is None:
            trace = make_trace(name, length=cell.length, seed=cell.seed)
            if cache is not None:
                cache.put_trace(trace, cell.length, cell.seed)
        if trace_memo is not None:
            trace_memo[memo_key] = trace
        traces.append(trace)
    result = SystemSimulator(
        cell.config,
        traces,
        seed=cell.seed,
        check_invariants=check_invariants,
        kernel=kernel,
    ).run()
    return result_to_payload(result)


class ExperimentExecutor:
    """Schedules cells across the worker pool, through the cache, in
    order.  ``workers`` is the pool size; ``jobs`` is its legacy alias
    (kept for callers and flags that predate the pool -- when both are
    given, ``workers`` wins)."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        resilience: Optional[ResiliencePolicy] = None,
        faults: Optional[Union[FaultSpec, FaultPlan]] = None,
        resume: bool = False,
        check_invariants: Optional[str] = None,
        telemetry: Optional[TelemetryLog] = None,
        kernel: Optional[str] = None,
        workers: Optional[int] = None,
        pool: Optional[PoolConfig] = None,
    ) -> None:
        effective = workers if workers is not None else jobs
        if effective < 1:
            raise ValueError("workers must be >= 1")
        #: Pool size: how many persistent worker processes a batch that
        #: needs process isolation fans out across.
        self.workers = effective
        #: Optional :class:`~repro.exec.pool.PoolConfig` override for
        #: supervision knobs (heartbeat cadence, poison threshold).
        #: When set it is used verbatim, including its ``workers``.
        self.pool = pool
        #: ``scalar``/``batch``: the hot-loop kernel every simulation
        #: this executor runs uses (recorded in each result's
        #: ``manifest.kernel``; both kernels are bit-identical).
        self.kernel = kernel or "scalar"
        #: Optional :class:`~repro.exec.telemetry.TelemetryLog`: every
        #: batch/cell lifecycle event is appended to its JSONL file.
        self.telemetry = telemetry
        #: ``off``/``sample``/``full``: forwarded to every simulation
        #: this executor runs (inline and worker-process alike).
        self.check_invariants = check_invariants
        #: Optional :class:`~repro.exec.cache.ResultCache`; ``None``
        #: keeps everything in-process (the memo still deduplicates).
        self.cache = cache
        #: :class:`~repro.exec.resilience.ResiliencePolicy` governing
        #: retries, timeouts, and partial-result degradation.
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        #: Optional fault injection: a :class:`~repro.exec.faults.FaultSpec`
        #: (materialized per batch) or a concrete ``FaultPlan``.
        self.faults = faults
        #: When True, trust the batch's checkpoint journal: cells it
        #: records as done resolve from cache and count as ``resumed``.
        self.resume = resume
        #: Terminal :class:`~repro.exec.resilience.CellFailure` records
        #: (only under ``allow_partial``; otherwise the batch raises).
        self.failed_cells = []
        self._memo = {}
        self._trace_memo = {}
        #: Where results came from, cumulatively: ``simulated`` fresh
        #: runs, ``cache_hits`` disk loads, ``memo_hits`` in-process
        #: reuse, ``deduped`` duplicate cells within one batch -- plus
        #: the resilience tallies (``resumed`` checkpoint-verified cache
        #: hits, ``retries``/``timeouts``/``crashes`` recovered faults,
        #: ``quarantined`` bad cache entries moved aside, ``failed``
        #: cells degraded to missing) and the pool-fabric tallies
        #: (``stalls`` heartbeat-deadline kills, ``steals`` cells
        #: claimed by a non-home worker, ``workers_spawned`` /
        #: ``workers_respawned`` pool lifecycle, ``poison_cells``
        #: quarantined worker-killers, ``backend_degraded`` failed
        #: remote-cache operations).
        self.counters = {
            "simulated": 0,
            "cache_hits": 0,
            "memo_hits": 0,
            "deduped": 0,
            "resumed": 0,
            "retries": 0,
            "timeouts": 0,
            "crashes": 0,
            "stalls": 0,
            "steals": 0,
            "workers_spawned": 0,
            "workers_respawned": 0,
            "poison_cells": 0,
            "backend_degraded": 0,
            "quarantined": 0,
            "failed": 0,
            "inline_batches": 0,
            "pooled_batches": 0,
        }
        #: Per-cause quarantine tally (``corrupt`` / ``stale-schema`` /
        #: ``invariant-violation`` / ``poison-cell``), surfaced by
        #: :meth:`summary` and the report's provenance section.
        self.quarantine_reasons = {}

    @property
    def jobs(self):
        """Legacy alias for :attr:`workers` (pre-pool callers and the
        service health endpoint read it)."""
        return self.workers

    # ------------------------------------------------------------------
    # Job scoping -- the hooks the sweep service builds on.  One
    # long-lived executor serves many submitted jobs back to back; these
    # let each job carry its own telemetry log and option overrides and
    # report per-job counter deltas, while the memo, cache, and
    # cumulative counters stay shared (that sharing is the whole point:
    # a warm cell is warm for every client).

    def counters_snapshot(self):
        """A copy of the cumulative counters, for later delta-ing."""
        return dict(self.counters)

    def counters_since(self, snapshot):
        """Per-counter deltas since a :meth:`counters_snapshot`."""
        return {
            name: value - snapshot.get(name, 0)
            for name, value in self.counters.items()
        }

    @contextlib.contextmanager
    def job_scope(self, telemetry=None, kernel=None, resilience=None, resume=None):
        """Temporarily override per-job knobs; restores them on exit.

        ``None`` keeps the executor's current value.  Callers must not
        overlap scopes -- the sweep service serializes jobs around the
        shared executor precisely so this swap is race-free.
        """
        saved = (self.telemetry, self.kernel, self.resilience, self.resume)
        if telemetry is not None:
            self.telemetry = telemetry
        if kernel is not None:
            self.kernel = kernel
        if resilience is not None:
            self.resilience = resilience
        if resume is not None:
            self.resume = resume
        try:
            yield self
        finally:
            self.telemetry, self.kernel, self.resilience, self.resume = saved

    # ------------------------------------------------------------------

    def run_cell(self, cell):
        """Convenience wrapper: one cell, one result."""
        return self.run_cells([cell])[0]

    def run_cells(self, cells):
        """Resolve every cell; returns results in input order."""
        cells = list(cells)
        keys = [cell.key() for cell in cells]

        unique = {}
        for cell, key in zip(cells, keys):
            unique.setdefault(key, cell)
        self.counters["deduped"] += len(cells) - len(unique)
        if self.telemetry is not None:
            self.telemetry.batch_start(len(cells), len(unique))

        plan = self._materialize_faults(unique)
        self._inject_corruption(plan)
        if plan is not None and plan.cache_unavailable and self.cache is not None:
            self.cache.inject_unavailable(plan.cache_unavailable)

        checkpoint = None
        prior_done = set()
        if self.cache is not None:
            checkpoint = CheckpointStore.for_batch(self.cache.root, list(unique))
            if self.resume:
                prior_done = checkpoint.done_keys()
            else:
                checkpoint.reset()

        try:
            resolved = {}
            pending = {}
            for key, cell in unique.items():
                payload = self._resolve_cached(key, prior_done, checkpoint)
                if payload is not None:
                    resolved[key] = payload
                    continue
                pending[key] = cell

            if pending:
                self._execute(pending, resolved, plan, checkpoint)
        finally:
            if checkpoint is not None:
                checkpoint.close()
            self._sync_backend_degraded()
            if self.telemetry is not None:
                self.telemetry.batch_finish(self.counters)

        return [payload_to_result(resolved[key]) for key in keys]

    def _resolve_cached(self, key, prior_done, checkpoint):
        """Try the memo, then the disk cache (quarantining bad entries).

        Returns the payload or ``None`` when the cell must simulate.
        """
        payload = self._memo.get(key)
        if payload is not None:
            self.counters["memo_hits"] += 1
            if self.telemetry is not None:
                self.telemetry.cache_hit(key, "memo")
            return payload
        if self.cache is None:
            return None
        payload, status = self.cache.get_entry(key)
        if status == "corrupt":
            self._quarantine(key, QuarantineReason.CORRUPT)
            return None
        if payload is None:
            return None
        if payload.get("schema") != PAYLOAD_SCHEMA:
            self._quarantine(key, QuarantineReason.STALE_SCHEMA)
            return None
        self.counters["cache_hits"] += 1
        if key in prior_done:
            self.counters["resumed"] += 1
        if self.telemetry is not None:
            self.telemetry.cache_hit(key, "disk", resumed=key in prior_done)
        self._memo[key] = payload
        if checkpoint is not None:
            checkpoint.record(key, "done", info="cache")
        return payload

    def _quarantine(self, key, reason, evidence=None):
        """Move the entry aside (or write an evidence record when there
        is nothing to move) and tally the cause."""
        moved = self.cache.quarantine(key, reason)
        if moved is None and evidence is not None:
            self.cache.quarantine_record(key, reason, evidence)
        self.counters["quarantined"] += 1
        label = getattr(reason, "value", reason)
        self.quarantine_reasons[label] = self.quarantine_reasons.get(label, 0) + 1
        if self.telemetry is not None:
            self.telemetry.quarantine(key, label)

    def _execute(self, pending, resolved, plan, checkpoint):
        """Drive the missing cells through the resilient scheduler.

        Completed payloads land in the memo, the disk cache, and the
        checkpoint journal *as they finish*, so an abort mid-batch never
        loses finished work.
        """
        failures = []
        telemetry = self.telemetry

        def on_state(key, state, attempt, info):
            if telemetry is not None:
                telemetry.cell_state(key, state, attempt, info)
            if checkpoint is not None:
                checkpoint.record(key, state, attempt, info)

        def on_done(key, payload, attempt):
            self.counters["simulated"] += 1
            if telemetry is not None:
                telemetry.cell_done(key, attempt)
            self._memo[key] = payload
            resolved[key] = payload
            if self.cache is not None:
                self.cache.put(key, payload)
            if checkpoint is not None:
                checkpoint.record(key, "done", attempt)

        def on_failed(failure):
            failures.append(failure)
            if telemetry is not None:
                telemetry.cell_failed(failure.key, failure.attempts, failure.error)
            if self.cache is not None and failure.error.startswith(
                "InvariantViolation"
            ):
                # The violating run's result must never be trusted: move
                # any cached entry aside and leave an evidence record.
                self._quarantine(
                    failure.key,
                    QuarantineReason.INVARIANT_VIOLATION,
                    evidence={
                        "key": failure.key,
                        "error": failure.error,
                        "attempts": failure.attempts,
                    },
                )
            if self.cache is not None and failure.error.startswith("PoisonCell"):
                # The cell killed several pool workers in a row; leave
                # evidence so the kill count and exit code survive the
                # run (docs/distribution.md).
                self._quarantine(
                    failure.key,
                    QuarantineReason.POISON_CELL,
                    evidence={
                        "key": failure.key,
                        "error": failure.error,
                        "attempts": failure.attempts,
                        "workloads": failure.workloads,
                    },
                )
            if checkpoint is not None:
                checkpoint.record(
                    failure.key, "failed", failure.attempts, failure.error
                )

        def run_inline(cell):
            return simulate_cell(
                cell,
                self.cache,
                self._trace_memo,
                check_invariants=self.check_invariants,
                kernel=self.kernel,
            )

        def on_worker(action, worker_id, info):
            if telemetry is not None:
                telemetry.worker_event(action, worker_id, info)

        worker_context = WorkerContext(
            cache_root=self.cache.root if self.cache is not None else None,
            check_invariants=self.check_invariants,
            kernel=self.kernel,
        )

        stats = execute_resilient(
            pending,
            workers=self.workers,
            policy=self.resilience,
            plan=plan,
            run_inline=run_inline,
            worker_context=worker_context,
            pool=self.pool,
            on_state=on_state,
            on_done=on_done,
            on_failed=on_failed,
            on_worker=on_worker,
        )
        for name in (
            "retries",
            "timeouts",
            "crashes",
            "stalls",
            "steals",
            "workers_spawned",
            "workers_respawned",
            "poison_cells",
        ):
            self.counters[name] += stats.get(name, 0)
        if stats.get("pooled"):
            self.counters["pooled_batches"] += 1
        else:
            self.counters["inline_batches"] += 1

        if failures:
            self.failed_cells.extend(failures)
            self.counters["failed"] += len(failures)
            if not self.resilience.allow_partial:
                raise CellExecutionError(
                    failures,
                    context={
                        "failed_keys": [f.key[:12] for f in failures],
                        "attempts": {f.key[:12]: f.attempts for f in failures},
                    },
                )
            for failure in failures:
                # Degraded stand-in: never memoized or cached, so a
                # later run retries the cell for real.
                resolved[failure.key] = missing_cell_payload(pending[failure.key])

    # ------------------------------------------------------------------

    def _sync_backend_degraded(self):
        """Fold the cache's remote-failure tally into the counters (and
        telemetry) once per batch."""
        if self.cache is None:
            return
        delta = self.cache.backend_degraded - self.counters["backend_degraded"]
        if delta <= 0:
            return
        self.counters["backend_degraded"] += delta
        if self.telemetry is not None:
            remote = self.cache.remote
            self.telemetry.backend_degraded(
                remote.describe() if remote is not None else "(injected)",
                delta,
                self.cache.degrade_error or "",
            )

    def _materialize_faults(self, unique):
        """Resolve ``self.faults`` to a concrete plan for this batch."""
        if self.faults is None:
            return None
        if isinstance(self.faults, FaultPlan):
            return self.faults
        if isinstance(self.faults, FaultSpec):
            return self.faults.materialize(list(unique))
        raise TypeError("faults must be a FaultSpec or FaultPlan")

    def _inject_corruption(self, plan):
        """Garble the cache entries a fault plan marks for corruption
        (the harness half of the quarantine test path)."""
        if plan is None or self.cache is None:
            return
        for key in plan.corrupt:
            path = self.cache.result_path(key)
            if os.path.exists(path):
                with open(path, "w") as stream:
                    stream.write("{ this is not json")

    # ------------------------------------------------------------------

    def summary(self):
        """One status line: where this executor's results came from."""
        line = (
            "executor: %(simulated)d simulated, %(cache_hits)d from cache, "
            "%(memo_hits)d memoized, %(deduped)d deduplicated" % self.counters
        )
        extras = [
            "%d %s" % (self.counters[name], label)
            for name, label in (
                ("resumed", "resumed"),
                ("retries", "retried"),
                ("timeouts", "timed out"),
                ("crashes", "crashed"),
                ("stalls", "stalled"),
                ("quarantined", "quarantined"),
                ("failed", "failed"),
            )
            if self.counters[name]
        ]
        if extras:
            line += "; resilience: " + ", ".join(extras)
        pool_extras = [
            "%d %s" % (self.counters[name], label)
            for name, label in (
                ("workers_spawned", "spawned"),
                ("workers_respawned", "respawned"),
                ("steals", "stolen"),
                ("poison_cells", "poison"),
                ("backend_degraded", "backend ops degraded"),
            )
            if self.counters[name]
        ]
        if pool_extras:
            line += "; pool: " + ", ".join(pool_extras)
        if self.quarantine_reasons:
            line += "; quarantine: " + ", ".join(
                "%d %s" % (count, reason)
                for reason, count in sorted(self.quarantine_reasons.items())
            )
        return line

    def __repr__(self):
        return "ExperimentExecutor(workers=%d, cache=%r)" % (
            self.workers,
            self.cache,
        )
