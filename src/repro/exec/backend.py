"""Pluggable storage backends behind the result cache.

:class:`~repro.exec.cache.ResultCache` used to *be* the on-disk layout;
distribution (docs/distribution.md) needs the layout to be a choice.
This module splits "where result payloads live" out of the cache into a
:class:`CacheBackend` interface with two implementations:

* :class:`LocalDirBackend` -- the original ``results/<aa>/<key>.json``
  fan-out, extracted verbatim.  Always present: it is the durable tier
  every write lands in first.
* :class:`HTTPBackend` -- speaks ``GET``/``PUT /api/cache/{key}`` to a
  running ``repro serve`` instance (the route pair lives in
  :mod:`repro.service.app`), so a fleet of sweep hosts shares one
  content-addressed store.  Every operation carries its own socket
  timeout and a bounded retry budget with linear backoff; exhaustion
  raises :class:`CacheBackendError`, never hangs.

Failure doctrine: a backend error is *not* a miss and *not* corruption
-- it means the backend is unhealthy.  The cache layer reacts by
degrading to the local tier for the rest of the run (counted as
``backend_degraded``); a dead cache server slows a sweep down, it never
corrupts or aborts one.  Cell keys are SHA-256 content addresses, so
any backend returning *an* entry returns *the* entry -- replication and
last-write-wins races are safe by construction.
"""

from __future__ import annotations

import http.client
import json
import os
import tempfile
import time
import urllib.parse
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import ReproError

Payload = Dict[str, Any]

#: What every backend read returns: ``(payload, status)`` where status
#: is ``"hit"`` (payload is a dict), ``"miss"``, or ``"corrupt"`` (an
#: entry exists but cannot be trusted).
Entry = Tuple[Optional[Payload], str]


class CacheBackendError(ReproError):
    """A backend *operation* failed: network down, server error, disk
    I/O.  Distinct from a miss (no entry) and from corruption (bad
    entry): the backend itself is unhealthy, and the cache responds by
    degrading to the local tier -- never by aborting the sweep."""


def atomic_write(path: str, write_fn: Callable[[str], object]) -> None:
    """Write via a unique temp file + rename so concurrent writers --
    pool workers or parallel CI jobs sharing a directory -- are safe:
    last rename wins and every version is identical by construction."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        os.close(fd)
        write_fn(temp_path)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


class CacheBackend:
    """Content-addressed result storage: get/put payload dicts by the
    SHA-256 cell key from :mod:`repro.exec.cells`."""

    #: Short kind tag for provenance rows and telemetry.
    name = "backend"

    def get_entry(self, key: str) -> Entry:
        """Return ``(payload, "hit"|"miss"|"corrupt")`` for *key*.

        Raises :class:`CacheBackendError` when the backend itself is
        unreachable or failing (as opposed to simply not having, or
        having a bad copy of, the entry).
        """
        raise NotImplementedError

    def put(self, key: str, payload: Payload) -> None:
        """Persist *payload* under *key*; raises
        :class:`CacheBackendError` on backend failure."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable location for provenance/telemetry."""
        return self.name


class LocalDirBackend(CacheBackend):
    """The original on-disk layout: ``results/<aa>/<key>.json`` under a
    cache root, atomic writes, torn entries reported as corrupt."""

    name = "local"

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, key: str) -> str:
        return os.path.join(self.root, "results", key[:2], key + ".json")

    def get_entry(self, key: str) -> Entry:
        try:
            with open(self.path(key)) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return None, "miss"
        except (json.JSONDecodeError, OSError):
            return None, "corrupt"
        if not isinstance(payload, dict):
            return None, "corrupt"
        return payload, "hit"

    def put(self, key: str, payload: Payload) -> None:
        def write(temp_path: str) -> None:
            with open(temp_path, "w") as stream:
                json.dump(payload, stream, sort_keys=True)

        atomic_write(self.path(key), write)

    def describe(self) -> str:
        return "local:%s" % self.root

    def __repr__(self) -> str:
        return "LocalDirBackend(%r)" % self.root


class HTTPBackend(CacheBackend):
    """Remote result store over the sweep service's cache route pair
    (``GET``/``PUT /api/cache/{key}``, see docs/service.md).

    Every operation opens a fresh connection with *timeout* seconds of
    socket budget and is retried up to *retries* extra times with
    linear backoff (``backoff_seconds * attempt``); 5xx responses count
    as failures.  When the budget is exhausted the operation raises
    :class:`CacheBackendError` -- the caller (:class:`ResultCache`)
    turns that into local-tier degradation, so a dead server costs
    latency, never correctness.
    """

    name = "http"

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 3.0,
        retries: int = 1,
        backoff_seconds: float = 0.2,
    ) -> None:
        if "//" not in base_url:
            base_url = "//" + base_url
        split = urllib.parse.urlsplit(base_url, scheme="http")
        if split.scheme != "http":
            raise ValueError("HTTPBackend only speaks http:// (got %r)" % base_url)
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port if split.port is not None else 80
        self.timeout = timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds

    def _request(
        self, method: str, key: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        last_error = "no attempt made"
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff_seconds * attempt)
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                headers = {"Content-Type": "application/json"} if body else {}
                connection.request(
                    method, "/api/cache/" + key, body=body, headers=headers
                )
                response = connection.getresponse()
                data = response.read()
                if response.status >= 500:
                    last_error = "server error %d" % response.status
                    continue
                return response.status, data
            except (OSError, http.client.HTTPException) as exc:
                last_error = "%s: %s" % (type(exc).__name__, exc)
            finally:
                connection.close()
        raise CacheBackendError(
            "cache backend %s unreachable after %d attempt(s): %s"
            % (self.describe(), self.retries + 1, last_error),
            context={"method": method, "key": key[:12], "error": last_error},
        )

    def get_entry(self, key: str) -> Entry:
        status, data = self._request("GET", key)
        if status == 404:
            return None, "miss"
        if status != 200:
            raise CacheBackendError(
                "cache GET %s returned status %d" % (key[:12], status),
                context={"key": key[:12], "status": status},
            )
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CacheBackendError(
                "cache GET %s returned unparseable body: %s" % (key[:12], exc),
                context={"key": key[:12]},
            )
        payload = document.get("payload") if isinstance(document, dict) else None
        if not isinstance(payload, dict):
            return None, "corrupt"
        return payload, "hit"

    def put(self, key: str, payload: Payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        status, _ = self._request("PUT", key, body=body)
        if status not in (200, 201):
            raise CacheBackendError(
                "cache PUT %s returned status %d" % (key[:12], status),
                context={"key": key[:12], "status": status},
            )

    def describe(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def __repr__(self) -> str:
        return "HTTPBackend(%r)" % self.describe()
