"""Simulation cells: the unit of work the experiment executor schedules.

Every figure driver decomposes into independent *cells*.  A cell is one
complete ``SystemSimulator`` run -- a workload mix (one name for
single-core runs, several for multiprogrammed ones), a trace length, a
seed, and a full :class:`~repro.common.config.SystemConfig`.  Cells are
pure: the same cell always produces bit-identical results, which is what
makes both the process-pool fan-out and the content-addressed cache
sound.

The cache key hashes everything a result depends on:

* the config snapshot's SHA-256 (:func:`repro.obs.manifest.config_hash`,
  the same hash the run manifest records),
* the trace identity -- ``(workload, length, seed)`` per core; trace
  generation is deterministic in those three,
* the package version (generator or simulator changes invalidate
  everything), and
* a payload schema version for the serialized-result format itself.

The same keys double as the resilience layer's identities: checkpoint
journals (:class:`~repro.exec.resilience.CheckpointStore`) address a
batch by the hash of its sorted cell keys, and the fault harness
(:mod:`repro.exec.faults`) seeds its per-cell RNG from the key -- so
resume and fault injection inherit the cache's exact notion of "the
same run".
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence, Union

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.obs.manifest import config_hash

#: Bump when the serialized result payload format changes; old cache
#: entries become unreachable rather than misread.  Schema 2: the
#: exported stats namespace grew (scheduler, row-policy, prefetch
#: engine, frame-allocator, and page-table groups are now registered).
PAYLOAD_SCHEMA = 2


def _package_version() -> str:
    # Imported lazily: repro/__init__ pulls in the sim stack.
    from repro import __version__

    return __version__


class SimCell:
    """One schedulable simulation: ``(workloads, length, seed, config)``."""

    __slots__ = ("workloads", "length", "seed", "config", "_key")

    def __init__(self, workloads: Union[str, Sequence[str]], config: SystemConfig, length: int, seed: int = 0) -> None:
        if isinstance(workloads, str):
            workloads = (workloads,)
        else:
            workloads = tuple(workloads)
        if not workloads:
            raise ConfigError(
                "a cell needs at least one workload",
                context={"length": length, "seed": seed},
            )
        if not isinstance(config, SystemConfig):
            raise ConfigError(
                "cell config must be a SystemConfig",
                context={
                    "config_type": type(config).__name__,
                    "workloads": list(workloads),
                },
            )
        # The simulator would adjust num_cores itself; normalizing here
        # keeps the cache key canonical (a 4-core config running one
        # trace is the same run as its 1-core projection).
        if config.num_cores != len(workloads):
            config = config.copy_with(num_cores=len(workloads))
        self.workloads = workloads
        self.config = config
        self.length = length
        self.seed = seed
        self._key: Optional[str] = None

    def identity(self) -> Dict[str, Any]:
        """The JSON-stable identity dict the cache key hashes."""
        return {
            "schema": PAYLOAD_SCHEMA,
            "package_version": _package_version(),
            "config_sha256": config_hash(self.config),
            "traces": [
                {"workload": name, "length": self.length, "seed": self.seed}
                for name in self.workloads
            ],
            "seed": self.seed,
        }

    def key(self) -> str:
        """Content-addressed cache key (SHA-256 hex digest)."""
        if self._key is None:
            canonical = json.dumps(self.identity(), sort_keys=True)
            self._key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return self._key

    def __repr__(self) -> str:
        return "SimCell(%s, length=%d, seed=%d, cfg=%s)" % (
            "+".join(self.workloads),
            self.length,
            self.seed,
            config_hash(self.config)[:12],
        )


def trace_key(name: str, length: int, seed: int) -> str:
    """Content address for one generated trace (generator changes are
    covered by the package version)."""
    canonical = json.dumps(
        {
            "workload": name,
            "length": length,
            "seed": seed,
            "package_version": _package_version(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
