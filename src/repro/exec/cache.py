"""Content-addressed on-disk store for results and generated traces.

Layout under the cache root::

    results/<aa>/<key>.json    serialized SimulationResult payloads
    traces/<aa>/<key>.trace    traceio-format generated traces

``<key>`` is the SHA-256 identity from :mod:`repro.exec.cells`; ``<aa>``
is its first two hex digits (fan-out so directories stay small).  Keys
embed the config hash, trace identity, package version, and payload
schema, so invalidation is purely structural: a stale entry is simply
never addressed again.  Writes are atomic (unique temp file + rename),
which makes concurrent writers -- pool workers or parallel CI jobs
sharing a cache directory -- safe: last rename wins and every version is
identical by construction.
"""

import json
import os
import tempfile

from repro.exec.cells import trace_key
from repro.sim.traceio import load_trace, save_trace


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-tempo``."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-tempo")


def _atomic_write(path, write_fn):
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        os.close(fd)
        write_fn(temp_path)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


class ResultCache:
    """Persistent result + trace store, addressed by content hash."""

    def __init__(self, root=None):
        self.root = root if root is not None else default_cache_dir()

    def _result_path(self, key):
        return os.path.join(self.root, "results", key[:2], key + ".json")

    def _trace_path(self, key):
        return os.path.join(self.root, "traces", key[:2], key + ".trace")

    # -- results -------------------------------------------------------

    def get(self, key):
        """Return the stored payload dict for *key*, or ``None``."""
        path = self._result_path(key)
        try:
            with open(path) as stream:
                return json.load(stream)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn or unreadable entry is a miss, not an error.
            return None

    def put(self, key, payload):
        """Persist *payload* (a JSON-able dict) under *key*."""

        def write(temp_path):
            with open(temp_path, "w") as stream:
                json.dump(payload, stream, sort_keys=True)

        _atomic_write(self._result_path(key), write)

    # -- traces --------------------------------------------------------

    def get_trace(self, name, length, seed):
        """Load a previously persisted generated trace, or ``None``."""
        path = self._trace_path(trace_key(name, length, seed))
        if not os.path.exists(path):
            return None
        try:
            return load_trace(path)
        except Exception:
            return None

    def put_trace(self, trace, length, seed):
        """Persist a generated trace for later runs."""
        _atomic_write(
            self._trace_path(trace_key(trace.name, length, seed)),
            lambda temp_path: save_trace(trace, temp_path),
        )

    def __repr__(self):
        return "ResultCache(%r)" % self.root
