"""Content-addressed store for results and generated traces.

Layout of the local tier under the cache root::

    results/<aa>/<key>.json         serialized SimulationResult payloads
    traces/<aa>/<key>.trace         traceio-format generated traces
    quarantine/<aa>/<key>.<why>.json   corrupt/stale entries, moved aside
    checkpoints/run-<digest>.journal   per-batch resume journals

``<key>`` is the SHA-256 identity from :mod:`repro.exec.cells`; ``<aa>``
is its first two hex digits (fan-out so directories stay small).  Keys
embed the config hash, trace identity, package version, and payload
schema, so invalidation is purely structural: a stale entry is simply
never addressed again.  Writes are atomic (unique temp file + rename),
which makes concurrent writers -- pool workers or parallel CI jobs
sharing a cache directory -- safe: last rename wins and every version is
identical by construction.

Result payloads are stored through the :class:`~repro.exec.backend`
interface: a :class:`~repro.exec.backend.LocalDirBackend` (the layout
above) is always present, and an optional *remote* backend (e.g.
:class:`~repro.exec.backend.HTTPBackend` against a ``repro serve``
cache) layers a shared tier on top.  Reads are local-first with a
remote fill; writes are local-first with a best-effort remote
replicate.  Any remote failure degrades the cache to local-only for
the rest of the run (tallied in :attr:`ResultCache.backend_degraded`)
-- a dead cache server slows a sweep down, never corrupts or aborts
it.  Traces, quarantine evidence, and checkpoint journals are always
local: they describe *this host's* run.
"""

from __future__ import annotations

import enum
import json
import os
from typing import Any, Dict, Iterable, Optional, Set, Tuple, Union

from repro.exec.backend import (
    CacheBackend,
    CacheBackendError,
    LocalDirBackend,
    atomic_write,
)
from repro.exec.cells import trace_key
from repro.sim.trace import Trace
from repro.sim.traceio import load_trace, save_trace

#: Back-compat alias; new code should import from :mod:`repro.exec.backend`.
_atomic_write = atomic_write


class QuarantineReason(str, enum.Enum):
    """Why an entry was moved aside.  A ``str`` subclass so existing
    callers (and quarantine filenames) keep working with plain strings;
    the closed set lets ``repro stats`` report quarantine causes instead
    of parsing free-form text.
    """

    #: The entry was torn, unreadable, or not a JSON object.
    CORRUPT = "corrupt"
    #: The entry predates the current payload schema.
    STALE_SCHEMA = "stale-schema"
    #: The cell's simulation failed an online invariant audit.
    INVARIANT_VIOLATION = "invariant-violation"
    #: The cell killed several pool workers in a row (the supervisor's
    #: poison-cell guard quarantined it instead of grinding the pool
    #: down; evidence records the kill count and last exit code).
    POISON_CELL = "poison-cell"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-tempo``."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-tempo")


class ResultCache:
    """Persistent result + trace store, addressed by content hash.

    *remote* layers an optional shared backend over the local
    directory; see the module docstring for the tiering and
    degradation rules.
    """

    def __init__(
        self, root: Optional[str] = None, remote: Optional[CacheBackend] = None
    ) -> None:
        self.root = root if root is not None else default_cache_dir()
        self._local = LocalDirBackend(self.root)
        self.remote = remote
        #: True once any remote operation has failed; the cache then
        #: runs local-only for the rest of its life (sticky by design:
        #: a flapping backend must not add a timeout per cell).
        self.degraded = False
        #: How many remote operations failed (the ``backend_degraded``
        #: executor counter is fed from this).
        self.backend_degraded = 0
        #: Last remote failure, for provenance and logs.
        self.degrade_error: Optional[str] = None
        #: Keys whose remote operations fail on purpose -- the
        #: ``cache_unavailable`` fault (:mod:`repro.exec.faults`).
        self._unavailable: Set[str] = set()

    def _result_path(self, key: str) -> str:
        return self._local.path(key)

    def _trace_path(self, key: str) -> str:
        return os.path.join(self.root, "traces", key[:2], key + ".trace")

    # -- remote tier ---------------------------------------------------

    def inject_unavailable(self, keys: Iterable[str]) -> None:
        """Arm the deterministic ``cache_unavailable`` fault: any remote
        operation touching one of *keys* fails as if the backend were
        down (and degrades the cache exactly like a real outage)."""
        self._unavailable.update(keys)

    def _remote_failed(self, error: str) -> None:
        self.backend_degraded += 1
        self.degraded = True
        self.degrade_error = error

    def _remote_usable(self, key: str) -> bool:
        if self.remote is None or self.degraded:
            return False
        if key in self._unavailable:
            self._remote_failed("injected cache_unavailable fault")
            return False
        return True

    # -- results -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload dict for *key*, or ``None``."""
        return self.get_entry(key)[0]

    def get_entry(self, key: str) -> Tuple[Optional[Dict[str, Any]], str]:
        """Return ``(payload, status)`` for *key*.

        ``status`` is ``"hit"`` (payload is a dict), ``"miss"`` (no
        entry), or ``"corrupt"`` (a local entry exists but is torn,
        unreadable, or not a JSON object).  Corrupt entries are what the
        executor's quarantine path moves aside and re-simulates; for
        plain :meth:`get` callers they are simply a miss.

        Reads are local-first; a local miss consults the remote tier
        (when configured and healthy) and replicates any hit into the
        local directory so later reads stay off the network.  A corrupt
        *remote* entry is treated as a miss -- there is no local file to
        quarantine, and re-simulation overwrites it.
        """
        payload, status = self._local.get_entry(key)
        if status != "miss":
            return payload, status
        if not self._remote_usable(key):
            return None, "miss"
        assert self.remote is not None
        try:
            payload, status = self.remote.get_entry(key)
        except CacheBackendError as exc:
            self._remote_failed(str(exc))
            return None, "miss"
        if status == "hit" and payload is not None:
            self._local.put(key, payload)
            return payload, "hit"
        return None, "miss"

    def result_path(self, key: str) -> str:
        """Where *key*'s local result entry lives (used by the fault
        harness and tests to garble entries in place)."""
        return self._result_path(key)

    def stats(self) -> Dict[str, int]:
        """Entry counts per local store section (``results`` /
        ``traces`` / ``quarantine`` / ``checkpoints``) -- the sweep
        service's cache inspection endpoint.  Counting walks the
        fan-out directories; it is O(entries) and intended for operator
        queries, not hot paths."""
        counts: Dict[str, int] = {}
        for section in ("results", "traces", "quarantine", "checkpoints"):
            total = 0
            base = os.path.join(self.root, section)
            for _, _, files in os.walk(base):
                total += sum(1 for name in files if not name.endswith(".tmp"))
            counts[section] = total
        return counts

    def quarantine(
        self, key: str, reason: Union[QuarantineReason, str]
    ) -> Optional[str]:
        """Move *key*'s local result entry aside -- never delete
        evidence.

        The entry lands in ``quarantine/<aa>/`` with *reason* (a
        :class:`QuarantineReason` or plain string) embedded in the
        filename, so a bad batch of entries can be inspected after the
        fact.  Returns the new path, or ``None`` when there was nothing
        to move.
        """
        # Normalized explicitly: 3.9's %-format renders a str-enum as
        # "QuarantineReason.CORRUPT" rather than its value.
        label = getattr(reason, "value", reason)
        path = self._result_path(key)
        if not os.path.exists(path):
            return None
        dest_dir = os.path.join(self.root, "quarantine", key[:2])
        os.makedirs(dest_dir, exist_ok=True)
        dest = os.path.join(dest_dir, "%s.%s.json" % (key, label))
        serial = 0
        while os.path.exists(dest):
            serial += 1
            dest = os.path.join(dest_dir, "%s.%s.%d.json" % (key, label, serial))
        os.replace(path, dest)
        return dest

    def quarantine_record(
        self,
        key: str,
        reason: Union[QuarantineReason, str],
        evidence: Dict[str, Any],
    ) -> str:
        """Write a quarantine *evidence* record for a cell that has no
        cache entry to move -- e.g. an invariant violation or poison
        cell caught before the result was ever cached.  Returns the
        evidence path.
        """
        label = getattr(reason, "value", reason)
        dest_dir = os.path.join(self.root, "quarantine", key[:2])
        dest = os.path.join(dest_dir, "%s.%s.evidence.json" % (key, label))

        def write(temp_path: str) -> None:
            with open(temp_path, "w") as stream:
                json.dump(evidence, stream, sort_keys=True, default=repr)

        atomic_write(dest, write)
        return dest

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist *payload* (a JSON-able dict) under *key*.

        The local tier always gets the write (durability); the remote
        tier is replicated to best-effort, and any failure degrades the
        cache to local-only rather than surfacing to the sweep.
        """
        self._local.put(key, payload)
        if not self._remote_usable(key):
            return
        assert self.remote is not None
        try:
            self.remote.put(key, payload)
        except CacheBackendError as exc:
            self._remote_failed(str(exc))

    # -- traces --------------------------------------------------------

    def get_trace(self, name: str, length: int, seed: int) -> Optional[Trace]:
        """Load a previously persisted generated trace, or ``None``."""
        path = self._trace_path(trace_key(name, length, seed))
        if not os.path.exists(path):
            return None
        try:
            return load_trace(path)
        except Exception:
            return None

    def put_trace(self, trace: Trace, length: int, seed: int) -> None:
        """Persist a generated trace for later runs."""
        atomic_write(
            self._trace_path(trace_key(trace.name, length, seed)),
            lambda temp_path: save_trace(trace, temp_path),
        )

    def __repr__(self) -> str:
        if self.remote is not None:
            return "ResultCache(%r, remote=%s%s)" % (
                self.root,
                self.remote.describe(),
                " [degraded]" if self.degraded else "",
            )
        return "ResultCache(%r)" % self.root
