"""Content-addressed on-disk store for results and generated traces.

Layout under the cache root::

    results/<aa>/<key>.json         serialized SimulationResult payloads
    traces/<aa>/<key>.trace         traceio-format generated traces
    quarantine/<aa>/<key>.<why>.json   corrupt/stale entries, moved aside
    checkpoints/run-<digest>.journal   per-batch resume journals

``<key>`` is the SHA-256 identity from :mod:`repro.exec.cells`; ``<aa>``
is its first two hex digits (fan-out so directories stay small).  Keys
embed the config hash, trace identity, package version, and payload
schema, so invalidation is purely structural: a stale entry is simply
never addressed again.  Writes are atomic (unique temp file + rename),
which makes concurrent writers -- pool workers or parallel CI jobs
sharing a cache directory -- safe: last rename wins and every version is
identical by construction.
"""

from __future__ import annotations

import enum
import json
import os
import tempfile
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.exec.cells import trace_key
from repro.sim.trace import Trace
from repro.sim.traceio import load_trace, save_trace


class QuarantineReason(str, enum.Enum):
    """Why an entry was moved aside.  A ``str`` subclass so existing
    callers (and quarantine filenames) keep working with plain strings;
    the closed set lets ``repro stats`` report quarantine causes instead
    of parsing free-form text.
    """

    #: The entry was torn, unreadable, or not a JSON object.
    CORRUPT = "corrupt"
    #: The entry predates the current payload schema.
    STALE_SCHEMA = "stale-schema"
    #: The cell's simulation failed an online invariant audit.
    INVARIANT_VIOLATION = "invariant-violation"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-tempo``."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-tempo")


def _atomic_write(path: str, write_fn: Callable[[str], object]) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        os.close(fd)
        write_fn(temp_path)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


class ResultCache:
    """Persistent result + trace store, addressed by content hash."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()

    def _result_path(self, key: str) -> str:
        return os.path.join(self.root, "results", key[:2], key + ".json")

    def _trace_path(self, key: str) -> str:
        return os.path.join(self.root, "traces", key[:2], key + ".trace")

    # -- results -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload dict for *key*, or ``None``."""
        return self.get_entry(key)[0]

    def get_entry(self, key: str) -> Tuple[Optional[Dict[str, Any]], str]:
        """Return ``(payload, status)`` for *key*.

        ``status`` is ``"hit"`` (payload is a dict), ``"miss"`` (no
        entry), or ``"corrupt"`` (an entry exists but is torn,
        unreadable, or not a JSON object).  Corrupt entries are what the
        executor's quarantine path moves aside and re-simulates; for
        plain :meth:`get` callers they are simply a miss.
        """
        path = self._result_path(key)
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return None, "miss"
        except (json.JSONDecodeError, OSError):
            return None, "corrupt"
        if not isinstance(payload, dict):
            return None, "corrupt"
        return payload, "hit"

    def result_path(self, key: str) -> str:
        """Where *key*'s result entry lives (used by the fault harness
        and tests to garble entries in place)."""
        return self._result_path(key)

    def stats(self) -> Dict[str, int]:
        """Entry counts per store section (``results`` / ``traces`` /
        ``quarantine`` / ``checkpoints``) -- the sweep service's cache
        inspection endpoint.  Counting walks the fan-out directories;
        it is O(entries) and intended for operator queries, not hot
        paths."""
        counts: Dict[str, int] = {}
        for section in ("results", "traces", "quarantine", "checkpoints"):
            total = 0
            base = os.path.join(self.root, section)
            for _, _, files in os.walk(base):
                total += sum(1 for name in files if not name.endswith(".tmp"))
            counts[section] = total
        return counts

    def quarantine(
        self, key: str, reason: Union[QuarantineReason, str]
    ) -> Optional[str]:
        """Move *key*'s result entry aside -- never delete evidence.

        The entry lands in ``quarantine/<aa>/`` with *reason* (a
        :class:`QuarantineReason` or plain string) embedded in the
        filename, so a bad batch of entries can be inspected after the
        fact.  Returns the new path, or ``None`` when there was nothing
        to move.
        """
        # Normalized explicitly: 3.9's %-format renders a str-enum as
        # "QuarantineReason.CORRUPT" rather than its value.
        label = getattr(reason, "value", reason)
        path = self._result_path(key)
        if not os.path.exists(path):
            return None
        dest_dir = os.path.join(self.root, "quarantine", key[:2])
        os.makedirs(dest_dir, exist_ok=True)
        dest = os.path.join(dest_dir, "%s.%s.json" % (key, label))
        serial = 0
        while os.path.exists(dest):
            serial += 1
            dest = os.path.join(dest_dir, "%s.%s.%d.json" % (key, label, serial))
        os.replace(path, dest)
        return dest

    def quarantine_record(
        self,
        key: str,
        reason: Union[QuarantineReason, str],
        evidence: Dict[str, Any],
    ) -> str:
        """Write a quarantine *evidence* record for a cell that has no
        cache entry to move -- e.g. an invariant violation caught before
        the result was ever cached.  Returns the evidence path.
        """
        label = getattr(reason, "value", reason)
        dest_dir = os.path.join(self.root, "quarantine", key[:2])
        dest = os.path.join(dest_dir, "%s.%s.evidence.json" % (key, label))

        def write(temp_path: str) -> None:
            with open(temp_path, "w") as stream:
                json.dump(evidence, stream, sort_keys=True, default=repr)

        _atomic_write(dest, write)
        return dest

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist *payload* (a JSON-able dict) under *key*."""

        def write(temp_path: str) -> None:
            with open(temp_path, "w") as stream:
                json.dump(payload, stream, sort_keys=True)

        _atomic_write(self._result_path(key), write)

    # -- traces --------------------------------------------------------

    def get_trace(self, name: str, length: int, seed: int) -> Optional[Trace]:
        """Load a previously persisted generated trace, or ``None``."""
        path = self._trace_path(trace_key(name, length, seed))
        if not os.path.exists(path):
            return None
        try:
            return load_trace(path)
        except Exception:
            return None

    def put_trace(self, trace: Trace, length: int, seed: int) -> None:
        """Persist a generated trace for later runs."""
        _atomic_write(
            self._trace_path(trace_key(trace.name, length, seed)),
            lambda temp_path: save_trace(trace, temp_path),
        )

    def __repr__(self) -> str:
        return "ResultCache(%r)" % self.root
