"""Deterministic fault injection for the experiment executor.

The resilience layer (:mod:`repro.exec.resilience`) is only trustworthy
if its failure paths are exercised on schedule, not by hoping for real
crashes.  This module provides that schedule:

* :class:`FaultPlan` -- a concrete, picklable script of faults keyed by
  cell key and attempt number: kill the worker (``os._exit``), delay the
  cell (to trip timeouts), raise an injected exception, corrupt a cache
  entry, stall a pool worker's heartbeat (to trip the supervisor's
  liveness deadline), take the remote cache backend down for a cell, or
  abort the whole sweep after N completed cells (a deterministic
  stand-in for ``kill -9`` mid-run).
* :class:`FaultSpec` -- a rate-based description (``kill=0.3``) that
  materialises into a :class:`FaultPlan` once the batch's cell keys are
  known.  Selection draws from :class:`~repro.common.rng.DeterministicRng`
  seeded per key, so the same spec over the same sweep always injects
  the same faults -- tests and the CI resilience-smoke step rely on it.

Faults only ever fire when a plan is supplied; production runs carry
``faults=None`` and pay nothing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ReproError
from repro.common.rng import DeterministicRng

#: Exit status a kill fault dies with; any non-zero status is treated as
#: a crashed worker by the scheduler, this one just reads clearly in logs.
KILL_EXIT_CODE = 86


class InjectedFault(ReproError):
    """Raised by a ``fail`` fault: a recoverable in-process error."""


@dataclass(frozen=True)
class FaultPlan:
    """A scripted set of faults for one batch of cells.

    ``kill``/``fail``/``delay`` map a cell key to the attempt numbers
    the fault fires on (``delay`` pairs each attempt with a duration in
    seconds).  ``corrupt`` lists cell keys whose cache entries the
    harness garbles before the batch resolves.  ``stall`` maps a cell
    key to attempts on which the executing pool worker suppresses its
    heartbeats and sleeps ``stall_seconds`` -- a deterministic hung
    worker, recovered by the supervisor's heartbeat deadline.
    ``cache_unavailable`` lists cell keys whose remote cache-backend
    operations fail as if the server were down (the cache degrades to
    its local tier, exactly like a real outage).  ``abort_after``
    aborts the sweep (raising ``SweepAborted`` in the scheduler) once
    that many cells have completed -- the deterministic "killed
    mid-run" fault.
    """

    kill: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    fail: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    delay: Mapping[str, Tuple[Tuple[int, float], ...]] = field(default_factory=dict)
    corrupt: Tuple[str, ...] = ()
    stall: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    stall_seconds: float = 30.0
    cache_unavailable: Tuple[str, ...] = ()
    abort_after: Optional[int] = None

    def has_kills(self) -> bool:
        """True when any cell is scheduled to kill its worker (the
        scheduler then forces process isolation)."""
        return any(attempts for attempts in self.kill.values())

    def has_stalls(self) -> bool:
        """True when any cell is scheduled to stall its worker's
        heartbeat; only the pool supervisor can recover from that, so
        the scheduler forces pooled execution."""
        return any(attempts for attempts in self.stall.values())

    def should_stall(self, key: str, attempt: int) -> bool:
        return attempt in self.stall.get(key, ())

    def delay_for(self, key: str, attempt: int) -> float:
        for when, seconds in self.delay.get(key, ()):
            if when == attempt:
                return seconds
        return 0.0

    def should_kill(self, key: str, attempt: int) -> bool:
        return attempt in self.kill.get(key, ())

    def should_fail(self, key: str, attempt: int) -> bool:
        return attempt in self.fail.get(key, ())

    def inject(self, key: str, attempt: int) -> None:
        """Apply this plan's faults for one ``(cell, attempt)``.

        Called at the top of every simulation attempt -- inline or
        inside a worker process.  Delays sleep, ``fail`` raises
        :class:`InjectedFault`, ``kill`` exits the process without
        cleanup (exactly like a crashed or OOM-killed worker).
        """
        seconds = self.delay_for(key, attempt)
        if seconds > 0:
            time.sleep(seconds)
        if self.should_fail(key, attempt):
            raise InjectedFault(
                "injected fault for cell %s attempt %d" % (key[:12], attempt),
                context={"cell_key": key[:12], "attempt": attempt},
            )
        if self.should_kill(key, attempt):
            os._exit(KILL_EXIT_CODE)


@dataclass(frozen=True)
class FaultSpec:
    """Rate-based fault description, materialised per batch.

    The CLI's ``--faults`` flag parses into one of these; the executor
    calls :meth:`materialize` once the batch's cell keys are known.
    Rates are per-cell probabilities; every injected
    kill/fail/delay/stall fires on attempt 0 only, so a policy with at
    least one retry always recovers (``cache_unavailable`` has no
    attempt axis: it marks the cell's backend operations failed for the
    whole run).
    """

    seed: int = 0
    kill_rate: float = 0.0
    fail_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.05
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 30.0
    cache_unavailable_rate: float = 0.0
    abort_after: Optional[int] = None

    #: ``--faults`` field names -> FaultSpec attributes.  ``worker_kill``
    #: is the pool-era name for ``kill``: in a persistent pool, a kill
    #: fault fired mid-cell *is* the death of a long-lived worker (the
    #: supervisor respawns it and requeues the claim).
    _FIELDS = {
        "seed": "seed",
        "kill": "kill_rate",
        "worker_kill": "kill_rate",
        "worker-kill": "kill_rate",
        "fail": "fail_rate",
        "delay": "delay_rate",
        "delay-seconds": "delay_seconds",
        "delay_seconds": "delay_seconds",
        "corrupt": "corrupt_rate",
        "heartbeat_stall": "stall_rate",
        "heartbeat-stall": "stall_rate",
        "stall-seconds": "stall_seconds",
        "stall_seconds": "stall_seconds",
        "cache_unavailable": "cache_unavailable_rate",
        "cache-unavailable": "cache_unavailable_rate",
        "abort-after": "abort_after",
        "abort_after": "abort_after",
    }

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``"seed=1,kill=0.3,delay=0.2,delay-seconds=0.05"``."""
        values: Dict[str, Any] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, raw = part.partition("=")
            attr = cls._FIELDS.get(name.strip())
            if attr is None or not raw:
                raise ValueError(
                    "bad --faults field %r (known: %s)"
                    % (part, ", ".join(sorted(set(cls._FIELDS))))
                )
            if attr in ("seed", "abort_after"):
                values[attr] = int(raw)
            else:
                values[attr] = float(raw)
        return cls(**values)

    def materialize(self, keys: Sequence[str]) -> FaultPlan:
        """Roll the per-key dice and return the concrete plan.

        Deterministic in ``(seed, key)`` alone: the same cell draws the
        same faults regardless of batch composition or ordering.  New
        fault kinds draw *after* the original four so historical
        ``(seed, rate)`` pairs keep selecting the same cells.
        """
        kill: Dict[str, Tuple[int, ...]] = {}
        fail: Dict[str, Tuple[int, ...]] = {}
        delay: Dict[str, Tuple[Tuple[int, float], ...]] = {}
        corrupt: List[str] = []
        stall: Dict[str, Tuple[int, ...]] = {}
        cache_unavailable: List[str] = []
        for key in sorted(keys):
            rng = DeterministicRng(self.seed, "exec.faults/%s" % key)
            if rng.random() < self.kill_rate:
                kill[key] = (0,)
            if rng.random() < self.fail_rate:
                fail[key] = (0,)
            if rng.random() < self.delay_rate:
                delay[key] = ((0, self.delay_seconds),)
            if rng.random() < self.corrupt_rate:
                corrupt.append(key)
            if rng.random() < self.stall_rate:
                stall[key] = (0,)
            if rng.random() < self.cache_unavailable_rate:
                cache_unavailable.append(key)
        return FaultPlan(
            kill=kill,
            fail=fail,
            delay=delay,
            corrupt=tuple(corrupt),
            stall=stall,
            stall_seconds=self.stall_seconds,
            cache_unavailable=tuple(cache_unavailable),
            abort_after=self.abort_after,
        )
