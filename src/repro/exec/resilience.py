"""Fault tolerance for the experiment executor.

Large sweeps run thousands of cells; a single hung workload, crashed
worker, or corrupted cache entry must cost one cell, not the campaign.
This module wraps cell execution in four mechanisms (the executor wires
them together; ``docs/resilience.md`` is the user-facing story):

* :class:`ResiliencePolicy` -- per-cell timeouts and bounded retries
  with deterministic linear backoff, plus the ``allow_partial`` switch
  that turns exhausted retries into explicitly-missing cells instead of
  an aborted sweep.
* :class:`CheckpointStore` -- an append-only JSONL journal of per-cell
  state (``pending``/``running``/``done``/``failed``) under the cache
  directory, addressed by the batch's content hash.  A killed run
  resumes with zero re-simulation of completed cells: their payloads
  are already in the result cache, and the journal proves which ones.
* :func:`execute_resilient` -- the scheduler facade.  Inline when
  nothing requires a process boundary; otherwise the batch runs on the
  supervised persistent worker pool (:mod:`repro.exec.pool`), which is
  what makes kill-on-timeout, crashed-worker detection and respawn,
  heartbeat-deadline stall recovery, and poison-cell quarantine
  possible at all.
* :func:`missing_cell_payload` -- the schema-correct zeroed payload a
  permanently-failed cell degrades to under ``allow_partial``; every
  breakdown reads 0 and ``stats["missing_cell"]`` marks it.

Determinism: cells are pure functions of their identity, so no retry,
timeout, re-queue, or resume can change a result -- an interrupted-and-
resumed sweep is bit-identical to an uninterrupted one (enforced by
``tests/test_resilience.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.common.errors import InvariantViolation, ReproError
from repro.exec.cells import PAYLOAD_SCHEMA, SimCell
from repro.exec.faults import FaultPlan

if TYPE_CHECKING:  # import cycle: pool imports this module at runtime
    from repro.exec.pool import OnWorker, PoolConfig, WorkerContext

Payload = Dict[str, Any]


def _is_terminal(error: str) -> bool:
    """Whether a cell failure must not be retried.

    An invariant violation is deterministic -- the cell is a pure
    function of its identity, so re-running it reproduces the same
    violation.  Retrying would only burn attempts and, worse, could
    mask the violation behind a fault-injection pass on a later
    attempt.  Worker errors cross the process boundary as
    ``"TypeName: message"`` strings, hence the prefix check.
    """
    return error.startswith(
        (InvariantViolation.__name__, "PoisonCell")
    )


class SweepAborted(ReproError):
    """The sweep was deliberately interrupted mid-run (fault injection's
    ``abort_after`` or an operator kill); the checkpoint journal holds
    the completed prefix."""


class CellExecutionError(ReproError):
    """One or more cells exhausted their retries and ``allow_partial``
    was off."""

    def __init__(
        self,
        failures: Sequence["CellFailure"],
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.failures = list(failures)
        names = ", ".join(failure.workloads for failure in self.failures)
        super().__init__(
            "%d cell(s) failed after retries (%s); re-run with --allow-partial "
            "to degrade instead of aborting" % (len(self.failures), names),
            context,
        )


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard to try before giving a cell up.

    ``max_retries`` bounds *re*-tries: a cell is attempted at most
    ``max_retries + 1`` times.  ``cell_timeout`` (seconds of wall clock
    per attempt) requires process isolation and kills the worker on
    expiry.  ``backoff_seconds`` sleeps ``attempt * backoff_seconds``
    before retry *attempt*.  ``heartbeat_timeout`` is the pool
    supervisor's liveness deadline: a worker silent that long is killed
    and respawned and its claim requeued (see
    :mod:`repro.exec.pool`).  ``allow_partial`` degrades exhausted
    cells to :func:`missing_cell_payload` instead of raising
    :class:`CellExecutionError`.
    """

    max_retries: int = 2
    cell_timeout: Optional[float] = None
    backoff_seconds: float = 0.0
    heartbeat_timeout: float = 10.0
    allow_partial: bool = False


@dataclass(frozen=True)
class CellFailure:
    """Terminal record of one cell that exhausted its retries."""

    key: str
    workloads: str
    attempts: int
    error: str


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------


class CheckpointStore:
    """Append-only JSONL journal of per-cell state for one batch.

    One line per transition: ``{"key": ..., "state": "pending" |
    "running" | "done" | "failed", "attempt": N, "info": ...}``.  The
    journal lives at ``<cache_root>/checkpoints/run-<digest>.journal``
    where ``<digest>`` hashes the batch's sorted cell keys -- re-issuing
    the same sweep finds the same journal, so ``--resume`` needs no run
    id.  Replay keeps the last state per key and tolerates a torn final
    line (the crash the journal exists to survive).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._stream: Optional[IO[str]] = None

    @classmethod
    def for_batch(cls, root: str, keys: Sequence[str]) -> "CheckpointStore":
        """The journal for the batch identified by *keys* under *root*."""
        canonical = "\n".join(sorted(set(keys)))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return cls(os.path.join(root, "checkpoints", "run-%s.journal" % digest))

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def reset(self) -> None:
        """Start a fresh journal (a non-resume run discards history)."""
        self.close()
        if os.path.exists(self.path):
            os.unlink(self.path)

    def record(self, key: str, state: str, attempt: int = 0, info: str = "") -> None:
        """Append one state transition and flush it to the OS."""
        if self._stream is None:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            self._stream = open(self.path, "a")
        entry: Dict[str, Any] = {"key": key, "state": state, "attempt": attempt}
        if info:
            entry["info"] = info
        self._stream.write(json.dumps(entry, sort_keys=True) + "\n")
        self._stream.flush()

    def states(self) -> Dict[str, Dict[str, Any]]:
        """Replay the journal: last recorded entry per cell key."""
        states: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.path) as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a killed writer
                    key = entry.get("key")
                    if isinstance(key, str):
                        states[key] = entry
        except FileNotFoundError:
            pass
        return states

    def done_keys(self) -> Set[str]:
        """Cells whose last journaled state is ``done``."""
        return {
            key
            for key, entry in self.states().items()
            if entry.get("state") == "done"
        }

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __repr__(self) -> str:
        return "CheckpointStore(%r)" % self.path


# ----------------------------------------------------------------------
# Degraded results
# ----------------------------------------------------------------------

_ZERO_DRAM_REF_FIELDS = (
    "ptw_leaf",
    "ptw_upper",
    "replay",
    "other",
    "prefetch",
    "writeback",
    "walks_with_dram_leaf",
    "replay_also_dram",
)

_ZERO_SERVICE_FIELDS = ("llc", "row_buffer", "unaided")


def missing_cell_payload(cell: SimCell) -> Payload:
    """A schema-correct, all-zero payload standing in for a cell that
    exhausted its retries under ``allow_partial``.

    Every breakdown fraction of the rebuilt result reads 0.0 (the
    metrics guards divide-by-zero to 0), ``stats["missing_cell"]`` is 1,
    and the payload is never memoized or written to the cache -- a later
    run retries the cell for real.
    """
    cores: List[Dict[str, Any]] = [
        {
            "workload_name": name,
            "references": 0,
            "runtime": {
                "total_cycles": 0,
                "dram_ptw_cycles": 0,
                "dram_replay_cycles": 0,
                "dram_other_cycles": 0,
            },
            "dram_refs": {field: 0 for field in _ZERO_DRAM_REF_FIELDS},
            "replay_service": {field: 0 for field in _ZERO_SERVICE_FIELDS},
        }
        for name in cell.workloads
    ]
    return {
        "schema": PAYLOAD_SCHEMA,
        "cores": cores,
        "energy_total": 0.0,
        "superpage_fraction": 0.0,
        "stats": {
            "missing_cell": 1,
            "manifest.workloads": "+".join(cell.workloads),
            "manifest.seed": cell.seed,
        },
    }


# ----------------------------------------------------------------------
# The resilient scheduler
# ----------------------------------------------------------------------

#: ``on_state(key, state, attempt, info)`` -- journal/counter hook.
OnState = Callable[[str, str, int, str], None]
#: ``on_done(key, payload, attempt)`` -- success hook (cache + memo).
OnDone = Callable[[str, Payload, int], None]
#: ``on_failed(failure)`` -- terminal-failure hook.
OnFailed = Callable[[CellFailure], None]
#: ``run_inline(cell)`` -- simulate in this process, return the payload.
RunInline = Callable[[SimCell], Payload]


def needs_isolation(
    workers: int,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    pending: Optional[Mapping[str, SimCell]] = None,
) -> bool:
    """Whether cells must (or may usefully) run on the worker pool.

    A kill switch (timeouts), kill faults, and heartbeat-stall faults
    *require* a process boundary -- only the pool supervisor can kill a
    hung worker or survive a dead one.  Parallelism (``workers > 1``)
    merely benefits from one; since the persistent pool amortizes its
    spawn cost over the whole batch, the old per-cell spawn cost model
    (``SPAWN_OVERHEAD_SECONDS``) is retired and any multi-cell batch
    with ``workers > 1`` runs pooled.
    """
    if policy.cell_timeout is not None:
        return True
    if plan is not None and (plan.has_kills() or plan.has_stalls()):
        return True
    if workers <= 1:
        return False
    return pending is None or len(pending) > 1


def execute_resilient(
    pending: Mapping[str, SimCell],
    *,
    workers: int,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    run_inline: RunInline,
    worker_context: Optional["WorkerContext"] = None,
    pool: Optional["PoolConfig"] = None,
    on_state: OnState,
    on_done: OnDone,
    on_failed: OnFailed,
    on_worker: Optional["OnWorker"] = None,
) -> Dict[str, int]:
    """Drive every pending cell to ``done`` or ``failed``.

    Results, journal entries, and cache writes happen through the hooks
    *as each cell completes*, so an abort (``SweepAborted``,
    ``KeyboardInterrupt``) never loses finished work.  Batches that
    need a process boundary run on the supervised persistent pool
    (:func:`repro.exec.pool.execute_pooled`, sized by *workers* unless
    *pool* overrides it); everything else runs inline in this process.
    Returns scheduler stats: ``retries``, ``timeouts``, ``crashes``,
    the pool's supervision counters, plus ``pooled`` (1 when the pool
    was used, 0 for the inline path) so the executor can record the
    chosen mode in its provenance.
    """
    if needs_isolation(workers, policy, plan, pending):
        # Imported here: pool imports this module at import time, so the
        # reverse edge must stay lazy to avoid a cycle.
        from repro.exec.pool import PoolConfig, WorkerContext, execute_pooled

        config = pool if pool is not None else PoolConfig(
            workers=workers, heartbeat_timeout=policy.heartbeat_timeout
        )
        stats = execute_pooled(
            pending,
            policy=policy,
            plan=plan,
            config=config,
            context=worker_context if worker_context is not None else WorkerContext(),
            on_state=on_state,
            on_done=on_done,
            on_failed=on_failed,
            on_worker=on_worker,
        )
        stats["pooled"] = 1
        return stats
    stats = _execute_inline(
        pending,
        policy=policy,
        plan=plan,
        run_inline=run_inline,
        on_state=on_state,
        on_done=on_done,
        on_failed=on_failed,
    )
    stats["pooled"] = 0
    return stats


def _backoff(policy: ResiliencePolicy, attempt: int) -> None:
    if policy.backoff_seconds > 0:
        time.sleep(policy.backoff_seconds * attempt)


def _check_abort(plan: Optional[FaultPlan], completed: int, total: int) -> None:
    if (
        plan is not None
        and plan.abort_after is not None
        and completed >= plan.abort_after
        and completed < total
    ):
        raise SweepAborted(
            "sweep aborted by fault injection after %d of %d cells"
            % (completed, total),
            context={
                "completed": completed,
                "total": total,
                "abort_after": plan.abort_after,
            },
        )


def _execute_inline(
    pending: Mapping[str, SimCell],
    *,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    run_inline: RunInline,
    on_state: OnState,
    on_done: OnDone,
    on_failed: OnFailed,
) -> Dict[str, int]:
    """Serial in-process execution with retries (no kill switch)."""
    stats = {"retries": 0, "timeouts": 0, "crashes": 0}
    completed = 0
    for key, cell in pending.items():
        attempt = 0
        while True:
            on_state(key, "running", attempt, "")
            try:
                if plan is not None:
                    plan.inject(key, attempt)
                payload = run_inline(cell)
            except (SweepAborted, KeyboardInterrupt):
                raise
            except Exception as exc:
                error = "%s: %s" % (type(exc).__name__, exc)
                attempt += 1
                if attempt > policy.max_retries or _is_terminal(error):
                    on_failed(
                        CellFailure(key, "+".join(cell.workloads), attempt, error)
                    )
                    break
                stats["retries"] += 1
                on_state(key, "pending", attempt, "retrying: %s" % error)
                _backoff(policy, attempt)
                continue
            on_done(key, payload, attempt)
            completed += 1
            _check_abort(plan, completed, len(pending))
            break
    return stats
