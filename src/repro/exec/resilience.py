"""Fault tolerance for the experiment executor.

Large sweeps run thousands of cells; a single hung workload, crashed
worker, or corrupted cache entry must cost one cell, not the campaign.
This module wraps cell execution in four mechanisms (the executor wires
them together; ``docs/resilience.md`` is the user-facing story):

* :class:`ResiliencePolicy` -- per-cell timeouts and bounded retries
  with deterministic linear backoff, plus the ``allow_partial`` switch
  that turns exhausted retries into explicitly-missing cells instead of
  an aborted sweep.
* :class:`CheckpointStore` -- an append-only JSONL journal of per-cell
  state (``pending``/``running``/``done``/``failed``) under the cache
  directory, addressed by the batch's content hash.  A killed run
  resumes with zero re-simulation of completed cells: their payloads
  are already in the result cache, and the journal proves which ones.
* :func:`execute_resilient` -- the scheduler.  Inline when isolation is
  unnecessary; otherwise one worker process per cell (at most ``jobs``
  concurrent), which is what makes kill-on-timeout and crashed-worker
  detection (dead process, torn result channel) possible at all.
* :func:`missing_cell_payload` -- the schema-correct zeroed payload a
  permanently-failed cell degrades to under ``allow_partial``; every
  breakdown reads 0 and ``stats["missing_cell"]`` marks it.

Determinism: cells are pure functions of their identity, so no retry,
timeout, re-queue, or resume can change a result -- an interrupted-and-
resumed sweep is bit-identical to an uninterrupted one (enforced by
``tests/test_resilience.py``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.process import BaseProcess
from multiprocessing.queues import Queue as ProcessQueue
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.common.errors import InvariantViolation, ReproError
from repro.exec.cells import PAYLOAD_SCHEMA, SimCell
from repro.exec.faults import FaultPlan

Payload = Dict[str, Any]


def _is_terminal(error: str) -> bool:
    """Whether a cell failure must not be retried.

    An invariant violation is deterministic -- the cell is a pure
    function of its identity, so re-running it reproduces the same
    violation.  Retrying would only burn attempts and, worse, could
    mask the violation behind a fault-injection pass on a later
    attempt.  Worker errors cross the process boundary as
    ``"TypeName: message"`` strings, hence the prefix check.
    """
    return error.startswith(InvariantViolation.__name__)

#: Seconds a zero-exit worker gets to flush its result channel before it
#: is reclassified as crashed (covers the exit-before-drain race).
_FLUSH_GRACE_SECONDS = 5.0

#: Scheduler poll interval while waiting on worker processes.
_POLL_SECONDS = 0.01


class SweepAborted(ReproError):
    """The sweep was deliberately interrupted mid-run (fault injection's
    ``abort_after`` or an operator kill); the checkpoint journal holds
    the completed prefix."""


class CellExecutionError(ReproError):
    """One or more cells exhausted their retries and ``allow_partial``
    was off."""

    def __init__(
        self,
        failures: Sequence["CellFailure"],
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.failures = list(failures)
        names = ", ".join(failure.workloads for failure in self.failures)
        super().__init__(
            "%d cell(s) failed after retries (%s); re-run with --allow-partial "
            "to degrade instead of aborting" % (len(self.failures), names),
            context,
        )


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard to try before giving a cell up.

    ``max_retries`` bounds *re*-tries: a cell is attempted at most
    ``max_retries + 1`` times.  ``cell_timeout`` (seconds of wall clock
    per attempt) requires process isolation and kills the worker on
    expiry.  ``backoff_seconds`` sleeps ``attempt * backoff_seconds``
    before retry *attempt*.  ``allow_partial`` degrades exhausted cells
    to :func:`missing_cell_payload` instead of raising
    :class:`CellExecutionError`.
    """

    max_retries: int = 2
    cell_timeout: Optional[float] = None
    backoff_seconds: float = 0.0
    allow_partial: bool = False


@dataclass(frozen=True)
class CellFailure:
    """Terminal record of one cell that exhausted its retries."""

    key: str
    workloads: str
    attempts: int
    error: str


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------


class CheckpointStore:
    """Append-only JSONL journal of per-cell state for one batch.

    One line per transition: ``{"key": ..., "state": "pending" |
    "running" | "done" | "failed", "attempt": N, "info": ...}``.  The
    journal lives at ``<cache_root>/checkpoints/run-<digest>.journal``
    where ``<digest>`` hashes the batch's sorted cell keys -- re-issuing
    the same sweep finds the same journal, so ``--resume`` needs no run
    id.  Replay keeps the last state per key and tolerates a torn final
    line (the crash the journal exists to survive).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._stream: Optional[IO[str]] = None

    @classmethod
    def for_batch(cls, root: str, keys: Sequence[str]) -> "CheckpointStore":
        """The journal for the batch identified by *keys* under *root*."""
        canonical = "\n".join(sorted(set(keys)))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return cls(os.path.join(root, "checkpoints", "run-%s.journal" % digest))

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def reset(self) -> None:
        """Start a fresh journal (a non-resume run discards history)."""
        self.close()
        if os.path.exists(self.path):
            os.unlink(self.path)

    def record(self, key: str, state: str, attempt: int = 0, info: str = "") -> None:
        """Append one state transition and flush it to the OS."""
        if self._stream is None:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            self._stream = open(self.path, "a")
        entry: Dict[str, Any] = {"key": key, "state": state, "attempt": attempt}
        if info:
            entry["info"] = info
        self._stream.write(json.dumps(entry, sort_keys=True) + "\n")
        self._stream.flush()

    def states(self) -> Dict[str, Dict[str, Any]]:
        """Replay the journal: last recorded entry per cell key."""
        states: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.path) as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a killed writer
                    key = entry.get("key")
                    if isinstance(key, str):
                        states[key] = entry
        except FileNotFoundError:
            pass
        return states

    def done_keys(self) -> Set[str]:
        """Cells whose last journaled state is ``done``."""
        return {
            key
            for key, entry in self.states().items()
            if entry.get("state") == "done"
        }

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __repr__(self) -> str:
        return "CheckpointStore(%r)" % self.path


# ----------------------------------------------------------------------
# Degraded results
# ----------------------------------------------------------------------

_ZERO_DRAM_REF_FIELDS = (
    "ptw_leaf",
    "ptw_upper",
    "replay",
    "other",
    "prefetch",
    "writeback",
    "walks_with_dram_leaf",
    "replay_also_dram",
)

_ZERO_SERVICE_FIELDS = ("llc", "row_buffer", "unaided")


def missing_cell_payload(cell: SimCell) -> Payload:
    """A schema-correct, all-zero payload standing in for a cell that
    exhausted its retries under ``allow_partial``.

    Every breakdown fraction of the rebuilt result reads 0.0 (the
    metrics guards divide-by-zero to 0), ``stats["missing_cell"]`` is 1,
    and the payload is never memoized or written to the cache -- a later
    run retries the cell for real.
    """
    cores: List[Dict[str, Any]] = [
        {
            "workload_name": name,
            "references": 0,
            "runtime": {
                "total_cycles": 0,
                "dram_ptw_cycles": 0,
                "dram_replay_cycles": 0,
                "dram_other_cycles": 0,
            },
            "dram_refs": {field: 0 for field in _ZERO_DRAM_REF_FIELDS},
            "replay_service": {field: 0 for field in _ZERO_SERVICE_FIELDS},
        }
        for name in cell.workloads
    ]
    return {
        "schema": PAYLOAD_SCHEMA,
        "cores": cores,
        "energy_total": 0.0,
        "superpage_fraction": 0.0,
        "stats": {
            "missing_cell": 1,
            "manifest.workloads": "+".join(cell.workloads),
            "manifest.seed": cell.seed,
        },
    }


# ----------------------------------------------------------------------
# The resilient scheduler
# ----------------------------------------------------------------------

#: ``on_state(key, state, attempt, info)`` -- journal/counter hook.
OnState = Callable[[str, str, int, str], None]
#: ``on_done(key, payload, attempt)`` -- success hook (cache + memo).
OnDone = Callable[[str, Payload, int], None]
#: ``on_failed(failure)`` -- terminal-failure hook.
OnFailed = Callable[[CellFailure], None]
#: ``run_inline(cell)`` -- simulate in this process, return the payload.
RunInline = Callable[[SimCell], Payload]
#: ``worker_args(cell, attempt, queue)`` -- args for the worker target.
WorkerArgs = Callable[[SimCell, int, Any], Tuple[Any, ...]]


#: Estimated cost of forking, importing, and tearing down one worker
#: process.  Measured ~0.2-0.4s on CI runners; the exact value only
#: moves the inline/isolated break-even point for tiny batches.
SPAWN_OVERHEAD_SECONDS = 0.3

#: Conservative throughput estimate used to price a cell before running
#: it (records/sec of the scalar kernel on slow hardware).  Erring low
#: biases toward isolation, which is always correct, just slower.
EST_RECORDS_PER_SEC = 20000.0


def estimate_cell_seconds(cell: SimCell) -> float:
    """Rough wall-clock estimate for one cell (trace length x cores)."""
    return cell.length * max(1, len(cell.workloads)) / EST_RECORDS_PER_SEC


def needs_isolation(
    jobs: int,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    pending: Optional[Mapping[str, SimCell]] = None,
) -> bool:
    """Whether cells must (or should) run in worker processes.

    A kill switch (timeouts) or kill faults *require* a process
    boundary.  Parallelism merely *allows* one -- and at CI scale the
    spawn overhead dwarfs per-cell work, which is how BENCH_perf.json
    ended up with ``parallel_speedup < 1``.  With *pending* available,
    the choice becomes a cost model: spawn only when the estimated
    serial time exceeds the estimated parallel time including one spawn
    per cell.  Without *pending* (legacy callers), any ``jobs > 1``
    isolates, as before.
    """
    if policy.cell_timeout is not None:
        return True
    if plan is not None and plan.has_kills():
        return True
    if jobs <= 1:
        return False
    if pending is None:
        return True
    n = len(pending)
    if n <= 1:
        return False
    per_cell = max(estimate_cell_seconds(cell) for cell in pending.values())
    serial = n * per_cell
    waves = -(-n // jobs)  # ceil
    parallel = waves * (per_cell + SPAWN_OVERHEAD_SECONDS)
    return parallel < serial


def execute_resilient(
    pending: Mapping[str, SimCell],
    *,
    jobs: int,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    run_inline: RunInline,
    worker: Callable[..., None],
    worker_args: WorkerArgs,
    on_state: OnState,
    on_done: OnDone,
    on_failed: OnFailed,
) -> Dict[str, int]:
    """Drive every pending cell to ``done`` or ``failed``.

    Results, journal entries, and cache writes happen through the hooks
    *as each cell completes*, so an abort (``SweepAborted``,
    ``KeyboardInterrupt``) never loses finished work.  Returns scheduler
    stats: ``retries``, ``timeouts``, ``crashes``, plus ``isolated``
    (1 when worker processes were used, 0 for the inline path) so the
    executor can record the chosen mode in its provenance.
    """
    if needs_isolation(jobs, policy, plan, pending):
        stats = _execute_isolated(
            pending,
            jobs=jobs,
            policy=policy,
            plan=plan,
            worker=worker,
            worker_args=worker_args,
            on_state=on_state,
            on_done=on_done,
            on_failed=on_failed,
        )
        stats["isolated"] = 1
        return stats
    stats = _execute_inline(
        pending,
        policy=policy,
        plan=plan,
        run_inline=run_inline,
        on_state=on_state,
        on_done=on_done,
        on_failed=on_failed,
    )
    stats["isolated"] = 0
    return stats


def _backoff(policy: ResiliencePolicy, attempt: int) -> None:
    if policy.backoff_seconds > 0:
        time.sleep(policy.backoff_seconds * attempt)


def _check_abort(plan: Optional[FaultPlan], completed: int, total: int) -> None:
    if (
        plan is not None
        and plan.abort_after is not None
        and completed >= plan.abort_after
        and completed < total
    ):
        raise SweepAborted(
            "sweep aborted by fault injection after %d of %d cells"
            % (completed, total),
            context={
                "completed": completed,
                "total": total,
                "abort_after": plan.abort_after,
            },
        )


def _execute_inline(
    pending: Mapping[str, SimCell],
    *,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    run_inline: RunInline,
    on_state: OnState,
    on_done: OnDone,
    on_failed: OnFailed,
) -> Dict[str, int]:
    """Serial in-process execution with retries (no kill switch)."""
    stats = {"retries": 0, "timeouts": 0, "crashes": 0}
    completed = 0
    for key, cell in pending.items():
        attempt = 0
        while True:
            on_state(key, "running", attempt, "")
            try:
                if plan is not None:
                    plan.inject(key, attempt)
                payload = run_inline(cell)
            except (SweepAborted, KeyboardInterrupt):
                raise
            except Exception as exc:
                error = "%s: %s" % (type(exc).__name__, exc)
                attempt += 1
                if attempt > policy.max_retries or _is_terminal(error):
                    on_failed(
                        CellFailure(key, "+".join(cell.workloads), attempt, error)
                    )
                    break
                stats["retries"] += 1
                on_state(key, "pending", attempt, "retrying: %s" % error)
                _backoff(policy, attempt)
                continue
            on_done(key, payload, attempt)
            completed += 1
            _check_abort(plan, completed, len(pending))
            break
    return stats


class _Running:
    """Bookkeeping for one in-flight worker process."""

    __slots__ = ("process", "channel", "deadline", "attempt", "dead_since")

    def __init__(
        self,
        process: BaseProcess,
        channel: ProcessQueue[Any],
        deadline: Optional[float],
        attempt: int,
    ) -> None:
        self.process = process
        self.channel = channel
        self.deadline = deadline
        self.attempt = attempt
        self.dead_since: Optional[float] = None


def _reap(entry: _Running) -> None:
    """Tear one worker down, forcefully if needed."""
    process = entry.process
    if process.is_alive():
        process.terminate()
        process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join(1.0)
    else:
        process.join(0.1)
    entry.channel.close()


def _execute_isolated(
    pending: Mapping[str, SimCell],
    *,
    jobs: int,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    worker: Callable[..., None],
    worker_args: WorkerArgs,
    on_state: OnState,
    on_done: OnDone,
    on_failed: OnFailed,
) -> Dict[str, int]:
    """One worker process per cell, at most *jobs* concurrent.

    Per-cell isolation is what buys the hard guarantees: a timeout
    kills exactly one worker, a crashed worker (non-zero exit, kill
    fault, OOM) is detected from its exit code instead of hanging the
    batch, and each cell has a private result channel so a torn write
    can never corrupt a sibling's result.
    """
    stats = {"retries": 0, "timeouts": 0, "crashes": 0}
    context = multiprocessing.get_context()
    waiting: Deque[str] = deque(pending)
    attempts: Dict[str, int] = {key: 0 for key in pending}
    retry_at: List[Tuple[float, str]] = []
    running: Dict[str, _Running] = {}
    finished: Set[str] = set()
    completed = 0
    total = len(pending)

    def retry_or_fail(key: str, error: str) -> None:
        attempts[key] += 1
        if attempts[key] > policy.max_retries or _is_terminal(error):
            on_failed(
                CellFailure(
                    key, "+".join(pending[key].workloads), attempts[key], error
                )
            )
            finished.add(key)
            return
        stats["retries"] += 1
        on_state(key, "pending", attempts[key], "retrying: %s" % error)
        retry_at.append(
            (time.monotonic() + policy.backoff_seconds * attempts[key], key)
        )

    try:
        while len(finished) < total:
            now = time.monotonic()
            for due, key in list(retry_at):
                if due <= now:
                    retry_at.remove((due, key))
                    waiting.append(key)
            while waiting and len(running) < jobs:
                key = waiting.popleft()
                attempt = attempts[key]
                channel: ProcessQueue[Any] = context.Queue()
                process = context.Process(
                    target=worker, args=worker_args(pending[key], attempt, channel)
                )
                process.daemon = True
                process.start()
                on_state(key, "running", attempt, "")
                deadline = (
                    now + policy.cell_timeout
                    if policy.cell_timeout is not None
                    else None
                )
                running[key] = _Running(process, channel, deadline, attempt)
            progressed = False
            for key, entry in list(running.items()):
                message: Optional[Tuple[str, str, Any]] = None
                try:
                    message = entry.channel.get_nowait()
                except queue_module.Empty:
                    pass
                now = time.monotonic()
                if message is not None:
                    del running[key]
                    _reap(entry)
                    _, status, body = message
                    if status == "ok":
                        on_done(key, body, entry.attempt)
                        finished.add(key)
                        completed += 1
                        _check_abort(plan, completed, total)
                    else:
                        retry_or_fail(key, str(body))
                    progressed = True
                elif entry.deadline is not None and now > entry.deadline:
                    del running[key]
                    _reap(entry)
                    stats["timeouts"] += 1
                    retry_or_fail(
                        key, "timed out after %.1fs" % (policy.cell_timeout or 0.0)
                    )
                    progressed = True
                elif not entry.process.is_alive():
                    code = entry.process.exitcode
                    if code == 0:
                        # Exited cleanly; the result is still flushing
                        # through the channel.  Give it a grace window.
                        if entry.dead_since is None:
                            entry.dead_since = now
                        elif now - entry.dead_since > _FLUSH_GRACE_SECONDS:
                            del running[key]
                            _reap(entry)
                            stats["crashes"] += 1
                            retry_or_fail(key, "worker exited without a result")
                            progressed = True
                    else:
                        del running[key]
                        _reap(entry)
                        stats["crashes"] += 1
                        retry_or_fail(key, "worker crashed (exit %s)" % code)
                        progressed = True
            if not progressed:
                time.sleep(_POLL_SECONDS)
    finally:
        for entry in running.values():
            _reap(entry)
    return stats
