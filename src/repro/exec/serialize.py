"""SimulationResult <-> plain-dict payloads.

The executor moves results between worker processes and persists them in
the content-addressed cache as JSON.  The payload captures everything
the figure drivers consume -- per-core breakdowns, energy, superpage
coverage, and the full unified stats namespace -- so a reconstructed
result is indistinguishable from a freshly simulated one (ints and
floats round-trip JSON exactly).

Only the :class:`~repro.obs.manifest.RunManifest` object itself is not
rebuilt; its scalar projection already lives in ``stats`` under
``manifest.*`` keys, which is what every downstream consumer reads.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.errors import SimulationError
from repro.sim.metrics import (
    CoreResult,
    DramReferenceBreakdown,
    ReplayServiceBreakdown,
    RuntimeBreakdown,
    SimulationResult,
)
from repro.exec.cells import PAYLOAD_SCHEMA

_DRAM_REF_FIELDS = (
    "ptw_leaf",
    "ptw_upper",
    "replay",
    "other",
    "prefetch",
    "writeback",
    "walks_with_dram_leaf",
    "replay_also_dram",
)

_SERVICE_FIELDS = ("llc", "row_buffer", "unaided")


def result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """Project a :class:`SimulationResult` onto a JSON-able dict."""
    cores: List[Dict[str, Any]] = []
    for core in result.cores:
        runtime = core.runtime
        cores.append(
            {
                "workload_name": core.workload_name,
                "references": core.references,
                "runtime": {
                    "total_cycles": runtime.total_cycles,
                    "dram_ptw_cycles": runtime.dram_ptw_cycles,
                    "dram_replay_cycles": runtime.dram_replay_cycles,
                    "dram_other_cycles": runtime.dram_other_cycles,
                },
                "dram_refs": {
                    name: getattr(core.dram_refs, name) for name in _DRAM_REF_FIELDS
                },
                "replay_service": {
                    name: getattr(core.replay_service, name)
                    for name in _SERVICE_FIELDS
                },
            }
        )
    return {
        "schema": PAYLOAD_SCHEMA,
        "cores": cores,
        "energy_total": result.energy_total,
        "superpage_fraction": result.superpage_fraction,
        "stats": dict(result.stats),
    }


def payload_to_result(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_payload`."""
    if payload.get("schema") != PAYLOAD_SCHEMA:
        raise SimulationError(
            "result payload schema %r != %d" % (payload.get("schema"), PAYLOAD_SCHEMA),
            context={
                "payload_schema": payload.get("schema"),
                "expected_schema": PAYLOAD_SCHEMA,
            },
        )
    cores: List[CoreResult] = []
    for entry in payload["cores"]:
        runtime = RuntimeBreakdown(**entry["runtime"])
        dram_refs = DramReferenceBreakdown()
        for name in _DRAM_REF_FIELDS:
            setattr(dram_refs, name, entry["dram_refs"][name])
        service = ReplayServiceBreakdown()
        for name in _SERVICE_FIELDS:
            setattr(service, name, entry["replay_service"][name])
        cores.append(
            CoreResult(
                entry["workload_name"],
                entry["references"],
                runtime,
                dram_refs,
                service,
            )
        )
    return SimulationResult(
        cores,
        payload["energy_total"],
        payload["superpage_fraction"],
        stats=dict(payload["stats"]),
        manifest=None,
    )
