"""Supervised persistent worker pool: the distributed-sweep fabric.

The per-cell spawn scheduler this replaces paid one fork + interpreter
warm-up per cell -- BENCH_perf.json recorded ``parallel_speedup < 1``
at CI scale, i.e. pure overhead.  Here N long-lived worker processes
(:func:`_pool_worker`) each pull cells from one shared work queue and
report over a private result channel, so the spawn cost amortizes over
the whole sweep and work stealing falls out of the queue for free: a
fast worker simply claims the next cell regardless of which worker it
was nominally enqueued toward (each claim by a non-"home" worker is
tallied as a steal).  Workers prefetch nothing beyond the cell in hand
-- claim depth of one is what keeps requeue-on-death exact.

Supervision (:func:`execute_pooled`) recognises three failure shapes:

* **Crashed worker** -- the process died (kill fault, OOM, segfault).
  Detected from ``is_alive()``/exit code; the claimed cell is requeued
  under the usual bounded-retry accounting and the worker is respawned.
* **Stalled worker** -- the process is alive but its heartbeat (a
  background thread in the worker, one beat per ``heartbeat_interval``)
  has gone quiet past ``heartbeat_timeout``.  The supervisor kills the
  worker, requeues its claim, and respawns.
* **Poison cell** -- one cell kills ``poison_threshold`` consecutive
  workers.  Instead of grinding the pool down it is quarantined with
  evidence through the executor's existing
  :class:`~repro.exec.cache.QuarantineReason` machinery
  (``poison-cell``) and reported as a terminal failure, honouring
  ``--allow-partial``.

Determinism: cells are pure functions of their identity, so claims,
steals, retries, kills, and respawns can reorder *work* but never
change *results* -- a fault-riddled pooled sweep is bit-identical to a
fault-free serial one (``tests/test_pool.py`` asserts exactly that).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from multiprocessing.queues import Queue as ProcessQueue
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Set, Tuple

from repro.exec.cells import SimCell
from repro.exec.faults import FaultPlan
from repro.exec.resilience import (
    CellFailure,
    OnDone,
    OnFailed,
    OnState,
    ResiliencePolicy,
    _check_abort,
    _is_terminal,
)

Payload = Dict[str, Any]

#: ``on_worker(action, worker_id, info)`` -- pool lifecycle hook for
#: telemetry: ``spawned`` / ``respawned`` / ``crashed`` / ``stalled`` /
#: ``poison``.
OnWorker = Callable[[str, int, str], None]

#: Supervisor poll interval while waiting on worker channels.
_POLL_SECONDS = 0.01

#: Seconds a cleanly-exited worker's claim gets to flush through its
#: channel before the exit is reclassified as a crash.
_FLUSH_GRACE_SECONDS = 5.0

#: Seconds a crashed worker's channel keeps being drained before its
#: claim is requeued -- the claim (or even the result) may still be in
#: flight through the pipe when the death is first observed.
_DEATH_DRAIN_GRACE_SECONDS = 0.2

#: Exit status a worker dies with when its result channel is torn.
_CHANNEL_TORN_EXIT = 70


@dataclass(frozen=True)
class PoolConfig:
    """Supervision knobs for one pooled batch.

    ``workers`` is the pool size (clamped to the batch size).
    ``heartbeat_interval`` is how often each worker beats;
    ``heartbeat_timeout`` is how long the supervisor lets a worker go
    quiet before killing and respawning it (the interval is clamped to
    a quarter of the timeout so a healthy worker can never miss the
    deadline).  ``poison_threshold`` is K in "a cell that kills K
    consecutive workers is quarantined".
    """

    workers: int = 2
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 10.0
    poison_threshold: int = 2


@dataclass(frozen=True)
class WorkerContext:
    """What every pool worker needs to simulate cells: forwarded to
    :func:`repro.exec.executor.simulate_cell` inside the worker."""

    cache_root: Optional[str] = None
    check_invariants: Optional[str] = None
    kernel: Optional[str] = None


def _pool_worker(
    worker_id: int,
    tasks: "ProcessQueue[Any]",
    channel: Connection,
    context: WorkerContext,
    plan: Optional[FaultPlan],
    heartbeat_interval: float,
) -> None:
    """Long-lived pool worker: claim one cell, simulate, report, repeat.

    Message protocol on *channel* (a pipe connection private to this
    worker, FIFO): ``("heartbeat", t)`` from a background thread every
    *heartbeat_interval* seconds; ``("claim", key, attempt)``
    immediately after dequeuing a cell and *before* any fault can fire,
    so the supervisor always knows which cell a dead worker was
    holding; then ``("ok", key, attempt, payload)`` or ``("error", key,
    attempt, message)``.  A ``("stop",)`` task ends the loop.

    The channel is a raw pipe, NOT a ``multiprocessing.Queue``: Queue
    sends go through a feeder thread, so a worker that ``os._exit``s
    right after ``put`` (exactly what a kill fault does) would take the
    unflushed claim with it.  ``Connection.send`` writes to the OS pipe
    synchronously -- once the claim call returns, the supervisor can
    read it no matter how the worker dies.

    Faults: a scheduled ``kill`` ``os._exit``s mid-cell -- for a
    persistent worker that *is* worker death.  A scheduled ``stall``
    suppresses heartbeats and sleeps; the supervisor's liveness
    deadline is what recovers (it kills this process and requeues the
    claim).
    """
    import threading

    from repro.exec.cache import ResultCache
    from repro.exec.executor import simulate_cell

    suppress = threading.Event()
    stop = threading.Event()
    send_lock = threading.Lock()

    def post(message: Tuple[Any, ...]) -> bool:
        try:
            with send_lock:
                channel.send(message)
        except Exception:
            return False  # supervisor gone; the process is winding down
        return True

    def heartbeats() -> None:
        while not stop.is_set():
            if not suppress.is_set():
                if not post(("heartbeat", time.time())):
                    return
            stop.wait(heartbeat_interval)

    threading.Thread(target=heartbeats, daemon=True).start()
    cache = (
        ResultCache(context.cache_root) if context.cache_root is not None else None
    )
    trace_memo: Dict[Any, Any] = {}
    try:
        while True:
            task = tasks.get()
            if task[0] == "stop":
                break
            _, key, cell, attempt = task
            post(("claim", key, attempt))
            try:
                if plan is not None:
                    if plan.should_stall(key, attempt):
                        suppress.set()
                        time.sleep(plan.stall_seconds)
                    plan.inject(key, attempt)  # kill faults exit right here
                payload = simulate_cell(
                    cell,
                    cache,
                    trace_memo,
                    check_invariants=context.check_invariants,
                    kernel=context.kernel,
                )
            except BaseException as exc:
                if not post(
                    ("error", key, attempt, "%s: %s" % (type(exc).__name__, exc))
                ):
                    os._exit(_CHANNEL_TORN_EXIT)
            else:
                post(("ok", key, attempt, payload))
            suppress.clear()
    finally:
        stop.set()


class _Worker:
    """Supervisor-side bookkeeping for one pool worker process."""

    __slots__ = ("worker_id", "process", "channel", "last_beat", "claim", "dead_since")

    def __init__(
        self,
        worker_id: int,
        process: BaseProcess,
        channel: Connection,
    ) -> None:
        self.worker_id = worker_id
        self.process = process
        self.channel = channel
        self.last_beat = time.monotonic()
        #: ``(key, attempt, claimed_at)`` of the cell in hand, or None.
        self.claim: Optional[Tuple[str, int, float]] = None
        self.dead_since: Optional[float] = None


def _kill_worker(worker: _Worker) -> None:
    """Tear one worker down, forcefully if needed."""
    process = worker.process
    if process.is_alive():
        process.terminate()
        process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join(1.0)
    else:
        process.join(0.1)
    worker.channel.close()


def execute_pooled(
    pending: Mapping[str, SimCell],
    *,
    policy: ResiliencePolicy,
    plan: Optional[FaultPlan],
    config: PoolConfig,
    context: WorkerContext,
    on_state: OnState,
    on_done: OnDone,
    on_failed: OnFailed,
    on_worker: Optional[OnWorker] = None,
) -> Dict[str, int]:
    """Drive every pending cell to ``done`` or ``failed`` on the pool.

    Hook contract matches :func:`repro.exec.resilience.execute_resilient`
    (the public entry point; it routes every batch that needs process
    isolation here).  Results flow through the hooks as each cell
    completes, so an abort never loses finished work.  Returns
    scheduler stats: the classic ``retries`` / ``timeouts`` /
    ``crashes`` plus the pool counters ``stalls``, ``steals``,
    ``workers_spawned``, ``workers_respawned``, and ``poison_cells``.
    """
    stats = {
        "retries": 0,
        "timeouts": 0,
        "crashes": 0,
        "stalls": 0,
        "steals": 0,
        "workers_spawned": 0,
        "workers_respawned": 0,
        "poison_cells": 0,
    }
    mp_context = multiprocessing.get_context()
    total = len(pending)
    n_workers = max(1, min(config.workers, total))
    interval = min(
        config.heartbeat_interval, max(0.02, config.heartbeat_timeout / 4.0)
    )

    tasks: "ProcessQueue[Any]" = mp_context.Queue()
    attempts: Dict[str, int] = {key: 0 for key in pending}
    deaths: Dict[str, int] = {}
    finished: Set[str] = set()
    #: key -> "home" worker id it was enqueued toward (claims by any
    #: other worker count as steals).  Present only while queued.
    queued: Dict[str, int] = {}
    waiting: Deque[str] = deque(pending)
    retry_at: List[Tuple[float, str]] = []
    completed = 0
    next_home = 0
    idle_since: Optional[float] = None

    def notify(action: str, worker_id: int, info: str = "") -> None:
        if on_worker is not None:
            on_worker(action, worker_id, info)

    def spawn(worker_id: int, respawn: bool) -> _Worker:
        receive_end, send_end = mp_context.Pipe(duplex=False)
        process = mp_context.Process(
            target=_pool_worker,
            args=(worker_id, tasks, send_end, context, plan, interval),
        )
        process.daemon = True
        process.start()
        send_end.close()  # parent keeps only the read end
        stats["workers_spawned"] += 1
        if respawn:
            stats["workers_respawned"] += 1
        notify("respawned" if respawn else "spawned", worker_id)
        return _Worker(worker_id, process, receive_end)

    def enqueue(key: str) -> None:
        nonlocal next_home
        queued[key] = next_home % n_workers
        next_home += 1
        tasks.put(("cell", key, pending[key], attempts[key]))

    def make_failure(key: str, n_attempts: int, error: str) -> CellFailure:
        return CellFailure(
            key, "+".join(pending[key].workloads), n_attempts, error
        )

    def retry_or_fail(key: str, error: str) -> None:
        attempts[key] += 1
        if attempts[key] > policy.max_retries or _is_terminal(error):
            on_failed(make_failure(key, attempts[key], error))
            finished.add(key)
            return
        stats["retries"] += 1
        on_state(key, "pending", attempts[key], "retrying: %s" % error)
        retry_at.append(
            (time.monotonic() + policy.backoff_seconds * attempts[key], key)
        )

    def reclaim(worker: _Worker, error: str, *, death: bool) -> None:
        """Account for the cell a dead/killed worker was holding."""
        claim = worker.claim
        worker.claim = None
        if claim is None:
            return
        key = claim[0]
        if key in finished:
            return
        if death:
            deaths[key] = deaths.get(key, 0) + 1
            if deaths[key] >= config.poison_threshold:
                stats["poison_cells"] += 1
                notify("poison", worker.worker_id, key[:12])
                on_failed(
                    make_failure(
                        key,
                        attempts[key] + 1,
                        "PoisonCell: killed %d consecutive worker(s) (%s)"
                        % (deaths[key], error),
                    )
                )
                finished.add(key)
                return
        retry_or_fail(key, error)

    workers = [spawn(index, False) for index in range(n_workers)]
    try:
        while len(finished) < total:
            now = time.monotonic()
            for due, key in list(retry_at):
                if due <= now:
                    retry_at.remove((due, key))
                    waiting.append(key)
            while waiting:
                enqueue(waiting.popleft())
            progressed = False
            for worker in workers:
                while True:
                    try:
                        if not worker.channel.poll():
                            break
                        message = worker.channel.recv()
                    except (OSError, EOFError, ValueError):
                        break
                    kind = message[0]
                    now = time.monotonic()
                    if kind == "heartbeat":
                        # Liveness only -- deliberately not "progress",
                        # or steady heartbeats would starve the
                        # lost-task watchdog below.
                        worker.last_beat = now
                    elif kind == "claim":
                        progressed = True
                        _, key, attempt = message
                        worker.last_beat = now
                        worker.claim = (key, attempt, now)
                        home = queued.pop(key, None)
                        if home is not None and home != worker.worker_id:
                            stats["steals"] += 1
                        if key not in finished:
                            on_state(
                                key, "running", attempt,
                                "worker %d" % worker.worker_id,
                            )
                    elif kind == "ok":
                        _, key, attempt, payload = message
                        worker.claim = None
                        worker.last_beat = now
                        if key in finished:
                            continue  # duplicate from a lost-task requeue
                        deaths.pop(key, None)
                        on_done(key, payload, attempt)
                        finished.add(key)
                        completed += 1
                        _check_abort(plan, completed, total)
                    else:  # "error"
                        _, key, attempt, error = message
                        worker.claim = None
                        worker.last_beat = now
                        if key in finished:
                            continue
                        deaths.pop(key, None)  # worker survived: not poison
                        retry_or_fail(key, str(error))
            now = time.monotonic()
            for index, worker in enumerate(workers):
                if not worker.process.is_alive():
                    code = worker.process.exitcode
                    if worker.dead_since is None:
                        worker.dead_since = now
                        continue
                    # Keep draining the dead worker's channel for a
                    # grace window first: its claim -- or, on a clean
                    # exit, even its result -- may still be in flight
                    # through the pipe when the death is observed.
                    grace = (
                        _FLUSH_GRACE_SECONDS
                        if code == 0 and worker.claim is not None
                        else _DEATH_DRAIN_GRACE_SECONDS
                    )
                    if now - worker.dead_since <= grace:
                        continue
                    if worker.claim is not None:
                        stats["crashes"] += 1
                        reclaim(
                            worker,
                            "worker crashed (exit %s)" % code,
                            death=True,
                        )
                    notify("crashed", worker.worker_id, "exit %s" % code)
                    _kill_worker(worker)
                    workers[index] = spawn(worker.worker_id, True)
                    progressed = True
                    continue
                claim = worker.claim
                if (
                    claim is not None
                    and policy.cell_timeout is not None
                    and now - claim[2] > policy.cell_timeout
                ):
                    stats["timeouts"] += 1
                    _kill_worker(worker)
                    reclaim(
                        worker,
                        "timed out after %.1fs" % policy.cell_timeout,
                        death=False,
                    )
                    workers[index] = spawn(worker.worker_id, True)
                    progressed = True
                elif now - worker.last_beat > config.heartbeat_timeout:
                    stats["stalls"] += 1
                    notify(
                        "stalled", worker.worker_id,
                        claim[0][:12] if claim is not None else "",
                    )
                    _kill_worker(worker)
                    reclaim(
                        worker,
                        "worker %d heartbeat stalled (silent > %.1fs)"
                        % (worker.worker_id, config.heartbeat_timeout),
                        death=False,
                    )
                    workers[index] = spawn(worker.worker_id, True)
                    progressed = True
            if progressed:
                idle_since = None
                continue
            # Lost-task watchdog: a worker that died between dequeuing a
            # task and sending its claim takes the task with it.  When
            # every living worker is idle yet cells remain enqueued and
            # unclaimed, requeue them after a grace window -- cells are
            # pure and completions are idempotent (first result wins),
            # so a duplicate execution is waste, never corruption.
            unclaimed = [key for key in queued if key not in finished]
            if (
                unclaimed
                and not waiting
                and not retry_at
                and all(w.claim is None for w in workers)
            ):
                if idle_since is None:
                    idle_since = now
                elif now - idle_since > max(1.0, 4 * interval):
                    for key in unclaimed:
                        tasks.put(("cell", key, pending[key], attempts[key]))
                    idle_since = None
            else:
                idle_since = None
            time.sleep(_POLL_SECONDS)
    finally:
        for _ in workers:
            try:
                tasks.put(("stop",))
            except Exception:
                break
        deadline = time.monotonic() + 1.0
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in workers:
            _kill_worker(worker)
        tasks.close()
        tasks.cancel_join_thread()
    return stats
