"""TEMPO: translation-enabled memory prefetching optimizations.

This package is the paper's primary contribution.  The pieces:

* :class:`~repro.core.prefetch_engine.PrefetchEngine` -- the finite state
  machine added to the memory controller (paper Figure 7): it detects
  tagged leaf page-table accesses, parses the fetched PTE, suppresses
  prefetches for non-present translations (page faults, Sec. 4.5), and
  constructs the replay's physical address from the PTE's physical page
  number concatenated with the piggybacked cache-line index.
* The walker-side tagging lives in :class:`repro.mmu.walker.
  PageTableWalker` (``tempo_tagging``).
* The scheduling integrations (10-cycle anticipation, TxQ grouping,
  BLISS half-weight counting + 15-cycle grace period, sub-row
  dedication) live in :mod:`repro.sched` and :mod:`repro.dram.subrow`,
  switched by :class:`~repro.common.config.TempoConfig`.
"""

from repro.core.prefetch_engine import PrefetchEngine

__all__ = ["PrefetchEngine"]
