"""TEMPO's Prefetch Engine (paper Sec. 4.1, Figure 7).

When the memory controller services a *tagged* leaf page-table request
from DRAM, the engine:

1. identifies the 8-byte PTE within the fetched data and extracts the
   physical page number it stores;
2. checks the present bit -- non-present translations (page faults,
   Sec. 4.5) must not trigger prefetches;
3. concatenates the physical page number with the replay's cache-line
   index, which the modified page-table walker piggybacked on the
   request (the second transaction-queue slot);
4. emits a prefetch request: the DRAM row holding the replay target is
   activated into the row buffer, and the cache line is pushed to the
   LLC (``prefetch_llc_extra_cycles`` later).

The engine is non-speculative: the constructed address is exactly the
address the replay will request (paper Sec. 3, "Prefetching accuracy").
"""

from repro.common.addressing import cache_line_base, replay_address
from repro.common.stats import StatGroup
from repro.sched.request import KIND_TEMPO_PREFETCH, MemoryRequest


class PrefetchEngine:
    """The controller-side FSM that turns PT fetches into prefetches."""

    def __init__(self, tempo_config, name="tempo_engine"):
        tempo_config.validate()
        self.config = tempo_config
        self.stats = StatGroup(name)

    @property
    def active(self):
        return self.config.enabled and self.config.row_prefetch

    def build_prefetch(self, pt_request, pt_finish_time):
        """Construct the replay-data prefetch for a serviced leaf-PT
        request, or ``None`` when no prefetch should be issued.

        *pt_finish_time* is when the PTE data became available at the
        controller; the prefetch may not start before the anticipation
        window (``wait_cycles``) elapses, giving queued page-table
        requests to the same row a chance to hit (paper Sec. 4.3a).
        """
        if not self.active:
            return None
        if not pt_request.tempo_tagged:
            return None
        pte = pt_request.pte
        if pte is None or not pte.present or not pte.is_leaf:
            # Unallocated translation: never prefetch through a fault.
            self.stats.counter("suppressed_not_present").add()
            return None
        target = replay_address(pte.frame_paddr, pt_request.replay_line_index)
        prefetch = MemoryRequest(
            paddr=cache_line_base(target),
            kind=KIND_TEMPO_PREFETCH,
            cpu=pt_request.cpu,
            enqueue_time=pt_finish_time,
            not_before=pt_finish_time + self.config.wait_cycles,
            origin_pt_id=pt_request.req_id,
        )
        self.stats.counter("prefetches_built").add()
        return prefetch

    def llc_ready_time(self, prefetch_finish_time):
        """When the prefetched line lands in the LLC (``None`` when LLC
        prefetching is disabled and only the row buffer is warmed)."""
        if not self.config.llc_prefetch:
            return None
        return prefetch_finish_time + self.config.prefetch_llc_extra_cycles
