"""x86-64 four-level radix page table (paper Sec. 2.1, Figure 2).

The table is materialized the way hardware sees it: every table page is a
real 4 KB frame obtained from the :class:`~repro.vm.frame_allocator.
FrameAllocator`, so each walk step has a concrete physical address -- the
concatenation of the table page's base with the level's 9-bit radix index.
That physical address is what travels through the cache hierarchy and
DRAM, which is exactly the locality TEMPO exploits (leaf-PT entries for
neighbouring virtual pages share cache lines and DRAM rows).

Leaf levels by page size: 4 KB pages terminate at L1, 2 MB at L2, 1 GB at
L3 (``LEAF_LEVEL_FOR_SIZE``).
"""

from repro.common.addressing import pte_address, radix_index
from repro.common.constants import (
    LEAF_LEVEL_FOR_SIZE,
    PAGE_SIZE_4K,
    PT_LEVELS,
    SUPPORTED_PAGE_SIZES,
)
from repro.common.errors import MappingError, TranslationFault
from repro.common.stats import StatGroup


class PageTableEntry:
    """One 8-byte entry, as the prefetch engine would parse it."""

    __slots__ = ("present", "is_leaf", "frame_paddr", "page_size", "child")

    def __init__(self, present=False, is_leaf=False, frame_paddr=0, page_size=0, child=None):
        self.present = present
        self.is_leaf = is_leaf
        self.frame_paddr = frame_paddr
        self.page_size = page_size
        self.child = child

    def __repr__(self):
        if not self.present:
            return "PageTableEntry(not-present)"
        kind = "leaf/%d" % self.page_size if self.is_leaf else "table"
        return "PageTableEntry(%s -> 0x%x)" % (kind, self.frame_paddr)


class _PageTableNode:
    """One table page: a sparse 512-entry array living at ``base_paddr``."""

    __slots__ = ("level", "base_paddr", "entries")

    def __init__(self, level, base_paddr):
        self.level = level
        self.base_paddr = base_paddr
        self.entries = {}


class WalkResult:
    """Outcome of a radix walk: the per-level entry addresses a hardware
    walker would fetch, plus the terminal entry.

    ``accesses`` is a tuple of ``(level, entry_paddr)`` ordered L4 -> leaf.
    When the walk faults (``faulted``), ``accesses`` covers the levels the
    walker actually read before hitting a non-present entry.
    """

    __slots__ = ("accesses", "entry", "faulted", "leaf_level")

    def __init__(self, accesses, entry, faulted, leaf_level):
        self.accesses = accesses
        self.entry = entry
        self.faulted = faulted
        self.leaf_level = leaf_level

    @property
    def frame_paddr(self):
        return self.entry.frame_paddr if self.entry is not None else None

    @property
    def page_size(self):
        return self.entry.page_size if self.entry is not None else None

    def __repr__(self):
        state = "fault" if self.faulted else "0x%x" % self.entry.frame_paddr
        return "WalkResult(levels=%d, %s)" % (len(self.accesses), state)


class PageTable:
    """A process's radix page table, backed by allocated frames."""

    def __init__(self, allocator):
        self._allocator = allocator
        self.root = _PageTableNode(PT_LEVELS, allocator.alloc_4k())
        self.stats = StatGroup("page_table")
        self.stats.counter("table_pages").add()
        self._mapped_bytes = {size: 0 for size in SUPPORTED_PAGE_SIZES}
        # Footprint coverage is tracked at 2 MB-chunk granularity: a
        # chunk is superpage-backed when a 2 MB/1 GB mapping covers it,
        # 4 KB-backed when any base page inside it is mapped.  This is
        # the paper's "fraction of memory footprint devoted to
        # superpages" (Figure 10 right) under demand paging, where a
        # byte-weighted ratio would be distorted by partially-touched
        # 4 KB chunks.
        self._chunks_4k = set()
        self._super_chunks = 0

    @property
    def cr3(self):
        """Physical address of the root (L4) table page."""
        return self.root.base_paddr

    # ------------------------------------------------------------------
    # Mapping management (the OS side)
    # ------------------------------------------------------------------

    def map(self, vaddr, frame_paddr, page_size=PAGE_SIZE_4K):
        """Install ``vaddr -> frame_paddr`` at *page_size* granularity.

        *vaddr* and *frame_paddr* must be aligned to *page_size*.
        """
        if page_size not in LEAF_LEVEL_FOR_SIZE:
            raise MappingError(
                "unsupported page size %r" % (page_size,),
                context={"vaddr": vaddr, "page_size": page_size},
            )
        if vaddr & (page_size - 1):
            raise MappingError(
                "virtual address 0x%x not %d-aligned" % (vaddr, page_size),
                context={"vaddr": vaddr, "page_size": page_size},
            )
        if frame_paddr & (page_size - 1):
            raise MappingError(
                "frame 0x%x not %d-aligned" % (frame_paddr, page_size),
                context={"vaddr": vaddr, "frame_paddr": frame_paddr, "page_size": page_size},
            )
        leaf_level = LEAF_LEVEL_FOR_SIZE[page_size]
        node = self.root
        for level in range(PT_LEVELS, leaf_level, -1):
            node = self._descend_or_create(node, vaddr, level)
        index = radix_index(vaddr, leaf_level)
        existing = node.entries.get(index)
        if existing is not None and existing.present:
            raise MappingError(
                "0x%x already mapped (level %d index %d)" % (vaddr, leaf_level, index),
                context={
                    "vaddr": vaddr,
                    "level": leaf_level,
                    "index": index,
                    "existing_frame_paddr": existing.frame_paddr,
                    "existing_page_size": existing.page_size,
                },
            )
        node.entries[index] = PageTableEntry(
            present=True, is_leaf=True, frame_paddr=frame_paddr, page_size=page_size
        )
        self._mapped_bytes[page_size] += page_size
        if page_size == PAGE_SIZE_4K:
            self._chunks_4k.add(vaddr >> 21)
        else:
            self._super_chunks += page_size >> 21
        self.stats.counter("mappings_%d" % page_size).add()

    def _descend_or_create(self, node, vaddr, level):
        index = radix_index(vaddr, level)
        entry = node.entries.get(index)
        if entry is None or not entry.present:
            child = _PageTableNode(level - 1, self._allocator.alloc_4k())
            node.entries[index] = PageTableEntry(
                present=True, is_leaf=False, frame_paddr=child.base_paddr, child=child
            )
            self.stats.counter("table_pages").add()
            return child
        if entry.is_leaf:
            raise MappingError(
                "0x%x covered by an existing %d-byte superpage" % (vaddr, entry.page_size),
                context={
                    "vaddr": vaddr,
                    "level": level,
                    "superpage_size": entry.page_size,
                    "superpage_frame_paddr": entry.frame_paddr,
                },
            )
        return entry.child

    def unmap(self, vaddr, page_size=PAGE_SIZE_4K):
        """Remove the leaf mapping covering *vaddr* at *page_size*.

        Intermediate table pages are retained (as Linux does for hot
        ranges); callers that need full teardown rebuild the table.
        """
        leaf_level = LEAF_LEVEL_FOR_SIZE[page_size]
        node = self.root
        for level in range(PT_LEVELS, leaf_level, -1):
            entry = node.entries.get(radix_index(vaddr, level))
            if entry is None or not entry.present or entry.is_leaf:
                raise MappingError(
                    "0x%x is not mapped at %d bytes" % (vaddr, page_size),
                    context={"vaddr": vaddr, "page_size": page_size, "level": level},
                )
            node = entry.child
        index = radix_index(vaddr, leaf_level)
        entry = node.entries.get(index)
        if entry is None or not entry.present or not entry.is_leaf:
            raise MappingError(
                "0x%x is not mapped at %d bytes" % (vaddr, page_size),
                context={"vaddr": vaddr, "page_size": page_size, "level": leaf_level},
            )
        del node.entries[index]
        self._mapped_bytes[page_size] -= page_size
        self.stats.counter("unmappings").add()

    # ------------------------------------------------------------------
    # Lookup (the hardware side)
    # ------------------------------------------------------------------

    def walk(self, vaddr):
        """Perform a full radix walk, returning a :class:`WalkResult`.

        The result's ``accesses`` list contains the physical address of
        each page-table entry a hardware walker reads, in order; the
        page-table walker model turns those into memory references.
        """
        accesses = []
        node = self.root
        for level in range(PT_LEVELS, 0, -1):
            index = radix_index(vaddr, level)
            accesses.append((level, pte_address(node.base_paddr, index)))
            entry = node.entries.get(index)
            if entry is None or not entry.present:
                return WalkResult(tuple(accesses), None, True, level)
            if entry.is_leaf:
                return WalkResult(tuple(accesses), entry, False, level)
            node = entry.child
        # The L1 loop iteration either returned a leaf or a fault; a
        # present non-leaf L1 entry is structurally impossible.
        raise MappingError(
            "corrupt page table: non-leaf entry at L1 for 0x%x" % vaddr,
            context={"vaddr": vaddr, "accesses": list(accesses)},
        )

    def translate(self, vaddr):
        """Return ``(frame_base, page_size)`` or raise
        :class:`TranslationFault` -- the OS-level view, with no timing."""
        result = self.walk(vaddr)
        if result.faulted:
            raise TranslationFault(
                vaddr,
                context={
                    "fault_level": result.leaf_level,
                    "levels_read": len(result.accesses),
                },
            )
        return result.entry.frame_paddr, result.entry.page_size

    def is_mapped(self, vaddr):
        return not self.walk(vaddr).faulted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def table_pages(self):
        """Number of 4 KB pages the table itself occupies."""
        return self.stats.counter("table_pages").value

    def mapped_bytes(self, page_size=None):
        """Footprint mapped at *page_size* (or total when ``None``)."""
        if page_size is None:
            return sum(self._mapped_bytes.values())
        return self._mapped_bytes[page_size]

    def superpage_fraction(self):
        """Fraction of the touched footprint (in 2 MB chunks) backed by
        2 MB/1 GB pages (the right-hand graph of the paper's Figure 10).
        """
        total = self._super_chunks + len(self._chunks_4k)
        if total == 0:
            return 0.0
        return self._super_chunks / total

    def __repr__(self):
        return "PageTable(cr3=0x%x, %d table pages, %d MB mapped)" % (
            self.cr3,
            self.table_pages,
            self.mapped_bytes() // (1024 * 1024),
        )
