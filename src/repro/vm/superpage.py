"""Superpage allocation policies (paper Secs. 2.2 and 6.2).

Three OS behaviours are modelled:

* :class:`BasePagePolicy` -- transparent hugepages disabled; everything is
  a 4 KB page (the green triangles in Figure 13).
* :class:`ThpPolicy` -- Linux transparent hugepage support: an aligned
  2 MB chunk wholly inside a mapped region is opportunistically backed by
  a 2 MB frame *when the allocator can find contiguous memory*; memhog
  fragmentation makes that increasingly unlikely (the circles in
  Figure 13).
* :class:`HugetlbfsPolicy` -- explicit reservation: a pool of 2 MB or
  1 GB pages is reserved up front (before fragmentation), so demands are
  nearly always satisfied (the 2 MB circles at high coverage and the 1 GB
  boxes in Figure 13).

Every policy falls back to 4 KB pages when a superpage cannot be used,
exactly like the kernel.
"""

from repro.common.constants import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.errors import AllocationError, ConfigError


class SuperpagePolicy:
    """Interface: pick the page size + frame backing a faulting address."""

    name = "base"

    def __init__(self, allocator):
        self._allocator = allocator

    def choose_mapping(self, region, vaddr):
        """Return ``(page_vbase, frame_paddr, page_size)`` for the fault
        at *vaddr* inside *region* (a :class:`~repro.vm.address_space.
        Region`).  The caller installs the mapping."""
        raise NotImplementedError

    def _map_4k(self, vaddr):
        page_vbase = vaddr & ~(PAGE_SIZE_4K - 1)
        return page_vbase, self._allocator.alloc_4k(), PAGE_SIZE_4K

    @staticmethod
    def _chunk_fits(region, vaddr, page_size):
        """True when the *page_size*-aligned chunk containing *vaddr*
        lies wholly inside *region* (the kernel's THP eligibility test)."""
        chunk_base = vaddr & ~(page_size - 1)
        return chunk_base >= region.base and chunk_base + page_size <= region.end


class BasePagePolicy(SuperpagePolicy):
    """4 KB pages only."""

    name = "4k-only"

    def choose_mapping(self, region, vaddr):
        return self._map_4k(vaddr)


class ThpPolicy(SuperpagePolicy):
    """Transparent 2 MB hugepages, subject to allocator contiguity.

    A chunk that once fell back to 4 KB pages is *demoted*: later faults
    inside it must not retry the 2 MB promotion, because a huge mapping
    cannot be installed over live base-page PTEs (collapsing them is
    khugepaged's job, which the paper's steady-state traces do not
    exercise).
    """

    name = "thp-2m"

    def __init__(self, allocator):
        super().__init__(allocator)
        self._demoted = set()

    def choose_mapping(self, region, vaddr):
        chunk_base = vaddr & ~(PAGE_SIZE_2M - 1)
        if (
            region.allow_superpages
            and chunk_base not in self._demoted
            and self._chunk_fits(region, vaddr, PAGE_SIZE_2M)
            and region.chunk_eligible(chunk_base)
        ):
            frame = self._allocator.try_alloc_2m()
            if frame is not None:
                return chunk_base, frame, PAGE_SIZE_2M
            self._demoted.add(chunk_base)
        return self._map_4k(vaddr)


class HugetlbfsPolicy(SuperpagePolicy):
    """Explicitly reserved 2 MB or 1 GB pages (libhugetlbfs)."""

    def __init__(self, allocator, page_size, pool_pages):
        if page_size not in (PAGE_SIZE_2M, PAGE_SIZE_1G):
            raise ConfigError(
                "hugetlbfs supports 2 MB / 1 GB pages only",
                context={"page_size": page_size, "pool_pages": pool_pages},
            )
        super().__init__(allocator)
        self.page_size = page_size
        self.name = "hugetlbfs-%s" % ("2m" if page_size == PAGE_SIZE_2M else "1g")
        self._pool = allocator.reserve_pool(page_size, pool_pages)

    @property
    def pool_remaining(self):
        return len(self._pool)

    def choose_mapping(self, region, vaddr):
        if (
            region.allow_superpages
            and self._pool
            and self._chunk_fits(region, vaddr, self.page_size)
        ):
            return vaddr & ~(self.page_size - 1), self._pool.pop(), self.page_size
        return self._map_4k(vaddr)


def make_policy(vm_config, allocator, expected_footprint_bytes=0):
    """Build the policy implied by a :class:`~repro.common.config.VmConfig`.

    hugetlbfs pools are sized from *expected_footprint_bytes* (plus one
    page of slack); THP needs no sizing because it allocates lazily.
    """
    if vm_config.hugetlbfs_1g or vm_config.hugetlbfs_2m:
        page_size = PAGE_SIZE_1G if vm_config.hugetlbfs_1g else PAGE_SIZE_2M
        pool_pages = expected_footprint_bytes // page_size + 1
        try:
            return HugetlbfsPolicy(allocator, page_size, pool_pages)
        except AllocationError:
            # Boot-time reservation failed outright: behave like a kernel
            # that could not satisfy the hugetlbfs mount.
            return BasePagePolicy(allocator)
    if vm_config.thp_enabled:
        return ThpPolicy(allocator)
    return BasePagePolicy(allocator)
