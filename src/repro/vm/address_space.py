"""Per-process virtual address space with demand paging.

Workload generators register *regions* (the program's arrays, graphs,
hash tables).  The simulator translates lazily: the first touch of an
unmapped page raises a minor fault serviced here, where the superpage
policy decides the backing page size -- mirroring Linux first-touch
allocation with THP.

Virtual layout: every region is placed on a fresh 1 GB-aligned base so
2 MB and 1 GB chunks inside it are always alignable.
"""

import bisect

from repro.common.constants import PAGE_SIZE_1G
from repro.common.errors import MappingError, TranslationFault
from repro.common.stats import StatGroup
from repro.vm.page_table import PageTable


#: First virtual address handed to regions (above typical binary/heap).
REGION_SPACE_BASE = 0x100_0000_0000  # the 1 TB mark


class Region:
    """A named, contiguous virtual allocation.

    ``thp_eligibility`` models sub-chunk realities THP fights (unaligned
    VMA pieces, mixed-permission spans, partial chunks): only that
    fraction of the region's 2 MB chunks is promotable.  The choice is
    deterministic per chunk so re-runs map identically.
    """

    __slots__ = ("base", "size", "name", "allow_superpages", "thp_eligibility")

    def __init__(self, base, size, name, allow_superpages=True, thp_eligibility=1.0):
        self.base = base
        self.size = size
        self.name = name
        self.allow_superpages = allow_superpages
        self.thp_eligibility = thp_eligibility

    def chunk_eligible(self, chunk_base):
        """Deterministic per-chunk THP eligibility draw."""
        if self.thp_eligibility >= 1.0:
            return True
        if self.thp_eligibility <= 0.0:
            return False
        # Knuth multiplicative hash keeps the draw stable across runs.
        draw = ((chunk_base >> 21) * 2654435761) % (1 << 32) / float(1 << 32)
        return draw < self.thp_eligibility

    @property
    def end(self):
        return self.base + self.size

    def contains(self, vaddr):
        return self.base <= vaddr < self.end

    def __repr__(self):
        return "Region(%s, 0x%x, %d MB)" % (self.name, self.base, self.size // (1024 * 1024))


class AddressSpace:
    """One process's virtual memory: regions + page table + policy."""

    def __init__(self, allocator, policy, page_table=None):
        self._allocator = allocator
        self.policy = policy
        self.page_table = page_table if page_table is not None else PageTable(allocator)
        self._regions = []
        self._region_bases = []
        self._next_base = REGION_SPACE_BASE
        self.stats = StatGroup("address_space")

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------

    def allocate_region(self, size, name, allow_superpages=True, thp_eligibility=1.0):
        """Reserve *size* bytes of virtual space; returns the Region.

        Nothing is mapped until touched (demand paging).
        """
        if size <= 0:
            raise MappingError(
                "region %r must have positive size" % name,
                context={"region": name, "size": size},
            )
        base = self._next_base
        region = Region(base, size, name, allow_superpages, thp_eligibility)
        self._regions.append(region)
        self._region_bases.append(base)
        # Next region starts at the following 1 GB boundary plus a guard gap.
        self._next_base = (
            (region.end + PAGE_SIZE_1G - 1) // PAGE_SIZE_1G + 1
        ) * PAGE_SIZE_1G
        self.stats.counter("regions").add()
        return region

    def region_of(self, vaddr):
        """Return the region containing *vaddr*, or ``None``."""
        position = bisect.bisect_right(self._region_bases, vaddr) - 1
        if position < 0:
            return None
        region = self._regions[position]
        return region if region.contains(vaddr) else None

    @property
    def regions(self):
        return tuple(self._regions)

    # ------------------------------------------------------------------
    # Demand paging
    # ------------------------------------------------------------------

    def handle_fault(self, vaddr):
        """Service a minor fault: map the page containing *vaddr*.

        Returns ``(frame_base, page_size)``.  Raises
        :class:`TranslationFault` for addresses outside every region
        (a would-be segfault, indicating a workload-generator bug).
        """
        region = self.region_of(vaddr)
        if region is None:
            raise TranslationFault(
                vaddr,
                "0x%x is outside every region" % vaddr,
                context={
                    "num_regions": len(self._regions),
                    "regions": [r.name for r in self._regions[:8]],
                },
            )
        page_vbase, frame_paddr, page_size = self.policy.choose_mapping(region, vaddr)
        self.page_table.map(page_vbase, frame_paddr, page_size)
        self.stats.counter("minor_faults").add()
        self.stats.counter("faults_%d" % page_size).add()
        return frame_paddr, page_size

    def ensure_mapped(self, vaddr):
        """Translate *vaddr*, demand-mapping on first touch.

        Returns ``(frame_base, page_size, faulted)``.
        """
        result = self.page_table.walk(vaddr)
        if not result.faulted:
            return result.entry.frame_paddr, result.entry.page_size, False
        frame_paddr, page_size = self.handle_fault(vaddr)
        return frame_paddr, page_size, True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def superpage_fraction(self):
        """Fraction of the mapped footprint backed by superpages."""
        return self.page_table.superpage_fraction()

    def mapped_bytes(self, page_size=None):
        return self.page_table.mapped_bytes(page_size)

    def __repr__(self):
        return "AddressSpace(%d regions, %d MB mapped, policy=%s)" % (
            len(self._regions),
            self.mapped_bytes() // (1024 * 1024),
            self.policy.name,
        )
