"""Physical frame allocator with fragmentation modelling.

The allocator manages physical memory at two granularities: 4 KB frames
and 2 MB regions (512 frames).  1 GB allocations take 512 contiguous
2 MB regions.  State is kept lazily -- only regions that have ever been
touched are materialized -- so multi-hundred-gigabyte physical memories
(needed for the 1 GB-superpage study) cost memory proportional to the
pages actually used.

Fragmentation (paper Sec. 6.2): running ``memhog`` at fraction *f* both
consumes capacity and destroys contiguity.  Real kernels fight back with
compaction, so instead of simulating per-frame pinning we model the net
effect directly: a 2 MB allocation finds a contiguous region with
probability ``(1 - f) ** contiguity_exponent`` (default exponent 2, which
matches the paper's observed coverage decline: f=0 -> always, f=0.25 ->
~56%, f=0.5 -> ~25%, f=0.75 -> ~6%).  The exponent is a tunable
compaction-difficulty parameter documented in DESIGN.md.
"""

from repro.common.constants import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.errors import AllocationError, ConfigError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup

FRAMES_PER_REGION = PAGE_SIZE_2M // PAGE_SIZE_4K
REGIONS_PER_1G = PAGE_SIZE_1G // PAGE_SIZE_2M


class FrameAllocator:
    """Lazy physical-memory allocator (see module docstring)."""

    def __init__(self, phys_mem_bytes, rng=None, contiguity_exponent=2.0):
        if phys_mem_bytes < PAGE_SIZE_2M:
            raise ConfigError(
                "physical memory must hold at least one 2 MB region",
                context={"phys_mem_bytes": phys_mem_bytes},
            )
        self.phys_mem_bytes = phys_mem_bytes
        self.num_regions = phys_mem_bytes // PAGE_SIZE_2M
        self.contiguity_exponent = contiguity_exponent
        self._rng = rng if rng is not None else DeterministicRng(0, "frame-allocator")
        #: Next never-touched region index (bump pointer).
        self._region_cursor = 0
        #: Region currently being filled with 4 KB allocations, as a
        #: ``[region_index, frames_used]`` pair (or ``None``).
        self._open_region = None
        #: Frames freed inside partial regions, available for reuse.
        self._free_frames = []
        self._memhog_fraction = 0.0
        self._memhog_regions = 0
        self.stats = StatGroup("frame_allocator")

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    @property
    def regions_used(self):
        return self._region_cursor + self._memhog_regions

    @property
    def free_bytes(self):
        partially_free = 0
        if self._open_region is not None:
            partially_free = (FRAMES_PER_REGION - self._open_region[1]) * PAGE_SIZE_4K
        untouched = (self.num_regions - self.regions_used) * PAGE_SIZE_2M
        return untouched + partially_free + len(self._free_frames) * PAGE_SIZE_4K

    def _take_region(self):
        """Claim the next untouched 2 MB region; raises when exhausted."""
        if self.regions_used >= self.num_regions:
            raise AllocationError(
                "physical memory exhausted (%d regions)" % self.num_regions,
                context={
                    "num_regions": self.num_regions,
                    "memhog_regions": self._memhog_regions,
                    "free_frames": len(self._free_frames),
                },
            )
        region = self._region_cursor
        self._region_cursor += 1
        return region

    # ------------------------------------------------------------------
    # Allocation entry points
    # ------------------------------------------------------------------

    def alloc_4k(self):
        """Allocate one 4 KB frame; returns its base physical address."""
        self.stats.counter("alloc_4k").add()
        if self._free_frames:
            return self._free_frames.pop()
        # Fill the open region before claiming a new one (first-fit, like
        # the buddy allocator's preference for already-split blocks).
        if self._open_region is None or self._open_region[1] >= FRAMES_PER_REGION:
            self._open_region = [self._take_region(), 0]
        region, used = self._open_region
        self._open_region[1] = used + 1
        return region * PAGE_SIZE_2M + used * PAGE_SIZE_4K

    def try_alloc_2m(self):
        """Allocate a 2 MB-aligned region, or ``None`` when fragmentation
        defeats contiguity (see module docstring)."""
        if self.regions_used >= self.num_regions:
            return None
        success_probability = (1.0 - self._memhog_fraction) ** self.contiguity_exponent
        if self._rng.random() > success_probability:
            self.stats.counter("alloc_2m_failed").add()
            return None
        region = self._take_region()
        self.stats.counter("alloc_2m").add()
        return region * PAGE_SIZE_2M

    def alloc_2m(self):
        """Allocate a 2 MB region; raises :class:`AllocationError` when
        unavailable."""
        frame = self.try_alloc_2m()
        if frame is None:
            raise AllocationError("no contiguous 2 MB region available")
        return frame

    def try_alloc_1g(self):
        """Allocate a 1 GB-aligned region, or ``None``.

        1 GB pages are only handed out from never-fragmented memory
        (mirroring Linux, where 1 GB pages must be reserved at boot); the
        bump cursor is rounded up to 1 GB alignment.
        """
        aligned_cursor = -(-self._region_cursor // REGIONS_PER_1G) * REGIONS_PER_1G
        if aligned_cursor + REGIONS_PER_1G > self.num_regions - self._memhog_regions:
            self.stats.counter("alloc_1g_failed").add()
            return None
        if self._memhog_fraction > 0.0:
            # Fragmented memory cannot produce fresh gigabyte pages.
            self.stats.counter("alloc_1g_failed").add()
            return None
        self._region_cursor = aligned_cursor + REGIONS_PER_1G
        self.stats.counter("alloc_1g").add()
        return aligned_cursor * PAGE_SIZE_2M

    def alloc_1g(self):
        frame = self.try_alloc_1g()
        if frame is None:
            raise AllocationError("no contiguous 1 GB region available")
        return frame

    def reserve_pool(self, page_size, count):
        """Pre-reserve *count* superpages (hugetlbfs boot-time pools).

        Returns the list of base addresses.  Reservations happen before
        memhog runs, so they always come from contiguous memory.
        """
        if page_size == PAGE_SIZE_2M:
            taker = self.alloc_2m
        elif page_size == PAGE_SIZE_1G:
            taker = self.alloc_1g
        else:
            raise ConfigError(
                "pools exist only for 2 MB / 1 GB pages",
                context={"page_size": page_size, "count": count},
            )
        return [taker() for _ in range(count)]

    def free_4k(self, paddr):
        """Return a 4 KB frame to the free pool."""
        self._free_frames.append(paddr)
        self.stats.counter("free_4k").add()

    # ------------------------------------------------------------------
    # Fragmentation injection
    # ------------------------------------------------------------------

    def apply_memhog(self, fraction):
        """Pin *fraction* of physical memory, fragmenting the rest.

        Capacity: the pinned regions are removed from the allocatable
        pool.  Contiguity: subsequent 2 MB allocations succeed with
        probability ``(1 - fraction) ** contiguity_exponent``.
        """
        if not 0.0 <= fraction < 1.0:
            raise ConfigError(
                "memhog fraction must be in [0, 1)",
                context={"fraction": fraction},
            )
        self._memhog_fraction = fraction
        self._memhog_regions = int(self.num_regions * fraction)
        self.stats.counter("memhog_regions").add(self._memhog_regions)

    @property
    def memhog_fraction(self):
        return self._memhog_fraction

    def __repr__(self):
        return "FrameAllocator(%d MB, %.0f%% memhog)" % (
            self.phys_mem_bytes // (1024 * 1024),
            self._memhog_fraction * 100,
        )
