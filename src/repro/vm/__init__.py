"""OS virtual-memory model.

This package is the software half of the paper's substrate: a physical
frame allocator with fragmentation injection (standing in for Linux's
buddy allocator + memhog), an x86-64 four-level radix page table whose
table pages occupy *real* allocated frames (so every walk step has a
physical address with DRAM-row locality), superpage policies (THP,
hugetlbfs 2 MB / 1 GB), and a per-process address space that demand-maps
pages on first touch.
"""

from repro.vm.frame_allocator import FrameAllocator
from repro.vm.page_table import PageTable, PageTableEntry, WalkResult
from repro.vm.superpage import (
    BasePagePolicy,
    HugetlbfsPolicy,
    SuperpagePolicy,
    ThpPolicy,
    make_policy,
)
from repro.vm.address_space import AddressSpace, Region

__all__ = [
    "FrameAllocator",
    "PageTable",
    "PageTableEntry",
    "WalkResult",
    "SuperpagePolicy",
    "BasePagePolicy",
    "ThpPolicy",
    "HugetlbfsPolicy",
    "make_policy",
    "AddressSpace",
    "Region",
]
