"""Simulation-as-a-service: the sweep service (``repro serve``).

This package wraps the :class:`~repro.exec.ExperimentExecutor` in an
asyncio/stdlib HTTP API so many concurrent clients share one warm
content-addressed cache.  The measured warm-cache speedups
(~150-230x on the CI figures, ``docs/performance.md``) mean a shared
cache turns most sweep traffic into pure cache serving: the first
client to ask for a figure pays for its cells, every later client --
and every later *overlapping* figure -- gets them back at disk-read
cost.

Layering (``docs/service.md`` is the user guide):

* :mod:`repro.service.wire` -- job-spec and response schemas, strict
  validation, the figure/ablation catalog;
* :mod:`repro.service.jobs` -- the file-backed job store under
  ``<cache-dir>/service`` and the runner that drives one job at a time
  through the shared executor (``resume=True``, per-job telemetry and
  option scoping);
* :mod:`repro.service.app` -- the HTTP server itself: the route table,
  handlers, chunked JSONL event streaming, and startup recovery of
  jobs a killed server left behind;
* :mod:`repro.service.client` -- a typed blocking client for tests,
  CI, and scripts.

Crash safety is inherited, not reinvented: jobs re-enqueued after a
kill resume through the executor's checkpoint journals
(``docs/resilience.md``) with zero re-simulation of completed cells,
and resumed results are bit-identical to uninterrupted ones.
"""

from repro.service.app import ROUTES, Route, SweepService, match_route
from repro.service.client import JobView, ServiceClient, ServiceError
from repro.service.jobs import JOB_STATES, Job, JobRunner, JobStore
from repro.service.wire import (
    WIRE_SCHEMA,
    JobSpec,
    WireError,
    driver_catalog,
    parse_job_spec,
)

import os
from typing import Optional


def service_root(cache_dir: str) -> str:
    """Where the service keeps jobs/telemetry/results under a cache."""
    return os.path.join(cache_dir, "service")


def build_service(
    cache_dir: Optional[str] = None,
    jobs: int = 1,
    kernel: Optional[str] = None,
    check_invariants: Optional[str] = None,
    max_retries: int = 2,
    cell_timeout: Optional[float] = None,
    heartbeat_timeout: float = 10.0,
    allow_partial: bool = False,
    faults: Optional[str] = None,
    workers: Optional[int] = None,
) -> SweepService:
    """One call from CLI flags (or test kwargs) to a ready service.

    ``workers`` sizes the persistent pool each job's cells fan out
    across (``jobs`` is its legacy alias; when both are given,
    ``workers`` wins).  The executor is created with ``resume=True`` --
    the service always trusts checkpoint journals, which is exactly
    what makes a restarted server pick a killed sweep back up where it
    stopped.
    """
    from repro.exec import (
        ExperimentExecutor,
        FaultSpec,
        ResiliencePolicy,
        ResultCache,
        default_cache_dir,
    )

    root = cache_dir or default_cache_dir()
    executor = ExperimentExecutor(
        jobs=jobs,
        workers=workers,
        cache=ResultCache(root),
        resilience=ResiliencePolicy(
            max_retries=max_retries,
            cell_timeout=cell_timeout,
            heartbeat_timeout=heartbeat_timeout,
            allow_partial=allow_partial,
        ),
        faults=FaultSpec.parse(faults) if faults else None,
        resume=True,
        check_invariants=(
            None if check_invariants in (None, "off") else check_invariants
        ),
        kernel=kernel,
    )
    store = JobStore(service_root(root))
    return SweepService(JobRunner(executor, store))


__all__ = [
    "JOB_STATES",
    "Job",
    "JobRunner",
    "JobSpec",
    "JobStore",
    "JobView",
    "ROUTES",
    "Route",
    "ServiceClient",
    "ServiceError",
    "SweepService",
    "WIRE_SCHEMA",
    "WireError",
    "build_service",
    "driver_catalog",
    "match_route",
    "parse_job_spec",
    "service_root",
]
