"""A small typed Python client for the sweep service.

Blocking and stdlib-only (:mod:`http.client`), because its consumers
are tests, CI smoke jobs, and scripts -- things that submit a job,
poll or stream until it finishes, and fetch the rows::

    from repro.service.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8765)
    job = client.submit(figure="fig01", length=2000, workloads=["xsbench"])
    done = client.wait(job.id)
    print(done.counters["simulated"], "cells simulated")
    rows = client.result(job.id)["result"]["rows"]

Every non-2xx response raises :class:`ServiceError` carrying the HTTP
status and the server's structured error context, so callers never
parse failure strings.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.common.errors import ReproError


class ServiceError(ReproError):
    """A non-2xx response from the sweep service."""

    def __init__(
        self, status: int, message: str, context: Optional[Dict[str, Any]] = None
    ) -> None:
        self.status = status
        super().__init__(
            "HTTP %d: %s" % (status, message), context=context or {}
        )


@dataclass(frozen=True)
class JobView:
    """The client-side rendering of one job record."""

    id: str
    figure: str
    state: str
    spec: Dict[str, Any]
    counters: Dict[str, int]
    missing_cells: List[str]
    resumes: int
    error: Optional[str]

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "degraded", "failed")

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobView":
        return cls(
            id=payload["id"],
            figure=payload["figure"],
            state=payload["state"],
            spec=dict(payload.get("spec", {})),
            counters=dict(payload.get("counters", {})),
            missing_cells=list(payload.get("missing_cells", [])),
            resumes=int(payload.get("resumes", 0)),
            error=payload.get("error"),
        )


class ServiceClient:
    """One server, many requests; a fresh connection per call (the
    server closes connections after each response)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if encoded else {}
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            payload = self._decode(response.status, raw)
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    str(payload.get("error", "request failed")),
                    context=payload.get("context"),
                )
            return payload
        finally:
            connection.close()

    @staticmethod
    def _decode(status: int, raw: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ServiceError(
                status,
                "response body is not JSON",
                context={"body_prefix": raw[:120].decode("utf-8", "replace")},
            )
        if not isinstance(payload, dict):
            raise ServiceError(
                status,
                "response body is not a JSON object",
                context={"got": str(type(payload))},
            )
        return payload

    # -- endpoints ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/api/health")

    def figures(self) -> Dict[str, Any]:
        return self._request("GET", "/api/figures")

    def cache(self) -> Dict[str, Any]:
        return self._request("GET", "/api/cache")

    def cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        """One result payload by its SHA-256 cell key, or ``None`` on a
        miss (the same shape :class:`~repro.exec.HTTPBackend` reads)."""
        try:
            document = self._request("GET", "/api/cache/%s" % key)
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise
        payload = document.get("payload")
        return payload if isinstance(payload, dict) else None

    def cache_put(self, key: str, payload: Dict[str, Any]) -> None:
        """Replicate one result payload into the server's cache."""
        self._request("PUT", "/api/cache/%s" % key, body=payload)

    def submit(
        self,
        figure: str,
        length: Optional[int] = None,
        seed: int = 0,
        workloads: Optional[Sequence[str]] = None,
        kernel: Optional[str] = None,
        check_invariants: Optional[str] = None,
        max_retries: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        allow_partial: bool = False,
    ) -> JobView:
        """Submit one job spec; returns the accepted (queued) job."""
        spec: Dict[str, Any] = {"figure": figure, "seed": seed}
        if length is not None:
            spec["length"] = length
        if workloads is not None:
            spec["workloads"] = list(workloads)
        if kernel is not None:
            spec["kernel"] = kernel
        if check_invariants is not None:
            spec["check_invariants"] = check_invariants
        if max_retries is not None:
            spec["max_retries"] = max_retries
        if cell_timeout is not None:
            spec["cell_timeout"] = cell_timeout
        if allow_partial:
            spec["allow_partial"] = True
        payload = self._request("POST", "/api/jobs", body=spec)
        return JobView.from_payload(payload["job"])

    def jobs(self) -> List[JobView]:
        payload = self._request("GET", "/api/jobs")
        return [JobView.from_payload(job) for job in payload["jobs"]]

    def job(self, job_id: str) -> JobView:
        payload = self._request("GET", "/api/jobs/%s" % job_id)
        return JobView.from_payload(payload["job"])

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> JobView:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view.terminal:
                return view
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408,
                    "job %s still %s after %.1fs" % (job_id, view.state, timeout),
                    context={"job": job_id, "state": view.state},
                )
            time.sleep(poll)

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's payload: ``result`` rows + ``manifest``."""
        return self._request("GET", "/api/jobs/%s/result" % job_id)

    def manifest(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", "/api/jobs/%s/manifest" % job_id)

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's telemetry events live, one dict per event,
        until the server closes the stream (``stream_end``)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", "/api/jobs/%s/events" % job_id)
            response = connection.getresponse()
            if response.status >= 400:
                payload = self._decode(response.status, response.read())
                raise ServiceError(
                    response.status,
                    str(payload.get("error", "request failed")),
                    context=payload.get("context"),
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                if isinstance(event, dict):
                    yield event
        finally:
            connection.close()
