"""The sweep service's asyncio HTTP server.

Pure stdlib: :func:`asyncio.start_server` plus a small HTTP/1.1
request parser.  The server owns one long-lived
:class:`~repro.exec.ExperimentExecutor` (via the
:class:`~repro.service.jobs.JobRunner`) and a persisted
:class:`~repro.service.jobs.JobStore`; a single background worker task
drains the job queue, running each sweep on a thread so the event loop
keeps serving status polls and event streams while cells simulate.

The route table (:data:`ROUTES`) is data, not code paths: the docs
honesty gate (``tests/test_docs.py``) matches every HTTP example in
``docs/service.md`` against it, exactly as it matches every ``repro``
invocation against the argparse tree.

Endpoints (see ``docs/service.md`` for the full reference)::

    GET  /api/health             liveness + job/executor/cache stats
    GET  /api/figures            submittable figure & ablation ids
    GET  /api/cache              content-addressed cache entry counts
    GET  /api/cache/{key}        one result payload by cell key
    PUT  /api/cache/{key}        store one result payload (replication)
    POST /api/jobs               submit a job spec -> 202 + job record
    GET  /api/jobs               all jobs, oldest first
    GET  /api/jobs/{id}          one job's state + per-job counters
    GET  /api/jobs/{id}/events   chunked JSONL telemetry stream
    GET  /api/jobs/{id}/result   figure rows + manifest (terminal jobs)
    GET  /api/jobs/{id}/manifest the provenance manifest alone

Crash safety: jobs found ``queued``/``running`` at startup are
re-enqueued; their sweeps resume from the executor's checkpoint
journals with zero re-simulation of completed cells
(``docs/resilience.md`` -- the service adds nothing to that machinery,
it just turns it on with ``resume=True``).
"""

from __future__ import annotations

import asyncio
import json
import os
import re
from dataclasses import dataclass
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.exec.backend import LocalDirBackend
from repro.service.jobs import Job, JobRunner, JobStore
from repro.service.wire import WireError, driver_catalog, parse_job_spec, service_envelope

#: Largest request body the server reads, in bytes.
MAX_BODY_BYTES = 1 << 20

#: Cache keys are SHA-256 content addresses -- anything else is
#: rejected before it can touch the filesystem.
_CACHE_KEY_RE = re.compile(r"[0-9a-f]{64}")

#: How often stream handlers poll for new telemetry lines / job state.
STREAM_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class Route:
    """One endpoint: method, path pattern, handler name.

    Pattern segments in braces (``{id}``) match any single non-empty
    path segment and are passed to the handler as parameters.
    """

    method: str
    pattern: str
    name: str

    def match(self, path: str) -> Optional[Dict[str, str]]:
        own = self.pattern.strip("/").split("/")
        got = path.strip("/").split("/")
        if len(own) != len(got):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(own, got):
            if expected.startswith("{") and expected.endswith("}"):
                if not actual:
                    return None
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


ROUTES: Tuple[Route, ...] = (
    Route("GET", "/api/health", "health"),
    Route("GET", "/api/figures", "figures"),
    Route("GET", "/api/cache", "cache"),
    Route("GET", "/api/cache/{key}", "cache_get"),
    Route("PUT", "/api/cache/{key}", "cache_put"),
    Route("POST", "/api/jobs", "submit"),
    Route("GET", "/api/jobs", "jobs"),
    Route("GET", "/api/jobs/{id}", "job"),
    Route("GET", "/api/jobs/{id}/events", "events"),
    Route("GET", "/api/jobs/{id}/result", "result"),
    Route("GET", "/api/jobs/{id}/manifest", "manifest"),
)


def match_route(
    method: str, path: str
) -> Tuple[Optional[Route], Dict[str, str], List[str]]:
    """Resolve ``(method, path)`` against :data:`ROUTES`.

    Returns ``(route, params, allowed_methods)``; ``route`` is ``None``
    on no match, with ``allowed_methods`` non-empty when the path exists
    under a different method (HTTP 405 vs 404).
    """
    allowed: List[str] = []
    for route in ROUTES:
        params = route.match(path)
        if params is None:
            continue
        if route.method == method:
            return route, params, []
        allowed.append(route.method)
    return None, {}, allowed


@dataclass
class Response:
    """A complete JSON response."""

    status: int
    payload: Dict[str, Any]
    headers: Tuple[Tuple[str, str], ...] = ()


@dataclass
class EventStream:
    """A chunked ``application/x-ndjson`` response: one JSON object per
    line, flushed as produced."""

    lines: AsyncIterator[str]


_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class SweepService:
    """The HTTP facade over one executor + job store; see module docs."""

    def __init__(self, runner: JobRunner) -> None:
        self.runner = runner
        self.store: JobStore = runner.store
        # The queue and stop event are loop-bound on Python 3.9, so they
        # are created inside serve(), not here.
        self._queue: Optional["asyncio.Queue[Job]"] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- submission / recovery -----------------------------------------

    def submit(self, spec_payload: Any) -> Job:
        """Validate, persist, and enqueue one job."""
        spec = parse_job_spec(spec_payload)
        job = self.store.create(spec)
        if self._queue is not None:
            self._queue.put_nowait(job)
        return job

    def recover_jobs(self) -> List[Job]:
        """Re-enqueue every job a previous (killed) server left
        unfinished.  Called once at startup, before serving."""
        recovered: List[Job] = []
        for job in self.store.in_order():
            if job.state in ("queued", "running"):
                job.state = "queued"
                job.resumes += 1
                self.store.save(job)
                if self._queue is not None:
                    self._queue.put_nowait(job)
                recovered.append(job)
        return recovered

    # -- the worker -----------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None
        while True:
            job = await queue.get()
            # One job at a time: the shared executor's job_scope swap is
            # only race-free when sweeps never overlap (cells still fan
            # out across the executor's worker processes).
            await loop.run_in_executor(None, self.runner.run_job, job)

    # -- handlers -------------------------------------------------------

    async def handle(
        self, method: str, path: str, body: bytes
    ) -> Union[Response, EventStream]:
        """Dispatch one request; the transport-independent core."""
        route, params, allowed = match_route(method, path)
        if route is None:
            if allowed:
                return self._error(
                    405,
                    "method %s not allowed for %s" % (method, path),
                    {"allowed": allowed},
                    headers=(("Allow", ", ".join(allowed)),),
                )
            return self._error(404, "no such endpoint: %s" % path, {"path": path})
        handler: Callable[..., Awaitable[Union[Response, EventStream]]] = getattr(
            self, "_handle_" + route.name
        )
        try:
            return await handler(params, body)
        except WireError as exc:
            return self._error(400, str(exc), exc.context)

    def _error(
        self,
        status: int,
        message: str,
        context: Optional[Dict[str, Any]] = None,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> Response:
        payload = {"error": message, "context": context or {}}
        return Response(status, payload, headers)

    def _job_or_error(self, params: Dict[str, str]) -> Union[Job, Response]:
        job = self.store.get(params["id"])
        if job is None:
            return self._error(
                404,
                "no such job: %s" % params["id"],
                {"job": params["id"], "known": [j.id for j in self.store.in_order()]},
            )
        return job

    async def _handle_health(
        self, params: Dict[str, str], body: bytes
    ) -> Response:
        executor = self.runner.executor
        cache = executor.cache
        return Response(
            200,
            {
                "status": "ok",
                "jobs": self.store.states(),
                "executor": {
                    "jobs": executor.jobs,
                    "kernel": executor.kernel,
                    "counters": executor.counters_snapshot(),
                },
                "cache": {
                    "root": cache.root if cache is not None else None,
                    "entries": cache.stats() if cache is not None else {},
                },
            },
        )

    async def _handle_figures(
        self, params: Dict[str, str], body: bytes
    ) -> Response:
        from repro.workloads.registry import workload_names

        catalog = driver_catalog()
        return Response(
            200,
            {
                "figures": {
                    figure: {"kind": info.kind, "workloads": info.workload_mode}
                    for figure, info in sorted(catalog.items())
                },
                "workloads": sorted(workload_names(include_extensions=True)),
            },
        )

    async def _handle_cache(
        self, params: Dict[str, str], body: bytes
    ) -> Response:
        cache = self.runner.executor.cache
        if cache is None:
            return Response(200, {"root": None, "entries": {}})
        return Response(200, {"root": cache.root, "entries": cache.stats()})

    def _cache_backend_or_error(
        self, params: Dict[str, str]
    ) -> Union[Tuple[str, "LocalDirBackend"], Response]:
        """Validate the ``{key}`` segment and resolve the server's local
        cache tier (never its own remote -- a cache server must not
        recurse into another cache server)."""
        key = params["key"]
        if not _CACHE_KEY_RE.fullmatch(key):
            return self._error(
                400,
                "cache key must be 64 lowercase hex chars (a SHA-256 cell key)",
                {"key": key[:80]},
            )
        cache = self.runner.executor.cache
        if cache is None:
            return self._error(
                404, "this server runs without a result cache", {"key": key[:12]}
            )
        return key, LocalDirBackend(cache.root)

    async def _handle_cache_get(
        self, params: Dict[str, str], body: bytes
    ) -> Response:
        resolved = self._cache_backend_or_error(params)
        if isinstance(resolved, Response):
            return resolved
        key, backend = resolved
        payload, status = backend.get_entry(key)
        if payload is None:
            # Misses and corrupt entries look identical to remote
            # clients: re-simulate.  (The owning executor quarantines
            # corrupt entries through its own cache path.)
            return self._error(
                404, "no cache entry for %s" % key[:12],
                {"key": key[:12], "status": status},
            )
        return Response(200, {"key": key, "payload": payload})

    async def _handle_cache_put(
        self, params: Dict[str, str], body: bytes
    ) -> Response:
        resolved = self._cache_backend_or_error(params)
        if isinstance(resolved, Response):
            return resolved
        key, backend = resolved
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError):
            return self._error(400, "request body is not valid JSON", {})
        if not isinstance(payload, dict):
            return self._error(
                400,
                "cache payload must be a JSON object",
                {"key": key[:12], "got": type(payload).__name__},
            )
        backend.put(key, payload)
        return Response(201, {"key": key, "stored": True})

    async def _handle_submit(
        self, params: Dict[str, str], body: bytes
    ) -> Response:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError):
            return self._error(400, "request body is not valid JSON", {})
        job = self.submit(payload)
        return Response(202, {"job": job.public()})

    async def _handle_jobs(
        self, params: Dict[str, str], body: bytes
    ) -> Response:
        return Response(
            200, {"jobs": [job.public() for job in self.store.in_order()]}
        )

    async def _handle_job(
        self, params: Dict[str, str], body: bytes
    ) -> Union[Response, EventStream]:
        job = self._job_or_error(params)
        if isinstance(job, Response):
            return job
        return Response(200, {"job": job.public()})

    async def _handle_result(
        self, params: Dict[str, str], body: bytes
    ) -> Union[Response, EventStream]:
        job = self._job_or_error(params)
        if isinstance(job, Response):
            return job
        if job.state in ("queued", "running"):
            return self._error(
                409,
                "job %s is still %s; poll /api/jobs/%s or stream its events"
                % (job.id, job.state, job.id),
                {"job": job.id, "state": job.state},
            )
        if job.state == "failed":
            return self._error(
                409,
                "job %s failed: %s" % (job.id, job.error),
                {"job": job.id, "state": job.state, "error": job.error},
            )
        payload = self.store.load_result(job.id)
        if payload is None:
            return self._error(
                500,
                "job %s is %s but its result record is missing"
                % (job.id, job.state),
                {"job": job.id, "state": job.state},
            )
        return Response(200, payload)

    async def _handle_manifest(
        self, params: Dict[str, str], body: bytes
    ) -> Union[Response, EventStream]:
        job = self._job_or_error(params)
        if isinstance(job, Response):
            return job
        payload = self.store.load_result(job.id)
        if payload is not None and "manifest" in payload:
            return Response(200, {"job": job.id, "manifest": payload["manifest"]})
        return Response(200, {"job": job.id, "manifest": self.runner.job_manifest(job)})

    async def _handle_events(
        self, params: Dict[str, str], body: bytes
    ) -> Union[Response, EventStream]:
        job = self._job_or_error(params)
        if isinstance(job, Response):
            return job
        return EventStream(self._event_lines(job.id))

    async def _event_lines(self, job_id: str) -> AsyncIterator[str]:
        """Tail the job's telemetry JSONL live, then close with one
        ``stream_end`` record carrying the terminal state."""
        path = self.store.telemetry_path(job_id)
        offset = 0
        while True:
            drained = False
            if os.path.exists(path):
                with open(path) as stream:
                    stream.seek(offset)
                    tail = stream.read()
                complete = tail.rfind("\n") + 1
                if complete:
                    offset += complete
                    for line in tail[:complete].splitlines():
                        if line.strip():
                            yield line
                drained = not tail[complete:]
            job = self.store.get(job_id)
            if job is not None and job.state not in ("queued", "running") and drained:
                yield json.dumps(
                    {"event": "stream_end", "job": job_id, "state": job.state},
                    sort_keys=True,
                )
                return
            await asyncio.sleep(STREAM_POLL_SECONDS)

    # -- the socket layer ----------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Parse one request; ``(method, path, body, too_large)`` or
        ``None`` on a torn/empty connection."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY_BYTES:
            return method, target.split("?", 1)[0], b"", True
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, target.split("?", 1)[0], body, False

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body, too_large = request
            if too_large:
                result: Union[Response, EventStream] = self._error(
                    413,
                    "request body exceeds %d bytes" % MAX_BODY_BYTES,
                    {"limit": MAX_BODY_BYTES},
                )
            else:
                result = await self.handle(method, path, body)
            if isinstance(result, Response):
                await self._write_response(writer, result)
            else:
                await self._write_stream(writer, result)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to clean up but the socket
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        payload = dict(response.payload)
        payload.setdefault("service", service_envelope())
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        status_text = _STATUS_TEXT.get(response.status, "Unknown")
        head = [
            "HTTP/1.1 %d %s" % (response.status, status_text),
            "Content-Type: application/json",
            "Content-Length: %d" % len(body),
            "Connection: close",
        ]
        head.extend("%s: %s" % pair for pair in response.headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, stream: EventStream
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for line in stream.lines:
            chunk = (line + "\n").encode("utf-8")
            writer.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- lifecycle ------------------------------------------------------

    async def serve(
        self,
        host: str,
        port: int,
        announce: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Bind, recover unfinished jobs, and serve until :meth:`shutdown`.

        *announce* is called once with the actual bound host/port
        (``port=0`` asks the OS for a free one).
        """
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        self.recover_jobs()
        server = await asyncio.start_server(self._handle_connection, host, port)
        sockets = server.sockets or []
        if sockets:
            bound = sockets[0].getsockname()
            self.host, self.port = bound[0], bound[1]
        if announce is not None and self.port is not None:
            announce(self.host or host, self.port)
        worker = asyncio.ensure_future(self._worker())
        stop = self._stop
        try:
            await stop.wait()
        finally:
            worker.cancel()
            server.close()
            await server.wait_closed()

    def shutdown(self) -> None:
        """Stop serving; safe to call from any thread or a signal
        handler."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)

    def run(
        self,
        host: str,
        port: int,
        announce: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Blocking entry point: serve until SIGINT/SIGTERM."""
        import signal

        async def main() -> None:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    # shutdown() resolves the loop-bound stop event at
                    # signal time, after serve() has created it.
                    loop.add_signal_handler(signum, self.shutdown)
                except (NotImplementedError, ValueError, RuntimeError):
                    pass  # non-main thread or platform without signals
            await self.serve(host, port, announce=announce)

        asyncio.run(main())
