"""Wire schemas for the sweep service: job specs and response shapes.

Everything that crosses the HTTP boundary is defined here, away from
both the socket code (:mod:`repro.service.app`) and the execution code
(:mod:`repro.service.jobs`), so the client, the server, and the docs
honesty gate all validate against one vocabulary.

A *job spec* names a figure or ablation driver by its registry id
(:data:`repro.analysis.experiments.EXPERIMENT_DRIVERS` |
:data:`repro.analysis.ablations.ABLATION_DRIVERS`) plus the driver
overrides (``length``, ``seed``, ``workloads``) and per-job executor
options (``kernel``, ``check_invariants``, retry policy).  Validation
is strict -- unknown keys, unknown figures, unknown workload names, and
workload lists that contradict the driver's shape are all
:class:`WireError`, which the server maps to HTTP 400 with the error's
structured ``context`` in the response body.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.common.errors import ReproError

#: Version of every request/response body this package speaks; carried
#: in each response envelope and in persisted job records.
WIRE_SCHEMA = 1

#: The keys a job-spec body may carry, and nothing else.
_SPEC_KEYS = (
    "figure",
    "length",
    "seed",
    "workloads",
    "kernel",
    "check_invariants",
    "max_retries",
    "cell_timeout",
    "allow_partial",
)

_KERNELS = ("scalar", "batch")
_INVARIANT_MODES = ("off", "sample", "full")


class WireError(ReproError):
    """A request body or parameter the service cannot honor (HTTP 400)."""


@dataclass(frozen=True)
class FigureInfo:
    """One submittable driver: its registry id, the callable, and how it
    treats workload overrides (``list`` accepts any subset, ``single``
    takes exactly one name, ``fixed`` accepts none)."""

    figure: str
    driver: Callable[..., Dict[str, Any]]
    workload_mode: str
    kind: str  # "figure" | "ablation"


def driver_catalog() -> Dict[str, FigureInfo]:
    """Every submittable figure and ablation, keyed by id.

    Imported lazily so the wire module stays importable without the
    full analysis stack (the typed client pulls this module in).
    """
    from repro.analysis.ablations import (
        ABLATION_DRIVERS,
        SINGLE_WORKLOAD_ABLATIONS,
    )
    from repro.analysis.experiments import (
        EXPERIMENT_DRIVERS,
        FIXED_WORKLOAD_FIGURES,
    )

    catalog: Dict[str, FigureInfo] = {}
    for figure, driver in EXPERIMENT_DRIVERS.items():
        mode = "fixed" if figure in FIXED_WORKLOAD_FIGURES else "list"
        catalog[figure] = FigureInfo(figure, driver, mode, "figure")
    for figure, driver in ABLATION_DRIVERS.items():
        mode = "single" if figure in SINGLE_WORKLOAD_ABLATIONS else "list"
        catalog[figure] = FigureInfo(figure, driver, mode, "ablation")
    return catalog


@dataclass(frozen=True)
class JobSpec:
    """A validated sweep-job submission.

    ``None`` means "use the driver's / server's default" throughout, so
    two specs that hash identically run identical cells -- the property
    the warm-cache story depends on.
    """

    figure: str
    length: Optional[int] = None
    seed: int = 0
    workloads: Optional[Tuple[str, ...]] = None
    kernel: Optional[str] = None
    check_invariants: Optional[str] = None
    max_retries: Optional[int] = None
    cell_timeout: Optional[float] = None
    allow_partial: bool = False

    def canonical(self) -> Dict[str, Any]:
        """The JSON-stable dict this spec persists and hashes as."""
        return {
            "schema": WIRE_SCHEMA,
            "figure": self.figure,
            "length": self.length,
            "seed": self.seed,
            "workloads": list(self.workloads) if self.workloads else None,
            "kernel": self.kernel,
            "check_invariants": self.check_invariants,
            "max_retries": self.max_retries,
            "cell_timeout": self.cell_timeout,
            "allow_partial": self.allow_partial,
        }

    def digest(self) -> str:
        """SHA-256 of the canonical spec; job ids embed a prefix of it."""
        payload = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def driver_kwargs(self) -> Dict[str, Any]:
        """The keyword arguments this spec passes to its driver."""
        info = driver_catalog()[self.figure]
        kwargs: Dict[str, Any] = {"seed": self.seed}
        if self.length is not None:
            kwargs["length"] = self.length
        if self.workloads:
            if info.workload_mode == "single":
                kwargs["workload"] = self.workloads[0]
            else:
                kwargs["workloads"] = tuple(self.workloads)
        return kwargs


def _require(condition: bool, message: str, context: Dict[str, Any]) -> None:
    if not condition:
        raise WireError(message, context=context)


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate a submission body into a :class:`JobSpec`.

    Raises :class:`WireError` (HTTP 400) with a structured context on
    the first violation; nothing about the request is ever guessed.
    """
    _require(
        isinstance(payload, Mapping),
        "job spec must be a JSON object",
        {"got": type(payload).__name__},
    )
    assert isinstance(payload, Mapping)
    unknown = sorted(set(payload) - set(_SPEC_KEYS))
    _require(
        not unknown,
        "unknown job-spec key(s): %s" % ", ".join(unknown),
        {"unknown": unknown, "known": list(_SPEC_KEYS)},
    )

    catalog = driver_catalog()
    figure = payload.get("figure")
    _require(
        isinstance(figure, str) and figure in catalog,
        "unknown figure %r" % (figure,),
        {"figure": figure, "known": sorted(catalog)},
    )
    assert isinstance(figure, str)
    info = catalog[figure]

    length = payload.get("length")
    if length is not None:
        _require(
            isinstance(length, int) and not isinstance(length, bool) and length > 0,
            "length must be a positive integer",
            {"length": length},
        )
    seed = payload.get("seed", 0)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
        "seed must be a non-negative integer",
        {"seed": seed},
    )

    workloads = _parse_workloads(payload.get("workloads"), info)

    kernel = payload.get("kernel")
    if kernel is not None:
        _require(
            kernel in _KERNELS,
            "kernel must be one of %s" % (_KERNELS,),
            {"kernel": kernel},
        )
    invariants = payload.get("check_invariants")
    if invariants is not None:
        _require(
            invariants in _INVARIANT_MODES,
            "check_invariants must be one of %s" % (_INVARIANT_MODES,),
            {"check_invariants": invariants},
        )

    max_retries = payload.get("max_retries")
    if max_retries is not None:
        _require(
            isinstance(max_retries, int)
            and not isinstance(max_retries, bool)
            and max_retries >= 0,
            "max_retries must be a non-negative integer",
            {"max_retries": max_retries},
        )
    cell_timeout = payload.get("cell_timeout")
    if cell_timeout is not None:
        _require(
            isinstance(cell_timeout, (int, float))
            and not isinstance(cell_timeout, bool)
            and cell_timeout > 0,
            "cell_timeout must be a positive number of seconds",
            {"cell_timeout": cell_timeout},
        )
        cell_timeout = float(cell_timeout)
    allow_partial = payload.get("allow_partial", False)
    _require(
        isinstance(allow_partial, bool),
        "allow_partial must be a boolean",
        {"allow_partial": allow_partial},
    )

    return JobSpec(
        figure=figure,
        length=length,
        seed=seed,
        workloads=workloads,
        kernel=kernel,
        check_invariants=invariants,
        max_retries=max_retries,
        cell_timeout=cell_timeout,
        allow_partial=allow_partial,
    )


def _parse_workloads(
    value: Any, info: FigureInfo
) -> Optional[Tuple[str, ...]]:
    if value is None:
        return None
    _require(
        isinstance(value, (list, tuple)) and len(value) > 0,
        "workloads must be a non-empty list of workload names",
        {"workloads": value},
    )
    assert isinstance(value, (list, tuple))
    names = tuple(value)
    _require(
        all(isinstance(name, str) for name in names),
        "workloads must be strings",
        {"workloads": list(names)},
    )

    from repro.workloads.registry import workload_names

    known = set(workload_names(include_extensions=True))
    bad = sorted(name for name in names if name not in known)
    _require(
        not bad,
        "unknown workload(s): %s" % ", ".join(bad),
        {"unknown": bad, "known": sorted(known)},
    )
    _require(
        info.workload_mode != "fixed",
        "%s uses a fixed workload set; omit 'workloads'" % info.figure,
        {"figure": info.figure},
    )
    if info.workload_mode == "single":
        _require(
            len(names) == 1,
            "%s studies one workload; pass exactly one name" % info.figure,
            {"figure": info.figure, "workloads": list(names)},
        )
    return names


def service_envelope() -> Dict[str, Any]:
    """The provenance block stamped onto every HTTP response."""
    from repro import __version__

    return {
        "name": "repro-sweep-service",
        "version": __version__,
        "wire_schema": WIRE_SCHEMA,
    }
