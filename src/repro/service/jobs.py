"""Job persistence and execution for the sweep service.

The service's crash-safety story is file-backed, like the executor's:

* every submitted job is persisted as ``<root>/jobs/<id>.json`` (atomic
  temp-file + rename) the moment it is accepted, and re-persisted on
  every state transition;
* each job's telemetry -- the executor's batch/cell lifecycle events
  (:mod:`repro.exec.telemetry`) bracketed by ``job_started`` /
  ``job_finished`` records -- appends to
  ``<root>/telemetry/<id>.jsonl``, which is also what the streaming
  endpoint tails;
* a finished job's figure result and manifest land in
  ``<root>/results/<id>.json``.

``<root>`` lives under the executor's cache directory, so one
``--cache-dir`` carries the whole state.  A server restarted after a
kill re-enqueues every job it finds in ``queued`` or ``running`` state;
because the job re-runs through the same
:class:`~repro.exec.ExperimentExecutor` with ``resume=True``, the
checkpoint journal and content-addressed cache serve every cell that
completed before the kill, and the resumed result is bit-identical to
an uninterrupted run (the executor's determinism contract).

Jobs execute strictly one at a time: the shared executor's memo,
counters, and per-job option scoping (:meth:`ExperimentExecutor.job_scope`)
are not concurrency-safe, and within a job the executor already fans
cells out across ``--jobs`` worker processes.  Bounded concurrency is
therefore *cell*-level, by design.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exec import (
    CellExecutionError,
    ResiliencePolicy,
    SweepAborted,
    TelemetryLog,
)
from repro.obs.manifest import executor_provenance
from repro.service.wire import WIRE_SCHEMA, JobSpec, WireError, driver_catalog

#: The job lifecycle.  ``queued`` and ``running`` survive a server kill
#: (both re-enqueue on restart); the other three are terminal.
JOB_STATES = ("queued", "running", "done", "degraded", "failed")


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as stream:
            json.dump(payload, stream, sort_keys=True)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


@dataclass
class Job:
    """One submitted sweep job and everything known about it."""

    id: str
    seq: int
    spec: JobSpec
    state: str = "queued"
    submitted: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    #: Per-job executor counter deltas (``simulated``, ``cache_hits``,
    #: ``memo_hits``, ``resumed``, ...) -- the proof of where this
    #: job's results came from.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Cells that degraded to missing under ``allow_partial``.
    missing_cells: List[str] = field(default_factory=list)
    #: How many times a restarted server re-enqueued this job.
    resumes: int = 0

    def public(self) -> Dict[str, Any]:
        """The job as every ``/api/jobs`` response renders it."""
        return {
            "schema": WIRE_SCHEMA,
            "id": self.id,
            "figure": self.spec.figure,
            "spec": self.spec.canonical(),
            "spec_sha256": self.spec.digest(),
            "state": self.state,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "counters": dict(self.counters),
            "missing_cells": list(self.missing_cells),
            "resumes": self.resumes,
        }

    def record(self) -> Dict[str, Any]:
        """The persisted on-disk form (adds the sequence number)."""
        payload = self.public()
        payload["seq"] = self.seq
        return payload

    @classmethod
    def from_record(cls, payload: Dict[str, Any]) -> "Job":
        spec_payload = dict(payload["spec"])
        spec_payload.pop("schema", None)
        workloads = spec_payload.get("workloads")
        spec = JobSpec(
            figure=spec_payload["figure"],
            length=spec_payload.get("length"),
            seed=spec_payload.get("seed", 0),
            workloads=tuple(workloads) if workloads else None,
            kernel=spec_payload.get("kernel"),
            check_invariants=spec_payload.get("check_invariants"),
            max_retries=spec_payload.get("max_retries"),
            cell_timeout=spec_payload.get("cell_timeout"),
            allow_partial=bool(spec_payload.get("allow_partial", False)),
        )
        return cls(
            id=payload["id"],
            seq=int(payload["seq"]),
            spec=spec,
            state=payload.get("state", "queued"),
            submitted=float(payload.get("submitted", 0.0)),
            started=payload.get("started"),
            finished=payload.get("finished"),
            error=payload.get("error"),
            counters=dict(payload.get("counters", {})),
            missing_cells=list(payload.get("missing_cells", [])),
            resumes=int(payload.get("resumes", 0)),
        )


class JobStore:
    """File-backed job registry under ``<cache-dir>/service``."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        self.telemetry_dir = os.path.join(root, "telemetry")
        self.results_dir = os.path.join(root, "results")
        #: In-memory view, id -> Job; the disk copy is for restarts.
        self.jobs: Dict[str, Job] = {}
        self._next_seq = 1
        for job in self._load_from_disk():
            self.jobs[job.id] = job
            self._next_seq = max(self._next_seq, job.seq + 1)

    def _load_from_disk(self) -> List[Job]:
        jobs: List[Job] = []
        try:
            names = sorted(os.listdir(self.jobs_dir))
        except FileNotFoundError:
            return jobs
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as stream:
                    payload = json.load(stream)
                jobs.append(Job.from_record(payload))
            except (json.JSONDecodeError, KeyError, OSError, ValueError):
                # A torn record from a kill mid-write: the atomic rename
                # makes this near-impossible, but never let one bad file
                # take the service down.
                continue
        return jobs

    # ------------------------------------------------------------------

    def create(self, spec: JobSpec) -> Job:
        seq = self._next_seq
        self._next_seq += 1
        job = Job(
            id="j%04d-%s" % (seq, spec.digest()[:8]),
            seq=seq,
            spec=spec,
            submitted=time.time(),
        )
        self.jobs[job.id] = job
        self.save(job)
        return job

    def save(self, job: Job) -> None:
        _atomic_write_json(
            os.path.join(self.jobs_dir, job.id + ".json"), job.record()
        )

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def in_order(self) -> List[Job]:
        """All known jobs, oldest submission first."""
        return sorted(self.jobs.values(), key=lambda job: job.seq)

    def states(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # ------------------------------------------------------------------

    def telemetry_path(self, job_id: str) -> str:
        os.makedirs(self.telemetry_dir, exist_ok=True)
        return os.path.join(self.telemetry_dir, job_id + ".jsonl")

    def save_result(self, job_id: str, payload: Dict[str, Any]) -> None:
        _atomic_write_json(
            os.path.join(self.results_dir, job_id + ".json"), payload
        )

    def load_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        path = os.path.join(self.results_dir, job_id + ".json")
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return payload if isinstance(payload, dict) else None


class JobRunner:
    """Executes one job at a time against the shared executor.

    ``run_job`` is synchronous and runs on the service's worker thread;
    the asyncio side owns queueing and state fan-out.
    """

    def __init__(self, executor: Any, store: JobStore) -> None:
        self.executor = executor
        self.store = store

    def job_manifest(self, job: Job) -> Dict[str, Any]:
        """The provenance block returned with every job's result."""
        from repro import __version__

        return {
            "schema": WIRE_SCHEMA,
            "version": __version__,
            "figure": job.spec.figure,
            "spec": job.spec.canonical(),
            "spec_sha256": job.spec.digest(),
            "kernel": job.spec.kernel or self.executor.kernel,
            "counters": dict(job.counters),
            "resumes": job.resumes,
            "executor": {
                field_name: value
                for field_name, value in executor_provenance(self.executor)
            },
        }

    def _job_resilience(self, spec: JobSpec) -> Optional[ResiliencePolicy]:
        if (
            spec.max_retries is None
            and spec.cell_timeout is None
            and not spec.allow_partial
        ):
            return None
        base = self.executor.resilience
        return ResiliencePolicy(
            max_retries=(
                base.max_retries if spec.max_retries is None else spec.max_retries
            ),
            cell_timeout=(
                base.cell_timeout if spec.cell_timeout is None else spec.cell_timeout
            ),
            allow_partial=spec.allow_partial or base.allow_partial,
        )

    def run_job(self, job: Job) -> None:
        """Drive one job to a terminal state, journaling throughout."""
        spec = job.spec
        telemetry = TelemetryLog(self.store.telemetry_path(job.id))
        telemetry.emit(
            "job_started",
            {"job": job.id, "figure": spec.figure, "resumes": job.resumes},
        )
        job.state = "running"
        job.started = time.time()
        self.store.save(job)

        snapshot = self.executor.counters_snapshot()
        failures_before = len(self.executor.failed_cells)
        invariants = spec.check_invariants
        if invariants is not None:
            invariants = None if invariants == "off" else invariants
            saved_invariants = self.executor.check_invariants
            self.executor.check_invariants = invariants
        try:
            info = driver_catalog()[spec.figure]
            with self.executor.job_scope(
                telemetry=telemetry,
                kernel=spec.kernel,
                resilience=self._job_resilience(spec),
                resume=True,
            ):
                result = info.driver(
                    executor=self.executor, **spec.driver_kwargs()
                )
        except (CellExecutionError, SweepAborted, WireError) as exc:
            job.state = "failed"
            job.error = "%s: %s" % (type(exc).__name__, exc)
        except Exception as exc:  # the service must outlive any one job
            job.state = "failed"
            job.error = "%s: %s" % (type(exc).__name__, exc)
        else:
            new_failures = self.executor.failed_cells[failures_before:]
            job.missing_cells = [
                failure.key[:12] for failure in new_failures
            ]
            job.state = "degraded" if new_failures else "done"
            job.counters = self.executor.counters_since(snapshot)
            self.store.save_result(
                job.id,
                {
                    "schema": WIRE_SCHEMA,
                    "job": job.id,
                    "figure": spec.figure,
                    "result": result,
                    "manifest": self.job_manifest(job),
                },
            )
        finally:
            if spec.check_invariants is not None:
                self.executor.check_invariants = saved_invariants
            job.counters = job.counters or self.executor.counters_since(snapshot)
            job.finished = time.time()
            telemetry.emit(
                "job_finished",
                {
                    "job": job.id,
                    "state": job.state,
                    "counters": dict(job.counters),
                    "error": job.error,
                },
            )
            telemetry.close()
            self.store.save(job)
