"""Ablation studies for TEMPO's individual design choices.

The paper motivates several mechanisms (row-buffer prefetch, LLC
prefetch, TxQ grouping, the non-speculative address construction); these
drivers isolate each one's contribution on the default machine.  They go
beyond the paper's own figures and back the DESIGN.md design-choice
discussion; `benchmarks/test_ablation_*.py` regenerates them.
"""

from dataclasses import replace

from repro.common.config import default_system_config
from repro.sim.metrics import performance_improvement
from repro.sim.system import SystemSimulator
from repro.workloads.registry import make_trace

DEFAULT_WORKLOADS = ("xsbench", "graph500", "illustris", "mcf")


def _improvement(baseline, variant_config, trace, seed=0):
    result = SystemSimulator(variant_config, [trace], seed=seed).run()
    return performance_improvement(baseline.total_cycles, result.total_cycles)


def prefetch_destinations(workloads=DEFAULT_WORKLOADS, length=10000, seed=0):
    """TEMPO off vs row-buffer-only vs row buffer + LLC.

    Separates the two benefit sources of the paper's Figure 3: the row
    prefetch alone turns replay conflicts into row hits; the LLC
    prefetch removes the DRAM access entirely.
    """
    rows = []
    for name in workloads:
        trace = make_trace(name, length=length, seed=seed)
        config = default_system_config()
        baseline = SystemSimulator(config.with_tempo(False), [trace], seed=seed).run()
        rows.append(
            {
                "workload": name,
                "row_buffer_only": _improvement(
                    baseline, config.with_tempo(True, llc_prefetch=False), trace, seed
                ),
                "row_buffer_plus_llc": _improvement(
                    baseline, config.with_tempo(True), trace, seed
                ),
            }
        )
    return {"figure": "ablation_destinations", "rows": rows}


def txq_grouping(workloads=DEFAULT_WORKLOADS, length=10000, seed=0):
    """TEMPO with and without the Sec. 4.3b transaction-queue scanning."""
    rows = []
    for name in workloads:
        trace = make_trace(name, length=length, seed=seed)
        config = default_system_config()
        baseline = SystemSimulator(config.with_tempo(False), [trace], seed=seed).run()
        rows.append(
            {
                "workload": name,
                "without_grouping": _improvement(
                    baseline, config.with_tempo(True, txq_grouping=False), trace, seed
                ),
                "with_grouping": _improvement(
                    baseline, config.with_tempo(True), trace, seed
                ),
            }
        )
    return {"figure": "ablation_txq_grouping", "rows": rows}


def prefetch_row_latency(workload="xsbench", length=10000, seed=0,
                         latencies=(40, 60, 100, 140, 200)):
    """Sensitivity to the array->row-buffer activation latency.

    The paper quotes 60-100 cycles; once the prefetch takes longer than
    the slack window, LLC timeliness collapses and replays fall back to
    row-buffer hits -- this sweep locates that cliff.
    """
    trace = make_trace(workload, length=length, seed=seed)
    config = default_system_config()
    baseline = SystemSimulator(config.with_tempo(False), [trace], seed=seed).run()
    rows = []
    for latency in latencies:
        tempo_config = config.with_tempo(True, prefetch_row_cycles=latency)
        result = SystemSimulator(tempo_config, [trace], seed=seed).run()
        service = result.cores[0].replay_service
        rows.append(
            {
                "prefetch_row_cycles": latency,
                "performance_improvement": performance_improvement(
                    baseline.total_cycles, result.total_cycles
                ),
                "llc_fraction": service.fraction("llc"),
                "row_buffer_fraction": service.fraction("row_buffer"),
            }
        )
    return {"figure": "ablation_prefetch_latency", "workload": workload, "rows": rows}


def scheduler_sensitivity(workloads=DEFAULT_WORKLOADS, length=10000, seed=0,
                          schedulers=("fcfs", "frfcfs", "bliss", "atlas")):
    """TEMPO's benefit under every implemented memory scheduler."""
    rows = []
    for name in workloads:
        trace = make_trace(name, length=length, seed=seed)
        for scheduler in schedulers:
            config = default_system_config()
            config = config.copy_with(
                scheduler=replace(config.scheduler, policy=scheduler)
            )
            baseline = SystemSimulator(config.with_tempo(False), [trace], seed=seed).run()
            rows.append(
                {
                    "workload": name,
                    "scheduler": scheduler,
                    "performance_improvement": _improvement(
                        baseline, config.with_tempo(True), trace, seed
                    ),
                }
            )
    return {"figure": "ablation_schedulers", "rows": rows}
