"""Ablation studies for TEMPO's individual design choices.

The paper motivates several mechanisms (row-buffer prefetch, LLC
prefetch, TxQ grouping, the non-speculative address construction); these
drivers isolate each one's contribution on the default machine.  They go
beyond the paper's own figures and back the DESIGN.md design-choice
discussion; `benchmarks/test_ablation_*.py` regenerates them.

Like the figure drivers, every ablation decomposes into independent
simulation cells and runs through an
:class:`~repro.exec.ExperimentExecutor` (pass ``executor=`` to share a
pool and cache with other drivers).  The executor's resilience layer
applies unchanged: interrupted ablation sweeps resume from their
checkpoint journals, and under ``allow_partial`` a permanently-failed
cell degrades to an all-zero placeholder whose improvement columns read
0 (every ratio here goes through the zero-guarded metrics helpers).
"""

from dataclasses import replace

from repro.common.config import default_system_config
from repro.exec import ExperimentExecutor, SimCell
from repro.sim.metrics import performance_improvement

DEFAULT_WORKLOADS = ("xsbench", "graph500", "illustris", "mcf")


def _get_executor(executor):
    return executor if executor is not None else ExperimentExecutor()


def _improvement(baseline, variant):
    return performance_improvement(baseline.total_cycles, variant.total_cycles)


def prefetch_destinations(workloads=DEFAULT_WORKLOADS, length=10000, seed=0,
                          executor=None):
    """TEMPO off vs row-buffer-only vs row buffer + LLC.

    Separates the two benefit sources of the paper's Figure 3: the row
    prefetch alone turns replay conflicts into row hits; the LLC
    prefetch removes the DRAM access entirely.
    """
    config = default_system_config()
    variants = (
        config.with_tempo(False),
        config.with_tempo(True, llc_prefetch=False),
        config.with_tempo(True),
    )
    results = _get_executor(executor).run_cells(
        SimCell(name, variant, length, seed)
        for name in workloads
        for variant in variants
    )
    rows = []
    for position, name in enumerate(workloads):
        baseline, row_only, row_llc = results[3 * position : 3 * position + 3]
        rows.append(
            {
                "workload": name,
                "row_buffer_only": _improvement(baseline, row_only),
                "row_buffer_plus_llc": _improvement(baseline, row_llc),
            }
        )
    return {"figure": "ablation_destinations", "rows": rows}


def txq_grouping(workloads=DEFAULT_WORKLOADS, length=10000, seed=0, executor=None):
    """TEMPO with and without the Sec. 4.3b transaction-queue scanning."""
    config = default_system_config()
    variants = (
        config.with_tempo(False),
        config.with_tempo(True, txq_grouping=False),
        config.with_tempo(True),
    )
    results = _get_executor(executor).run_cells(
        SimCell(name, variant, length, seed)
        for name in workloads
        for variant in variants
    )
    rows = []
    for position, name in enumerate(workloads):
        baseline, ungrouped, grouped = results[3 * position : 3 * position + 3]
        rows.append(
            {
                "workload": name,
                "without_grouping": _improvement(baseline, ungrouped),
                "with_grouping": _improvement(baseline, grouped),
            }
        )
    return {"figure": "ablation_txq_grouping", "rows": rows}


def prefetch_row_latency(workload="xsbench", length=10000, seed=0,
                         latencies=(40, 60, 100, 140, 200), executor=None):
    """Sensitivity to the array->row-buffer activation latency.

    The paper quotes 60-100 cycles; once the prefetch takes longer than
    the slack window, LLC timeliness collapses and replays fall back to
    row-buffer hits -- this sweep locates that cliff.
    """
    config = default_system_config()
    cells = [SimCell(workload, config.with_tempo(False), length, seed)]
    cells += [
        SimCell(workload, config.with_tempo(True, prefetch_row_cycles=latency),
                length, seed)
        for latency in latencies
    ]
    results = _get_executor(executor).run_cells(cells)
    baseline = results[0]
    rows = []
    for latency, result in zip(latencies, results[1:]):
        service = result.cores[0].replay_service
        rows.append(
            {
                "prefetch_row_cycles": latency,
                "performance_improvement": _improvement(baseline, result),
                "llc_fraction": service.fraction("llc"),
                "row_buffer_fraction": service.fraction("row_buffer"),
            }
        )
    return {"figure": "ablation_prefetch_latency", "workload": workload, "rows": rows}


def scheduler_sensitivity(workloads=DEFAULT_WORKLOADS, length=10000, seed=0,
                          schedulers=("fcfs", "frfcfs", "bliss", "atlas"),
                          executor=None):
    """TEMPO's benefit under every implemented memory scheduler."""
    cells = []
    plan = []
    for name in workloads:
        for scheduler in schedulers:
            config = default_system_config()
            config = config.copy_with(
                scheduler=replace(config.scheduler, policy=scheduler)
            )
            plan.append((name, scheduler, len(cells)))
            cells.append(SimCell(name, config.with_tempo(False), length, seed))
            cells.append(SimCell(name, config.with_tempo(True), length, seed))
    results = _get_executor(executor).run_cells(cells)
    rows = []
    for name, scheduler, base_index in plan:
        rows.append(
            {
                "workload": name,
                "scheduler": scheduler,
                "performance_improvement": _improvement(
                    results[base_index], results[base_index + 1]
                ),
            }
        )
    return {"figure": "ablation_schedulers", "rows": rows}


# ----------------------------------------------------------------------
# Driver registry
# ----------------------------------------------------------------------

#: Ablation id -> driver, keyed by the ``figure`` field each result
#: reports.  The sweep service accepts these ids alongside the paper
#: figures in ``EXPERIMENT_DRIVERS``.
ABLATION_DRIVERS = {
    "ablation_destinations": prefetch_destinations,
    "ablation_txq_grouping": txq_grouping,
    "ablation_prefetch_latency": prefetch_row_latency,
    "ablation_schedulers": scheduler_sensitivity,
}

#: Ablations that study one workload at a time (their driver takes a
#: singular ``workload=``); a job-spec ``workloads`` list for these must
#: contain exactly one name.
SINGLE_WORKLOAD_ABLATIONS = ("ablation_prefetch_latency",)
