"""What the paper reports, figure by figure.

These constants are the "paper" column of EXPERIMENTS.md and the oracle
the integration tests compare shapes against.  Values are ranges because
the paper reports per-workload bars read off charts.
"""

PAPER_EXPECTATIONS = {
    "fig01": {
        "claim": "DRAM-PTW-Access and DRAM-Replay-Access are each a large "
        "fraction of runtime for big-data workloads",
        "ptw_runtime_fraction": (0.10, 0.40),
        "replay_runtime_fraction": (0.10, 0.30),
    },
    "fig04": {
        "claim": "20-40% of DRAM references are page-table accesses, a "
        "similar share are replays; 96%+ of PTW DRAM accesses are leaf; "
        "98%+ of DRAM PT lookups are followed by DRAM replays",
        "ptw_reference_fraction": (0.20, 0.45),
        "replay_reference_fraction": (0.15, 0.45),
        "leaf_fraction_of_ptw": 0.96,
        "replay_follows_ptw_rate": 0.98,
    },
    "fig10": {
        "claim": "TEMPO improves performance 10-30% and energy 1-14%; "
        "most workloads back >50% of footprint with 2MB superpages",
        "performance_improvement": (0.10, 0.30),
        "energy_improvement": (0.01, 0.14),
        "superpage_fraction_min": 0.50,
    },
    "fig11_left": {
        "claim": "75%+ of TEMPO-aided replays hit in the LLC; most of the "
        "rest hit in the row buffer; a tiny fraction is unaided",
        "llc_fraction_min": 0.75,
        "unaided_fraction_max": 0.10,
    },
    "fig11_right": {
        "claim": "small-footprint workloads are not slowed down: perf "
        "changes by about +1-2% and energy by about 1%",
        "performance_band": (-0.02, 0.05),
        "energy_band": (-0.02, 0.05),
    },
    "fig12": {
        "claim": "with IMP prefetching TEMPO is even more useful -- up to "
        "~40% improvement, ~10% over the no-prefetch case for the most "
        "irregular workloads",
        "improvement_with_imp_exceeds_without": True,
    },
    "fig13": {
        "claim": "TEMPO's benefit falls as superpage coverage rises but "
        "stays positive; 4KB-only is the best case (25%+), and reasonable "
        "fragmentation keeps benefits at 10-30%",
        "benefit_decreases_with_coverage": True,
        "benefit_4k_only_min": 0.15,
    },
    "fig14": {
        "claim": "TEMPO improves adaptive, open, and closed row policies; "
        "canneal is aided most under open rows; illustris prefers closed",
        "all_policies_positive": True,
    },
    "fig15": {
        "claim": "waiting 5-15 cycles before closing page-table rows helps "
        "by 1-4%, with 10 cycles the best choice",
        "best_wait": 10,
        "delta_band": (0.0, 0.06),
    },
    "fig16": {
        "claim": "weighted speedup improves in every BLISS configuration; "
        "half-weight prefetch counting and a 15-cycle grace period are "
        "the best choices; the slowest app speeds up 10%+",
        "all_configs_improve_ws": True,
        "best_prefetch_weight": 0.5,
        "best_grace_period": 15,
    },
    "fig17": {
        "claim": "with 8 sub-row buffers, dedicating 2 to prefetches is "
        "best (~15% weighted speedup, ~20% slowest-app gains); dedicating "
        "too many hurts",
        "best_dedicated": 2,
    },
}
