"""Plain-text table rendering for experiment output.

Benchmarks print these tables so a run's stdout doubles as the
reproduction log next to the paper's expectations.
"""

from repro.analysis.expectations import PAPER_EXPECTATIONS


def format_table(rows, columns=None, title=None):
    """Render ``rows`` (list of dicts) as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0])
    header = [str(column) for column in columns]
    body = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append("%.3f" % value)
            else:
                rendered.append(str(value))
        body.append(rendered)
    widths = [
        max(len(header[i]), max(len(line[i]) for line in body))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_experiment(result):
    """Render a driver's output with the paper's claim attached."""
    figure = result.get("figure", "?")
    expectation = PAPER_EXPECTATIONS.get(figure, {})
    parts = ["== %s ==" % figure]
    claim = expectation.get("claim")
    if claim:
        parts.append("paper: %s" % claim)
    for key, value in result.items():
        if key == "figure":
            continue
        if isinstance(value, list):
            parts.append(format_table(value, title="[%s]" % key))
    return "\n".join(parts)
