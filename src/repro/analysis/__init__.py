"""Experiment drivers and reporting.

``expectations`` encodes what the paper reports for every figure;
``experiments`` contains one driver per evaluation figure (E1-E17 in
DESIGN.md); ``tables`` renders driver output next to the paper's numbers
for EXPERIMENTS.md and the benchmark logs.
"""

from repro.analysis.expectations import PAPER_EXPECTATIONS
from repro.analysis.experiments import (
    fig01_runtime_breakdown,
    fig04_dram_reference_breakdown,
    fig10_performance_energy,
    fig11_replay_service,
    fig11_small_footprint,
    fig12_imp_interaction,
    fig13_superpage_sensitivity,
    fig14_row_policies,
    fig15_wait_cycles,
    fig16_bliss,
    fig17_subrows,
)
from repro.analysis.tables import format_table, render_experiment
from repro.analysis import ablations
from repro.analysis.report import generate_report, write_report

__all__ = [
    "PAPER_EXPECTATIONS",
    "fig01_runtime_breakdown",
    "fig04_dram_reference_breakdown",
    "fig10_performance_energy",
    "fig11_replay_service",
    "fig11_small_footprint",
    "fig12_imp_interaction",
    "fig13_superpage_sensitivity",
    "fig14_row_policies",
    "fig15_wait_cycles",
    "fig16_bliss",
    "fig17_subrows",
    "format_table",
    "render_experiment",
    "ablations",
    "generate_report",
    "write_report",
]
