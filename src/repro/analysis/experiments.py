"""One driver per evaluation figure (DESIGN.md's experiment index).

Every driver returns a dict with a ``rows`` list (one entry per bar /
point / series element in the paper's figure) plus metadata.  Drivers
take ``length`` (trace records per workload) so benchmarks can trade
fidelity for speed; the EXPERIMENTS.md numbers use the defaults.
"""

from dataclasses import replace

from repro.common.config import default_system_config
from repro.sim.metrics import energy_improvement, performance_improvement
from repro.sim.multicore import MulticoreSimulator
from repro.sim.runner import run_baseline_and_tempo, run_workload
from repro.sim.system import SystemSimulator
from repro.workloads.registry import BIGDATA_WORKLOADS, SMALL_WORKLOADS, make_trace

BIGDATA_NAMES = tuple(workload.name for workload in BIGDATA_WORKLOADS)
SMALL_NAMES = tuple(workload.name for workload in SMALL_WORKLOADS)

#: Multiprogrammed mixes (paper Sec. 6.3 uses Spec/Parsec mixes with a
#: range of memory intensities; each mix pairs intensive and light apps).
MULTIPROGRAM_MIXES = (
    ("xsbench", "mcf", "bzip2_small", "gcc_small"),
    ("graph500", "canneal", "astar_small", "swaptions_small"),
    ("illustris", "spmv", "freqmine_small", "blackscholes_small"),
)

#: All-intensive mixes for the sub-row study: dedicating sub-rows to
#: prefetches only matters under heavy bank pressure, where prefetched
#: segments face eviction before their replays arrive.
SUBROW_MIXES = (
    ("xsbench", "graph500", "illustris", "mcf"),
    ("spmv", "canneal", "lsh", "sgms"),
)


def _bigdata_subset(workloads):
    return BIGDATA_NAMES if workloads is None else tuple(workloads)


# ----------------------------------------------------------------------
# E1 / Figure 1 -- runtime breakdown
# ----------------------------------------------------------------------

def fig01_runtime_breakdown(workloads=None, length=24000, seed=0):
    """Fraction of runtime in DRAM-PTW / DRAM-Replay / DRAM-Other."""
    rows = []
    for name in _bigdata_subset(workloads):
        result = run_workload(
            name, default_system_config().with_tempo(False), length=length, seed=seed
        )
        runtime = result.core.runtime
        rows.append(
            {
                "workload": name,
                "dram_ptw_fraction": runtime.fraction("ptw"),
                "dram_replay_fraction": runtime.fraction("replay"),
                "dram_other_fraction": runtime.fraction("other"),
            }
        )
    return {"figure": "fig01", "rows": rows}


# ----------------------------------------------------------------------
# E4 / Figure 4 -- DRAM reference breakdown
# ----------------------------------------------------------------------

def fig04_dram_reference_breakdown(workloads=None, length=24000, seed=0):
    """DRAM *reference* fractions plus the leaf-PT and follow rates."""
    rows = []
    for name in _bigdata_subset(workloads):
        result = run_workload(
            name, default_system_config().with_tempo(False), length=length, seed=seed
        )
        refs = result.core.dram_refs
        rows.append(
            {
                "workload": name,
                "ptw_fraction": refs.fraction("ptw"),
                "replay_fraction": refs.fraction("replay"),
                "other_fraction": refs.fraction("other"),
                "leaf_fraction_of_ptw": refs.leaf_fraction_of_ptw(),
                "replay_follows_ptw_rate": refs.replay_follows_ptw_rate(),
            }
        )
    return {"figure": "fig04", "rows": rows}


# ----------------------------------------------------------------------
# E10 / Figure 10 -- headline performance + energy + superpage coverage
# ----------------------------------------------------------------------

def fig10_performance_energy(workloads=None, length=24000, seed=0):
    rows = []
    for name in _bigdata_subset(workloads):
        baseline, tempo = run_baseline_and_tempo(name, length=length, seed=seed)
        rows.append(
            {
                "workload": name,
                "performance_improvement": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
                "energy_improvement": energy_improvement(
                    baseline.energy_total, tempo.energy_total
                ),
                "superpage_fraction": baseline.superpage_fraction,
            }
        )
    return {"figure": "fig10", "rows": rows}


# ----------------------------------------------------------------------
# E11 left / Figure 11 left -- replay service breakdown under TEMPO
# ----------------------------------------------------------------------

def fig11_replay_service(workloads=None, length=24000, seed=0):
    rows = []
    for name in _bigdata_subset(workloads):
        result = run_workload(
            name, default_system_config().with_tempo(True), length=length, seed=seed
        )
        service = result.core.replay_service
        rows.append(
            {
                "workload": name,
                "llc_fraction": service.fraction("llc"),
                "row_buffer_fraction": service.fraction("row_buffer"),
                "unaided_fraction": service.fraction("unaided"),
            }
        )
    return {"figure": "fig11_left", "rows": rows}


# ----------------------------------------------------------------------
# E11 right / Figure 11 right -- small-footprint do-no-harm
# ----------------------------------------------------------------------

def fig11_small_footprint(length=16000, seed=0):
    rows = []
    for group, names in (("bigdata", BIGDATA_NAMES), ("small", SMALL_NAMES)):
        for name in names:
            baseline, tempo = run_baseline_and_tempo(name, length=length, seed=seed)
            rows.append(
                {
                    "workload": name,
                    "group": group,
                    "performance_improvement": performance_improvement(
                        baseline.total_cycles, tempo.total_cycles
                    ),
                    "energy_improvement": energy_improvement(
                        baseline.energy_total, tempo.energy_total
                    ),
                }
            )
    return {"figure": "fig11_right", "rows": rows}


# ----------------------------------------------------------------------
# E12 / Figure 12 -- interaction with IMP prefetching
# ----------------------------------------------------------------------

def fig12_imp_interaction(workloads=None, length=24000, seed=0):
    rows = []
    for name in _bigdata_subset(workloads):
        config = default_system_config()
        imp_config = config.copy_with(imp=replace(config.imp, enabled=True))
        baseline, tempo = run_baseline_and_tempo(name, config, length=length, seed=seed)
        baseline_imp, tempo_imp = run_baseline_and_tempo(
            name, imp_config, length=length, seed=seed
        )
        rows.append(
            {
                "workload": name,
                "improvement_no_imp": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
                "improvement_with_imp": performance_improvement(
                    baseline_imp.total_cycles, tempo_imp.total_cycles
                ),
                "energy_no_imp": energy_improvement(
                    baseline.energy_total, tempo.energy_total
                ),
                "energy_with_imp": energy_improvement(
                    baseline_imp.energy_total, tempo_imp.energy_total
                ),
            }
        )
    return {"figure": "fig12", "rows": rows}


# ----------------------------------------------------------------------
# E13 / Figure 13 -- superpage sensitivity
# ----------------------------------------------------------------------

def _vm_variants():
    """The paper's page-size configurations, in rising-coverage order."""
    base = default_system_config().vm
    return (
        ("4k-only", replace(base, thp_enabled=False)),
        ("thp-memhog75", replace(base, thp_enabled=True, memhog_fraction=0.75)),
        ("thp-memhog50", replace(base, thp_enabled=True, memhog_fraction=0.50)),
        ("thp-memhog25", replace(base, thp_enabled=True, memhog_fraction=0.25)),
        ("thp-memhog0", replace(base, thp_enabled=True, memhog_fraction=0.0)),
        ("hugetlbfs-2m", replace(base, hugetlbfs_2m=True)),
        ("hugetlbfs-1g", replace(base, hugetlbfs_1g=True)),
    )


def fig13_superpage_sensitivity(workloads=None, length=16000, seed=0):
    names = _bigdata_subset(workloads)
    rows = []
    for name in names:
        for label, vm_config in _vm_variants():
            config = default_system_config().copy_with(vm=vm_config)
            baseline, tempo = run_baseline_and_tempo(name, config, length=length, seed=seed)
            rows.append(
                {
                    "workload": name,
                    "variant": label,
                    "superpage_fraction": baseline.superpage_fraction,
                    "performance_improvement": performance_improvement(
                        baseline.total_cycles, tempo.total_cycles
                    ),
                }
            )
    return {"figure": "fig13", "rows": rows}


# ----------------------------------------------------------------------
# E14 / Figure 14 -- row-buffer management policies
# ----------------------------------------------------------------------

def fig14_row_policies(workloads=None, length=24000, seed=0):
    rows = []
    for name in _bigdata_subset(workloads):
        for policy in ("adaptive", "open", "closed"):
            config = default_system_config()
            config = config.copy_with(row_policy=replace(config.row_policy, policy=policy))
            baseline, tempo = run_baseline_and_tempo(name, config, length=length, seed=seed)
            rows.append(
                {
                    "workload": name,
                    "policy": policy,
                    "performance_improvement": performance_improvement(
                        baseline.total_cycles, tempo.total_cycles
                    ),
                }
            )
    return {"figure": "fig14", "rows": rows}


# ----------------------------------------------------------------------
# E15 / Figure 15 -- anticipation wait-cycle sweep
# ----------------------------------------------------------------------

def fig15_wait_cycles(workloads=None, length=24000, seed=0, waits=(0, 5, 10, 15)):
    """Besides end-to-end improvement, report the *mechanism* metric the
    wait window targets: the row-buffer hit rate of DRAM page-table
    accesses (keeping a just-read PT row open lets queued translations
    to the same row hit)."""
    rows = []
    for name in _bigdata_subset(workloads):
        trace = make_trace(name, length=length, seed=seed)
        baseline = SystemSimulator(
            default_system_config().with_tempo(False), [trace], seed=seed
        ).run()
        for wait in waits:
            config = default_system_config().with_tempo(True, wait_cycles=wait)
            simulator = SystemSimulator(config, [trace], seed=seed)
            tempo = simulator.run()
            stats = simulator.controller.stats.as_dict()
            pt_hits = stats.get("controller.outcome_pt_hit", 0)
            pt_total = (
                pt_hits
                + stats.get("controller.outcome_pt_miss", 0)
                + stats.get("controller.outcome_pt_conflict", 0)
            )
            rows.append(
                {
                    "workload": name,
                    "wait_cycles": wait,
                    "performance_improvement": performance_improvement(
                        baseline.total_cycles, tempo.total_cycles
                    ),
                    "pt_row_hit_rate": pt_hits / pt_total if pt_total else 0.0,
                }
            )
    return {"figure": "fig15", "rows": rows}


# ----------------------------------------------------------------------
# E16 / Figure 16 -- BLISS fairness scheduling
# ----------------------------------------------------------------------

def _bliss_config(prefetch_increment=1, grace=15, tempo=True):
    config = default_system_config()
    config = config.copy_with(
        scheduler=replace(config.scheduler, policy="bliss",
                          bliss_prefetch_increment=prefetch_increment)
    )
    return config.with_tempo(tempo, grace_period_cycles=grace) if tempo else config.with_tempo(False)


def _run_mix(mix, config, length, seed, alone_results=None):
    traces = [make_trace(name, length=length, seed=seed) for name in mix]
    simulator = MulticoreSimulator(config, traces, seed=seed)
    return simulator.run(alone_results=alone_results)


def fig16_bliss(mixes=None, length=6000, seed=0,
                prefetch_weights=(0, 1, 2), grace_periods=(0, 15, 30)):
    """Weighted speedup + max slowdown vs prefetch weight and grace
    period, averaged over the mixes (paper averages over its mixes too).

    Prefetch weights are BLISS counter increments relative to the demand
    increment of 2 -- i.e. 0, half, and equal weight.
    """
    mixes = MULTIPROGRAM_MIXES if mixes is None else tuple(mixes)
    weight_rows = []
    grace_rows = []
    for mix in mixes:
        base_result = _run_mix(mix, _bliss_config(tempo=False), length, seed)
        # Alone runs do not depend on the swept sharing parameters;
        # reuse the baseline's across the sweep.
        alone = base_result.alone
        for weight in prefetch_weights:
            config = _bliss_config(prefetch_increment=weight, grace=15)
            result = _run_mix(mix, config, length, seed, alone_results=alone)
            weight_rows.append(
                {
                    "mix": "+".join(mix),
                    "prefetch_weight": weight / 2.0,
                    "ws_improvement": (result.weighted_speedup - base_result.weighted_speedup)
                    / base_result.weighted_speedup,
                    "ms_improvement": (base_result.max_slowdown - result.max_slowdown)
                    / base_result.max_slowdown,
                }
            )
        for grace in grace_periods:
            config = _bliss_config(prefetch_increment=1, grace=grace)
            result = _run_mix(mix, config, length, seed, alone_results=alone)
            grace_rows.append(
                {
                    "mix": "+".join(mix),
                    "grace_period": grace,
                    "ws_improvement": (result.weighted_speedup - base_result.weighted_speedup)
                    / base_result.weighted_speedup,
                    "ms_improvement": (base_result.max_slowdown - result.max_slowdown)
                    / base_result.max_slowdown,
                }
            )
    return {"figure": "fig16", "weight_rows": weight_rows, "grace_rows": grace_rows}


# ----------------------------------------------------------------------
# E17 / Figure 17 -- sub-row buffers
# ----------------------------------------------------------------------

def _subrow_config(allocation, dedicated, tempo):
    config = default_system_config()
    subrows = replace(
        config.dram.subrows, enabled=True, allocation=allocation,
        dedicated_prefetch_subrows=dedicated,
    )
    config = config.copy_with(dram=replace(config.dram, subrows=subrows))
    return config.with_tempo(tempo)


def fig17_subrows(mixes=None, length=6000, seed=0, dedicated_options=(0, 1, 2, 4)):
    """FOA/POA sub-row allocation with swept prefetch-dedicated slots."""
    mixes = SUBROW_MIXES if mixes is None else tuple(mixes)
    rows = []
    for allocation in ("foa", "poa"):
        for mix in mixes:
            base_result = _run_mix(mix, _subrow_config(allocation, 0, False), length, seed)
            for dedicated in dedicated_options:
                config = _subrow_config(allocation, dedicated, True)
                result = _run_mix(mix, config, length, seed)
                rows.append(
                    {
                        "allocation": allocation,
                        "mix": "+".join(mix),
                        "dedicated_subrows": dedicated,
                        "ws_improvement": (result.weighted_speedup - base_result.weighted_speedup)
                        / base_result.weighted_speedup,
                        "ms_improvement": (base_result.max_slowdown - result.max_slowdown)
                        / base_result.max_slowdown,
                    }
                )
    return {"figure": "fig17", "rows": rows}
