"""One driver per evaluation figure (DESIGN.md's experiment index).

Every driver returns a dict with a ``rows`` list (one entry per bar /
point / series element in the paper's figure) plus metadata.  Drivers
take ``length`` (trace records per workload) so benchmarks can trade
fidelity for speed; the EXPERIMENTS.md numbers use the defaults.

Execution model: each driver decomposes into independent simulation
cells (:class:`~repro.exec.SimCell`) and submits them in one batch to an
:class:`~repro.exec.ExperimentExecutor`, which fans them out across
worker processes and/or serves them from the content-addressed cache,
then hands results back in submission order.  Pass ``executor=`` to
share one executor (and its memo/cache) across drivers -- the report
generator does, so overlapping figures never simulate the same cell
twice.  Without one, a private serial executor is used and results are
bit-identical to the historical direct-call implementation.
"""

from dataclasses import replace

from repro.common.config import default_system_config
from repro.exec import ExperimentExecutor, SimCell
from repro.sim.metrics import energy_improvement, performance_improvement
from repro.sim.multicore import MultiprogramResult
from repro.workloads.registry import BIGDATA_WORKLOADS, SMALL_WORKLOADS

BIGDATA_NAMES = tuple(workload.name for workload in BIGDATA_WORKLOADS)
SMALL_NAMES = tuple(workload.name for workload in SMALL_WORKLOADS)

#: Multiprogrammed mixes (paper Sec. 6.3 uses Spec/Parsec mixes with a
#: range of memory intensities; each mix pairs intensive and light apps).
MULTIPROGRAM_MIXES = (
    ("xsbench", "mcf", "bzip2_small", "gcc_small"),
    ("graph500", "canneal", "astar_small", "swaptions_small"),
    ("illustris", "spmv", "freqmine_small", "blackscholes_small"),
)

#: All-intensive mixes for the sub-row study: dedicating sub-rows to
#: prefetches only matters under heavy bank pressure, where prefetched
#: segments face eviction before their replays arrive.
SUBROW_MIXES = (
    ("xsbench", "graph500", "illustris", "mcf"),
    ("spmv", "canneal", "lsh", "sgms"),
)


def _bigdata_subset(workloads):
    return BIGDATA_NAMES if workloads is None else tuple(workloads)


def _get_executor(executor):
    return executor if executor is not None else ExperimentExecutor()


def _safe_ratio(numerator, denominator):
    """``numerator / denominator``, but 0.0 on a zero denominator.

    Baselines can legitimately read zero under degraded execution
    (``--allow-partial`` renders permanently-failed cells as all-zero
    placeholders); the improvement is then meaningless and renders as
    0 rather than crashing figure assembly.
    """
    return numerator / denominator if denominator else 0.0


class _CellBatch:
    """Collects a driver's cells, then resolves them all in one batch.

    ``add`` returns the cell's index; after ``run`` the results list is
    indexed the same way.  Submitting one batch (instead of one cell at
    a time) is what lets a multi-worker executor overlap everything the
    driver needs.
    """

    def __init__(self, executor, length, seed):
        self.executor = executor
        self.length = length
        self.seed = seed
        self.cells = []

    def add(self, workloads, config):
        self.cells.append(SimCell(workloads, config, self.length, self.seed))
        return len(self.cells) - 1

    def run(self):
        return self.executor.run_cells(self.cells)


# ----------------------------------------------------------------------
# E1 / Figure 1 -- runtime breakdown
# ----------------------------------------------------------------------

def fig01_runtime_breakdown(workloads=None, length=24000, seed=0, executor=None):
    """Fraction of runtime in DRAM-PTW / DRAM-Replay / DRAM-Other."""
    names = _bigdata_subset(workloads)
    config = default_system_config().with_tempo(False)
    results = _get_executor(executor).run_cells(
        SimCell(name, config, length, seed) for name in names
    )
    rows = []
    for name, result in zip(names, results):
        runtime = result.core.runtime
        rows.append(
            {
                "workload": name,
                "dram_ptw_fraction": runtime.fraction("ptw"),
                "dram_replay_fraction": runtime.fraction("replay"),
                "dram_other_fraction": runtime.fraction("other"),
            }
        )
    return {"figure": "fig01", "rows": rows}


# ----------------------------------------------------------------------
# E4 / Figure 4 -- DRAM reference breakdown
# ----------------------------------------------------------------------

def fig04_dram_reference_breakdown(workloads=None, length=24000, seed=0, executor=None):
    """DRAM *reference* fractions plus the leaf-PT and follow rates."""
    names = _bigdata_subset(workloads)
    config = default_system_config().with_tempo(False)
    results = _get_executor(executor).run_cells(
        SimCell(name, config, length, seed) for name in names
    )
    rows = []
    for name, result in zip(names, results):
        refs = result.core.dram_refs
        rows.append(
            {
                "workload": name,
                "ptw_fraction": refs.fraction("ptw"),
                "replay_fraction": refs.fraction("replay"),
                "other_fraction": refs.fraction("other"),
                "leaf_fraction_of_ptw": refs.leaf_fraction_of_ptw(),
                "replay_follows_ptw_rate": refs.replay_follows_ptw_rate(),
            }
        )
    return {"figure": "fig04", "rows": rows}


# ----------------------------------------------------------------------
# E10 / Figure 10 -- headline performance + energy + superpage coverage
# ----------------------------------------------------------------------

def fig10_performance_energy(workloads=None, length=24000, seed=0, executor=None):
    names = _bigdata_subset(workloads)
    config = default_system_config()
    batch = _CellBatch(_get_executor(executor), length, seed)
    pairs = [
        (batch.add(name, config.with_tempo(False)), batch.add(name, config.with_tempo(True)))
        for name in names
    ]
    results = batch.run()
    rows = []
    for name, (base_index, tempo_index) in zip(names, pairs):
        baseline, tempo = results[base_index], results[tempo_index]
        rows.append(
            {
                "workload": name,
                "performance_improvement": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
                "energy_improvement": energy_improvement(
                    baseline.energy_total, tempo.energy_total
                ),
                "superpage_fraction": baseline.superpage_fraction,
            }
        )
    return {"figure": "fig10", "rows": rows}


# ----------------------------------------------------------------------
# E11 left / Figure 11 left -- replay service breakdown under TEMPO
# ----------------------------------------------------------------------

def fig11_replay_service(workloads=None, length=24000, seed=0, executor=None):
    names = _bigdata_subset(workloads)
    config = default_system_config().with_tempo(True)
    results = _get_executor(executor).run_cells(
        SimCell(name, config, length, seed) for name in names
    )
    rows = []
    for name, result in zip(names, results):
        service = result.core.replay_service
        rows.append(
            {
                "workload": name,
                "llc_fraction": service.fraction("llc"),
                "row_buffer_fraction": service.fraction("row_buffer"),
                "unaided_fraction": service.fraction("unaided"),
            }
        )
    return {"figure": "fig11_left", "rows": rows}


# ----------------------------------------------------------------------
# E11 right / Figure 11 right -- small-footprint do-no-harm
# ----------------------------------------------------------------------

def fig11_small_footprint(length=16000, seed=0, executor=None):
    config = default_system_config()
    batch = _CellBatch(_get_executor(executor), length, seed)
    plan = []
    for group, names in (("bigdata", BIGDATA_NAMES), ("small", SMALL_NAMES)):
        for name in names:
            plan.append(
                (
                    group,
                    name,
                    batch.add(name, config.with_tempo(False)),
                    batch.add(name, config.with_tempo(True)),
                )
            )
    results = batch.run()
    rows = []
    for group, name, base_index, tempo_index in plan:
        baseline, tempo = results[base_index], results[tempo_index]
        rows.append(
            {
                "workload": name,
                "group": group,
                "performance_improvement": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
                "energy_improvement": energy_improvement(
                    baseline.energy_total, tempo.energy_total
                ),
            }
        )
    return {"figure": "fig11_right", "rows": rows}


# ----------------------------------------------------------------------
# E12 / Figure 12 -- interaction with IMP prefetching
# ----------------------------------------------------------------------

def fig12_imp_interaction(workloads=None, length=24000, seed=0, executor=None):
    names = _bigdata_subset(workloads)
    config = default_system_config()
    imp_config = config.copy_with(imp=replace(config.imp, enabled=True))
    batch = _CellBatch(_get_executor(executor), length, seed)
    plan = [
        (
            name,
            batch.add(name, config.with_tempo(False)),
            batch.add(name, config.with_tempo(True)),
            batch.add(name, imp_config.with_tempo(False)),
            batch.add(name, imp_config.with_tempo(True)),
        )
        for name in names
    ]
    results = batch.run()
    rows = []
    for name, base_i, tempo_i, base_imp_i, tempo_imp_i in plan:
        baseline, tempo = results[base_i], results[tempo_i]
        baseline_imp, tempo_imp = results[base_imp_i], results[tempo_imp_i]
        rows.append(
            {
                "workload": name,
                "improvement_no_imp": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
                "improvement_with_imp": performance_improvement(
                    baseline_imp.total_cycles, tempo_imp.total_cycles
                ),
                "energy_no_imp": energy_improvement(
                    baseline.energy_total, tempo.energy_total
                ),
                "energy_with_imp": energy_improvement(
                    baseline_imp.energy_total, tempo_imp.energy_total
                ),
            }
        )
    return {"figure": "fig12", "rows": rows}


# ----------------------------------------------------------------------
# E13 / Figure 13 -- superpage sensitivity
# ----------------------------------------------------------------------

def _vm_variants():
    """The paper's page-size configurations, in rising-coverage order."""
    base = default_system_config().vm
    return (
        ("4k-only", replace(base, thp_enabled=False)),
        ("thp-memhog75", replace(base, thp_enabled=True, memhog_fraction=0.75)),
        ("thp-memhog50", replace(base, thp_enabled=True, memhog_fraction=0.50)),
        ("thp-memhog25", replace(base, thp_enabled=True, memhog_fraction=0.25)),
        ("thp-memhog0", replace(base, thp_enabled=True, memhog_fraction=0.0)),
        ("hugetlbfs-2m", replace(base, hugetlbfs_2m=True)),
        ("hugetlbfs-1g", replace(base, hugetlbfs_1g=True)),
    )


def fig13_superpage_sensitivity(workloads=None, length=16000, seed=0, executor=None):
    names = _bigdata_subset(workloads)
    batch = _CellBatch(_get_executor(executor), length, seed)
    plan = []
    for name in names:
        for label, vm_config in _vm_variants():
            config = default_system_config().copy_with(vm=vm_config)
            plan.append(
                (
                    name,
                    label,
                    batch.add(name, config.with_tempo(False)),
                    batch.add(name, config.with_tempo(True)),
                )
            )
    results = batch.run()
    rows = []
    for name, label, base_index, tempo_index in plan:
        baseline, tempo = results[base_index], results[tempo_index]
        rows.append(
            {
                "workload": name,
                "variant": label,
                "superpage_fraction": baseline.superpage_fraction,
                "performance_improvement": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
            }
        )
    return {"figure": "fig13", "rows": rows}


# ----------------------------------------------------------------------
# E14 / Figure 14 -- row-buffer management policies
# ----------------------------------------------------------------------

def fig14_row_policies(workloads=None, length=24000, seed=0, executor=None):
    names = _bigdata_subset(workloads)
    batch = _CellBatch(_get_executor(executor), length, seed)
    plan = []
    for name in names:
        for policy in ("adaptive", "open", "closed"):
            config = default_system_config()
            config = config.copy_with(row_policy=replace(config.row_policy, policy=policy))
            plan.append(
                (
                    name,
                    policy,
                    batch.add(name, config.with_tempo(False)),
                    batch.add(name, config.with_tempo(True)),
                )
            )
    results = batch.run()
    rows = []
    for name, policy, base_index, tempo_index in plan:
        baseline, tempo = results[base_index], results[tempo_index]
        rows.append(
            {
                "workload": name,
                "policy": policy,
                "performance_improvement": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
            }
        )
    return {"figure": "fig14", "rows": rows}


# ----------------------------------------------------------------------
# E15 / Figure 15 -- anticipation wait-cycle sweep
# ----------------------------------------------------------------------

def fig15_wait_cycles(workloads=None, length=24000, seed=0, waits=(0, 5, 10, 15),
                      executor=None):
    """Besides end-to-end improvement, report the *mechanism* metric the
    wait window targets: the row-buffer hit rate of DRAM page-table
    accesses (keeping a just-read PT row open lets queued translations
    to the same row hit)."""
    names = _bigdata_subset(workloads)
    batch = _CellBatch(_get_executor(executor), length, seed)
    plan = []
    for name in names:
        base_index = batch.add(name, default_system_config().with_tempo(False))
        for wait in waits:
            config = default_system_config().with_tempo(True, wait_cycles=wait)
            plan.append((name, wait, base_index, batch.add(name, config)))
    results = batch.run()
    rows = []
    for name, wait, base_index, tempo_index in plan:
        baseline, tempo = results[base_index], results[tempo_index]
        stats = tempo.stats
        pt_hits = stats.get("controller.outcome_pt_hit", 0)
        pt_total = (
            pt_hits
            + stats.get("controller.outcome_pt_miss", 0)
            + stats.get("controller.outcome_pt_conflict", 0)
        )
        rows.append(
            {
                "workload": name,
                "wait_cycles": wait,
                "performance_improvement": performance_improvement(
                    baseline.total_cycles, tempo.total_cycles
                ),
                "pt_row_hit_rate": pt_hits / pt_total if pt_total else 0.0,
            }
        )
    return {"figure": "fig15", "rows": rows}


# ----------------------------------------------------------------------
# E16 / Figure 16 -- BLISS fairness scheduling
# ----------------------------------------------------------------------

def _bliss_config(prefetch_increment=1, grace=15, tempo=True):
    config = default_system_config()
    config = config.copy_with(
        scheduler=replace(config.scheduler, policy="bliss",
                          bliss_prefetch_increment=prefetch_increment)
    )
    return config.with_tempo(tempo, grace_period_cycles=grace) if tempo else config.with_tempo(False)


def _add_mix(batch, mix, config):
    """Queue a mix's shared run plus its per-application alone runs;
    returns the indices needed to assemble a MultiprogramResult."""
    shared_index = batch.add(mix, config)
    alone_indices = [batch.add(name, config) for name in mix]
    return shared_index, alone_indices


def _mix_result(results, shared_index, alone_indices):
    return MultiprogramResult(
        results[shared_index], [results[index] for index in alone_indices]
    )


def fig16_bliss(mixes=None, length=6000, seed=0,
                prefetch_weights=(0, 1, 2), grace_periods=(0, 15, 30),
                executor=None):
    """Weighted speedup + max slowdown vs prefetch weight and grace
    period, averaged over the mixes (paper averages over its mixes too).

    Prefetch weights are BLISS counter increments relative to the demand
    increment of 2 -- i.e. 0, half, and equal weight.

    The alone baselines do not depend on the swept sharing parameters,
    so each mix's alone runs are simulated once (under the TEMPO-off
    base config) and reused across the whole sweep.
    """
    mixes = MULTIPROGRAM_MIXES if mixes is None else tuple(mixes)
    batch = _CellBatch(_get_executor(executor), length, seed)
    plan = []
    for mix in mixes:
        base_shared, alone = _add_mix(batch, mix, _bliss_config(tempo=False))
        weight_runs = [
            (weight, batch.add(mix, _bliss_config(prefetch_increment=weight, grace=15)))
            for weight in prefetch_weights
        ]
        grace_runs = [
            (grace, batch.add(mix, _bliss_config(prefetch_increment=1, grace=grace)))
            for grace in grace_periods
        ]
        plan.append((mix, base_shared, alone, weight_runs, grace_runs))
    results = batch.run()
    weight_rows = []
    grace_rows = []
    for mix, base_shared, alone, weight_runs, grace_runs in plan:
        base_result = _mix_result(results, base_shared, alone)
        for weight, shared_index in weight_runs:
            result = _mix_result(results, shared_index, alone)
            weight_rows.append(
                {
                    "mix": "+".join(mix),
                    "prefetch_weight": weight / 2.0,
                    "ws_improvement": _safe_ratio(
                        result.weighted_speedup - base_result.weighted_speedup,
                        base_result.weighted_speedup,
                    ),
                    "ms_improvement": _safe_ratio(
                        base_result.max_slowdown - result.max_slowdown,
                        base_result.max_slowdown,
                    ),
                }
            )
        for grace, shared_index in grace_runs:
            result = _mix_result(results, shared_index, alone)
            grace_rows.append(
                {
                    "mix": "+".join(mix),
                    "grace_period": grace,
                    "ws_improvement": _safe_ratio(
                        result.weighted_speedup - base_result.weighted_speedup,
                        base_result.weighted_speedup,
                    ),
                    "ms_improvement": _safe_ratio(
                        base_result.max_slowdown - result.max_slowdown,
                        base_result.max_slowdown,
                    ),
                }
            )
    return {"figure": "fig16", "weight_rows": weight_rows, "grace_rows": grace_rows}


# ----------------------------------------------------------------------
# E17 / Figure 17 -- sub-row buffers
# ----------------------------------------------------------------------

def _subrow_config(allocation, dedicated, tempo):
    config = default_system_config()
    subrows = replace(
        config.dram.subrows, enabled=True, allocation=allocation,
        dedicated_prefetch_subrows=dedicated,
    )
    config = config.copy_with(dram=replace(config.dram, subrows=subrows))
    return config.with_tempo(tempo)


def fig17_subrows(mixes=None, length=6000, seed=0, dedicated_options=(0, 1, 2, 4),
                  executor=None):
    """FOA/POA sub-row allocation with swept prefetch-dedicated slots."""
    mixes = SUBROW_MIXES if mixes is None else tuple(mixes)
    batch = _CellBatch(_get_executor(executor), length, seed)
    plan = []
    for allocation in ("foa", "poa"):
        for mix in mixes:
            base = _add_mix(batch, mix, _subrow_config(allocation, 0, False))
            sweeps = [
                (dedicated, _add_mix(batch, mix, _subrow_config(allocation, dedicated, True)))
                for dedicated in dedicated_options
            ]
            plan.append((allocation, mix, base, sweeps))
    results = batch.run()
    rows = []
    for allocation, mix, (base_shared, base_alone), sweeps in plan:
        base_result = _mix_result(results, base_shared, base_alone)
        for dedicated, (shared_index, alone_indices) in sweeps:
            result = _mix_result(results, shared_index, alone_indices)
            rows.append(
                {
                    "allocation": allocation,
                    "mix": "+".join(mix),
                    "dedicated_subrows": dedicated,
                    "ws_improvement": _safe_ratio(
                        result.weighted_speedup - base_result.weighted_speedup,
                        base_result.weighted_speedup,
                    ),
                    "ms_improvement": _safe_ratio(
                        base_result.max_slowdown - result.max_slowdown,
                        base_result.max_slowdown,
                    ),
                }
            )
    return {"figure": "fig17", "rows": rows}


# ----------------------------------------------------------------------
# Driver registry
# ----------------------------------------------------------------------

#: Figure id -> driver, for every consumer that names figures by id (the
#: ``repro experiment`` CLI, the sweep service's submission endpoint,
#: the docs honesty gate).  ``repro.analysis.report`` keeps its own
#: (driver, kwargs) tuples because it also fixes report-quality lengths.
EXPERIMENT_DRIVERS = {
    "fig01": fig01_runtime_breakdown,
    "fig04": fig04_dram_reference_breakdown,
    "fig10": fig10_performance_energy,
    "fig11_left": fig11_replay_service,
    "fig11_right": fig11_small_footprint,
    "fig12": fig12_imp_interaction,
    "fig13": fig13_superpage_sensitivity,
    "fig14": fig14_row_policies,
    "fig15": fig15_wait_cycles,
    "fig16": fig16_bliss,
    "fig17": fig17_subrows,
}

#: Figures whose workload set is part of the experiment's definition
#: (small-footprint set, multiprogrammed mixes): a ``--workloads`` /
#: job-spec ``workloads`` override is meaningless for these.
FIXED_WORKLOAD_FIGURES = ("fig11_right", "fig16", "fig17")
