"""Row-buffer management policies (paper Secs. 4.3 and 6.3).

* **Open-row**: the accessed row stays latched until a conflicting access
  forces a precharge.  Wins when consecutive accesses share rows; loses a
  full precharge on every conflict.
* **Closed-row**: rows are written back immediately after each access
  (precharge off the critical path), so every access is a row *miss* but
  never a *conflict*.  Wins for poor-locality interleaved streams.
* **Adaptive**: a prediction cache (Awasthi et al. [17]; 2048-set 4-way)
  learns, per row, how long to keep it open.  Same-row arrivals after the
  predicted close grow the window; conflicts while open shrink it.

The policy object answers one question for the bank: *given an access to
``row`` finishing at ``access_end``, when should the row auto-close?*
(``None`` = never, i.e. leave open.)  Banks report transitions back so
the adaptive predictor can learn.
"""

from repro.common.errors import ConfigError
from repro.common.stats import StatGroup

#: Smallest adaptive keep-open window, cycles.
MIN_WINDOW = 25


class OpenRowPolicy:
    """Leave rows open until a conflict forces the precharge."""

    name = "open"

    def __init__(self, config=None):
        self.stats = StatGroup("row_policy.open")

    def close_time(self, row, access_end):
        return None

    def record_transition(self, prev_row, new_row, was_open):
        pass


class ClosedRowPolicy:
    """Precharge immediately after every access."""

    name = "closed"

    def __init__(self, config=None):
        self.stats = StatGroup("row_policy.closed")

    def close_time(self, row, access_end):
        return access_end

    def record_transition(self, prev_row, new_row, was_open):
        pass


class _PredictionCache:
    """Set-associative LRU cache of per-row keep-open windows."""

    def __init__(self, sets, ways, initial_window):
        self._set_mask = sets - 1
        self._ways = ways
        self._initial = initial_window
        self._sets = [dict() for _ in range(sets)]

    def window(self, row):
        entries = self._sets[row & self._set_mask]
        window = entries.pop(row, None)
        if window is None:
            return self._initial
        entries[row] = window
        return window

    def update(self, row, window):
        entries = self._sets[row & self._set_mask]
        entries.pop(row, None)
        if len(entries) >= self._ways:
            del entries[next(iter(entries))]
        entries[row] = window


class AdaptiveRowPolicy:
    """Prediction-cache driven open window (see module docstring)."""

    name = "adaptive"

    def __init__(self, config):
        if config is None:
            raise ConfigError(
                "AdaptiveRowPolicy needs a RowPolicyConfig",
                context={"policy": "adaptive"},
            )
        self.config = config
        self._cache = _PredictionCache(
            config.predictor_sets, config.predictor_ways, config.predictor_initial_window
        )
        self.stats = StatGroup("row_policy.adaptive")

    def close_time(self, row, access_end):
        return access_end + self._cache.window(row)

    def record_transition(self, prev_row, new_row, was_open):
        """Learn from what the next access found.

        * same row, already auto-closed -> the window was too short: a
          hit became a miss; double the window.
        * different row, still open -> the window was too long: the
          access pays a conflict; halve the window.
        * the two correct cases leave the prediction unchanged.
        """
        if prev_row is None:
            return
        window = self._cache.window(prev_row)
        if new_row == prev_row and not was_open:
            self._cache.update(prev_row, min(window * 2, self.config.predictor_max_window))
            self.stats.counter("window_grown").add()
        elif new_row != prev_row and was_open:
            self._cache.update(prev_row, max(window // 2, MIN_WINDOW))
            self.stats.counter("window_shrunk").add()


def make_row_policy(row_policy_config):
    """Instantiate the policy named by a RowPolicyConfig."""
    policy = row_policy_config.policy
    if policy == "open":
        return OpenRowPolicy(row_policy_config)
    if policy == "closed":
        return ClosedRowPolicy(row_policy_config)
    if policy == "adaptive":
        return AdaptiveRowPolicy(row_policy_config)
    raise ConfigError(
        "unknown row policy %r" % (policy,),
        context={"policy": policy, "known": ["open", "closed", "adaptive"]},
    )
