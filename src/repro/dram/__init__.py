"""DRAM device model: address interleaving, per-bank row-buffer state
machines, row-management policies (open / closed / adaptive), sub-row
buffers with FOA/POA allocation, and the energy model.

Timing follows the paper's Sec. 2.3 anatomy: row-buffer *hits* are served
at column-access latency; *misses* find the bank precharged and pay an
activate; *conflicts* find a different row open and additionally pay the
precharge on the critical path.
"""

from repro.dram.address_map import AddressMap, DramLocation
from repro.dram.bank import Bank, DramDevice, OUTCOME_CONFLICT, OUTCOME_HIT, OUTCOME_MISS
from repro.dram.row_policy import (
    AdaptiveRowPolicy,
    ClosedRowPolicy,
    OpenRowPolicy,
    make_row_policy,
)
from repro.dram.subrow import SubRowBank, SubRowSet
from repro.dram.energy import EnergyModel

__all__ = [
    "AddressMap",
    "DramLocation",
    "Bank",
    "DramDevice",
    "OUTCOME_HIT",
    "OUTCOME_MISS",
    "OUTCOME_CONFLICT",
    "OpenRowPolicy",
    "ClosedRowPolicy",
    "AdaptiveRowPolicy",
    "make_row_policy",
    "SubRowBank",
    "SubRowSet",
    "EnergyModel",
]
