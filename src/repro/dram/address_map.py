"""Physical address -> DRAM location interleaving.

Layout (low to high bits): row offset (column), channel, bank, row.
With the default 8 KB rows this keeps each aligned 8 KB chunk of physical
memory inside a single bank row -- which is what makes the paper's
Figure 8 geometry hold: two spatially-adjacent 4 KB pages share a row,
and 1024 consecutive 8-byte page-table entries share a row.
"""

from repro.common.errors import ConfigError


class DramLocation:
    """Decoded coordinates of a physical address."""

    __slots__ = ("channel", "bank", "row", "row_offset")

    def __init__(self, channel, bank, row, row_offset):
        self.channel = channel
        self.bank = bank
        self.row = row
        self.row_offset = row_offset

    def __repr__(self):
        return "DramLocation(ch=%d, bank=%d, row=%d, +0x%x)" % (
            self.channel,
            self.bank,
            self.row,
            self.row_offset,
        )

    def __eq__(self, other):
        return (
            isinstance(other, DramLocation)
            and self.channel == other.channel
            and self.bank == other.bank
            and self.row == other.row
            and self.row_offset == other.row_offset
        )

    def __hash__(self):
        return hash((self.channel, self.bank, self.row, self.row_offset))


class AddressMap:
    """Bit-slicing interleave for a :class:`~repro.common.config.DramConfig`."""

    def __init__(self, dram_config):
        config = dram_config
        if config.row_bytes & (config.row_bytes - 1):
            raise ConfigError(
                "row size must be a power of two",
                context={"row_bytes": config.row_bytes},
            )
        self.config = config
        self.row_shift = config.row_bytes.bit_length() - 1
        self.channel_bits = config.channels.bit_length() - 1
        self.bank_bits = config.banks_per_channel.bit_length() - 1
        self._channel_mask = config.channels - 1
        self._bank_mask = config.banks_per_channel - 1
        self._offset_mask = config.row_bytes - 1
        self.total_banks = config.channels * config.banks_per_channel

    def decode(self, paddr):
        """Full decode to a :class:`DramLocation`."""
        row_offset = paddr & self._offset_mask
        above = paddr >> self.row_shift
        channel = above & self._channel_mask
        above >>= self.channel_bits
        bank = above & self._bank_mask
        row = above >> self.bank_bits
        return DramLocation(channel, bank, row, row_offset)

    def bank_index(self, paddr):
        """Flat bank index in ``[0, total_banks)`` -- the hot-path key."""
        above = paddr >> self.row_shift
        channel = above & self._channel_mask
        bank = (above >> self.channel_bits) & self._bank_mask
        return channel * self.config.banks_per_channel + bank

    def row_of(self, paddr):
        """Row id within the owning bank."""
        return paddr >> (self.row_shift + self.channel_bits + self.bank_bits)

    def same_row(self, paddr_a, paddr_b):
        """True when both addresses live in the same bank row -- the test
        TEMPO's transaction-queue grouping performs (paper Sec. 4.3)."""
        return (
            self.bank_index(paddr_a) == self.bank_index(paddr_b)
            and self.row_of(paddr_a) == self.row_of(paddr_b)
        )

    def row_base_paddr(self, paddr):
        """Base physical address of the row holding *paddr*."""
        return paddr & ~self._offset_mask
