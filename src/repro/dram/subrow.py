"""Sub-row buffers (Gulur et al. [18]; paper Secs. 4.4 and 6.4).

Each bank's monolithic row buffer is replaced by ``num_subrows`` smaller
buffers (default 8 x 1 KB for an 8 KB row).  A sub-row buffer holds one
*segment* -- a 1 KB-aligned slice -- of one row, so several rows can be
partially open at once, behaving like a tiny fully-associative cache of
row segments.

Allocation policies decide which sub-row a new activation may evict:

* **FOA** (fairness-oriented): sub-rows are statically partitioned
  round-robin across cores so no application can monopolize them.
* **POA** (performance-oriented): the partition is recomputed every
  epoch in proportion to each core's recent demand.

TEMPO's addition (paper Sec. 4.4): ``dedicated_prefetch_subrows`` slots
are reserved for post-translation prefetches, so prefetched replay data
is never evicted by unrelated demand activations before the replay
arrives.  Dedicating 2 of 8 performs best (Figure 17).
"""

from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.dram.bank import OUTCOME_HIT, OUTCOME_MISS

#: POA repartitioning epoch, in accesses per bank.
POA_EPOCH_ACCESSES = 512

#: Owner tag for TEMPO-dedicated slots.
PREFETCH_OWNER = "prefetch"


class _Slot:
    __slots__ = ("content", "last_used", "owner")

    def __init__(self, owner):
        self.content = None  # (row, segment) or None
        self.last_used = -1
        self.owner = owner


class SubRowBank:
    """A bank whose row buffer is split into sub-row buffers.

    Interface-compatible with :class:`repro.dram.bank.Bank` (``access``
    / ``classify`` / ``reserve``), so the memory controller treats both
    uniformly.
    """

    def __init__(self, bank_id, total_banks, dram_config, num_cpus=1, stats=None):
        subrow_config = dram_config.subrows
        if not subrow_config.enabled:
            raise ConfigError("SubRowBank requires subrows.enabled")
        self.bank_id = bank_id
        self.total_banks = total_banks
        self._timing = dram_config
        self.num_subrows = subrow_config.num_subrows
        self.subrow_bytes = dram_config.row_bytes // self.num_subrows
        self.allocation = subrow_config.allocation
        self.num_cpus = max(num_cpus, 1)
        dedicated = subrow_config.dedicated_prefetch_subrows
        self.slots = [
            _Slot(PREFETCH_OWNER if index < dedicated else None)
            for index in range(self.num_subrows)
        ]
        self._assign_static_owners()
        self.ready_at = 0
        interval = dram_config.refresh_interval_cycles
        self.next_refresh_at = interval if interval else None
        self.reserved_cpu = None
        self.reserved_until = 0
        self._access_count = 0
        self._cpu_demand = [0] * self.num_cpus
        self.stats = stats if stats is not None else StatGroup("subrow_bank.%d" % bank_id)

    def _general_slots(self):
        return [slot for slot in self.slots if slot.owner != PREFETCH_OWNER]

    def _assign_static_owners(self):
        """FOA: round-robin static partition of the general slots."""
        for position, slot in enumerate(self._general_slots()):
            slot.owner = position % self.num_cpus

    def _repartition_poa(self):
        """POA: reassign general slots proportionally to recent demand."""
        general = self._general_slots()
        total_demand = sum(self._cpu_demand)
        if total_demand == 0:
            return
        shares = [
            max(1, round(len(general) * demand / total_demand))
            for demand in self._cpu_demand
        ]
        assignment = []
        for cpu, share in enumerate(shares):
            assignment.extend([cpu] * share)
        for slot, owner in zip(general, assignment):
            slot.owner = owner
        self._cpu_demand = [0] * self.num_cpus

    # ------------------------------------------------------------------
    # Bank-compatible interface
    # ------------------------------------------------------------------

    def _segment(self, row_offset):
        return row_offset // self.subrow_bytes

    def _apply_refresh(self, start):
        """Refresh precharges every sub-row buffer (all slots emptied)."""
        if self.next_refresh_at is None:
            return start
        interval = self._timing.refresh_interval_cycles
        duration = self._timing.refresh_cycles
        while start >= self.next_refresh_at:
            refresh_end = max(self.next_refresh_at, self.ready_at) + duration
            if start < refresh_end:
                start = refresh_end
            for slot in self.slots:
                slot.content = None
            self.next_refresh_at += interval
            self.stats.counter("refreshes").add()
        return start

    def classify(self, row, now, row_offset=0):
        target = (row, self._segment(row_offset))
        for slot in self.slots:
            if slot.content == target:
                return OUTCOME_HIT
        return OUTCOME_MISS

    def access(
        self,
        row,
        now,
        keep_open_extra=None,
        cpu=0,
        is_prefetch=False,
        row_offset=0,
        latency_override=None,
    ):
        """Access *row* at byte *row_offset*; returns (start, end, outcome).

        Sub-rows never pay the conflict penalty: a victim slot's
        precharge overlaps with the new activation (other slots keep
        serving), so non-hits cost a row miss.
        """
        start = now if now >= self.ready_at else self.ready_at
        start = self._apply_refresh(start)
        segment = self._segment(row_offset)
        target = (row, segment)
        cpu = cpu % self.num_cpus

        hit_slot = None
        for slot in self.slots:
            if slot.content == target:
                hit_slot = slot
                break

        if hit_slot is not None:
            outcome = OUTCOME_HIT
            latency = self._timing.row_hit_cycles
            hit_slot.last_used = start
        else:
            outcome = OUTCOME_MISS
            latency = self._timing.row_miss_cycles
            victim = self._choose_victim(cpu, is_prefetch)
            victim.content = target
            victim.last_used = start

        if latency_override is not None:
            latency = latency_override
        end = start + latency
        self.ready_at = end
        self.stats.counter(outcome).add()
        if not is_prefetch:
            self._cpu_demand[cpu] += 1
        self._access_count += 1
        if self.allocation == "poa" and self._access_count % POA_EPOCH_ACCESSES == 0:
            self._repartition_poa()
        return start, end, outcome

    def _choose_victim(self, cpu, is_prefetch):
        """LRU within the permitted slot partition."""
        if is_prefetch:
            permitted = [slot for slot in self.slots if slot.owner == PREFETCH_OWNER]
            if not permitted:
                permitted = self._general_slots()
        else:
            permitted = [slot for slot in self.slots if slot.owner == cpu]
            if not permitted:
                permitted = self._general_slots()
        empty = [slot for slot in permitted if slot.content is None]
        if empty:
            return empty[0]
        return min(permitted, key=lambda slot: slot.last_used)

    def reserve(self, cpu, until):
        self.reserved_cpu = cpu
        self.reserved_until = until

    def reserved_against(self, cpu, now):
        return (
            self.reserved_cpu is not None
            and self.reserved_cpu != cpu
            and now < self.reserved_until
        )

    @property
    def open_row(self):
        """Most-recently-used slot's row (diagnostic only)."""
        live = [slot for slot in self.slots if slot.content is not None]
        if not live:
            return None
        return max(live, key=lambda slot: slot.last_used).content[0]

    def __repr__(self):
        live = sum(1 for slot in self.slots if slot.content is not None)
        return "SubRowBank(%d, %d/%d live)" % (self.bank_id, live, self.num_subrows)


class SubRowSet:
    """Factory helper wiring SubRowBanks into a DramDevice."""

    def __init__(self, dram_config, num_cpus, stats_root=None):
        self.dram_config = dram_config
        self.num_cpus = num_cpus
        self._stats_root = stats_root

    def __call__(self, bank_id, total_banks):
        stats = self._stats_root.child("bank") if self._stats_root is not None else None
        return SubRowBank(bank_id, total_banks, self.dram_config, self.num_cpus, stats)
