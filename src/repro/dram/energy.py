"""Analytical energy model (paper Sec. 6.1, "Energy benefits").

Total energy = background (static) power x elapsed cycles
             + per-command dynamic energies.

The paper's TEMPO energy savings (1-14%) come from *shorter runtime
reducing static energy*, partially offset by the extra prefetch
activations and TEMPO's 3%-larger memory controller (charged as a small
static-power overhead when enabled).  This model reproduces exactly that
trade-off; units are arbitrary ("energy units") since only ratios are
reported.
"""

from repro.common.errors import SimulationError
from repro.common.stats import StatGroup
from repro.dram.bank import OUTCOME_CONFLICT, OUTCOME_HIT, OUTCOME_MISS


class EnergyModel:
    """Accumulates per-command energy; finalized with elapsed cycles."""

    def __init__(self, energy_config, tempo_enabled=False):
        energy_config.validate()
        self.config = energy_config
        self.tempo_enabled = tempo_enabled
        self.stats = StatGroup("energy")
        self._dynamic = 0.0

    def record_dram_access(self, outcome, is_prefetch=False):
        """Charge one DRAM access by row-buffer outcome.

        Hits cost only the cheap row-buffer read; misses add an
        activation; conflicts add precharge + activation.
        """
        config = self.config
        if outcome == OUTCOME_HIT:
            energy = config.row_hit_read_energy
        elif outcome == OUTCOME_MISS:
            energy = config.array_read_energy + config.act_pre_energy
        elif outcome == OUTCOME_CONFLICT:
            energy = config.array_read_energy + 2 * config.act_pre_energy
        else:
            raise SimulationError(
                "unknown DRAM outcome %r" % (outcome,),
                context={"outcome": outcome, "is_prefetch": is_prefetch},
            )
        self._dynamic += energy
        self.stats.counter("dram_accesses").add()
        if is_prefetch:
            self.stats.counter("prefetch_accesses").add()

    def record_llc_fill(self):
        """Charge moving one line into the LLC (TEMPO step 7 / any fill)."""
        self._dynamic += self.config.llc_access_energy
        self.stats.counter("llc_fills").add()

    @property
    def dynamic_energy(self):
        return self._dynamic

    def background_energy(self, cycles):
        """Static energy over *cycles*, including TEMPO's area overhead."""
        power = self.config.background_power_per_kilocycle / 1000.0
        if self.tempo_enabled:
            power *= 1.0 + self.config.tempo_static_overhead
        return power * cycles

    def total_energy(self, cycles):
        return self.background_energy(cycles) + self._dynamic

    def reset(self):
        self._dynamic = 0.0
        self.stats.reset()
