"""Per-bank row-buffer state machines and the DRAM device aggregate.

The model keys on the paper's Sec. 2.3 anatomy of an access:

* **row-buffer hit** -- the requested row is already latched: column
  access only.
* **row-buffer miss** -- the bank is precharged (no open row, or the
  policy auto-closed it off the critical path): activate + column.
* **row-buffer conflict** -- a *different* row is open: precharge on the
  critical path, then activate + column.

Banks serialize via ``ready_at``; the open-row lifetime is governed by a
row policy (:mod:`repro.dram.row_policy`).  TEMPO's two scheduling knobs
surface here: ``keep_open_until`` (the 10-cycle anticipation window that
holds a just-read page-table row open) and per-bank reservations used for
the BLISS grace period.
"""

from repro.common.stats import StatGroup
from repro.dram.address_map import AddressMap
from repro.dram.row_policy import make_row_policy

OUTCOME_HIT = "hit"
OUTCOME_MISS = "miss"
OUTCOME_CONFLICT = "conflict"


class Bank:
    """One DRAM bank: open-row state + timing."""

    __slots__ = (
        "bank_id",
        "total_banks",
        "_timing",
        "_policy",
        "open_row",
        "auto_close_at",
        "ready_at",
        "next_refresh_at",
        "reserved_cpu",
        "reserved_until",
        "stats",
        "_outcome_counters",
        "_refresh_counter",
    )

    def __init__(self, bank_id, total_banks, dram_config, policy, stats=None):
        self.bank_id = bank_id
        self.total_banks = total_banks
        self._timing = dram_config
        self._policy = policy
        self.open_row = None
        self.auto_close_at = None
        self.ready_at = 0
        # All banks of a rank refresh together every tREFI (an all-bank
        # refresh command), so the schedule is shared, not staggered.
        interval = dram_config.refresh_interval_cycles
        self.next_refresh_at = interval if interval else None
        #: BLISS grace period: (cpu, until) soft reservation.
        self.reserved_cpu = None
        self.reserved_until = 0
        self.stats = stats if stats is not None else StatGroup("bank.%d" % bank_id)
        self._outcome_counters = {
            OUTCOME_HIT: self.stats.counter(OUTCOME_HIT),
            OUTCOME_MISS: self.stats.counter(OUTCOME_MISS),
            OUTCOME_CONFLICT: self.stats.counter(OUTCOME_CONFLICT),
        }
        self._refresh_counter = self.stats.counter("refreshes")

    def _apply_refresh(self, start):
        """Perform any refreshes due by *start*; returns the (possibly
        delayed) earliest time the access can begin.  A refresh
        precharges the bank (closing the open row)."""
        if self.next_refresh_at is None:
            return start
        interval = self._timing.refresh_interval_cycles
        duration = self._timing.refresh_cycles
        while start >= self.next_refresh_at:
            refresh_end = max(self.next_refresh_at, self.ready_at) + duration
            if start < refresh_end:
                start = refresh_end
            self.open_row = None
            self.auto_close_at = None
            self.next_refresh_at += interval
            self._refresh_counter.value += 1
        return start

    def _row_key(self, row):
        """Globally unique predictor key for (bank, row)."""
        return row * self.total_banks + self.bank_id

    def effective_open_row(self, now):
        """The row that is *actually* open at time *now*, accounting for
        the policy's auto-close."""
        if self.open_row is None:
            return None
        if self.auto_close_at is not None and now >= self.auto_close_at:
            return None
        return self.open_row

    def classify(self, row, now, row_offset=0):
        """Outcome an access to *row* would see at *now* (no state change).

        *row_offset* is accepted for interface parity with
        :class:`~repro.dram.subrow.SubRowBank` (a whole-row buffer does
        not care which byte is touched).
        """
        effective = self.effective_open_row(now)
        if effective is None:
            return OUTCOME_MISS
        return OUTCOME_HIT if effective == row else OUTCOME_CONFLICT

    def access(
        self,
        row,
        now,
        keep_open_extra=None,
        cpu=0,
        is_prefetch=False,
        row_offset=0,
        latency_override=None,
    ):
        """Perform one column access to *row*.

        Returns ``(start, end, outcome)``.  *keep_open_extra* is TEMPO's
        anticipation window: the row will not auto-close until at least
        that many cycles after the access ends, even under closed or
        adaptive policies (paper Sec. 4.3a).  *latency_override* replaces
        the outcome-derived latency -- used for TEMPO's row prefetch,
        which is a bare activation (the paper's 60-100 cycles) rather
        than a full column access.  *cpu*, *is_prefetch* and
        *row_offset* exist for interface parity with
        :class:`~repro.dram.subrow.SubRowBank`.
        """
        start = now if now >= self.ready_at else self.ready_at
        start = self._apply_refresh(start)
        prev_row = self.open_row
        was_open = self.effective_open_row(start) is not None

        if not was_open:
            outcome = OUTCOME_MISS
            latency = self._timing.row_miss_cycles
        elif prev_row == row:
            outcome = OUTCOME_HIT
            latency = self._timing.row_hit_cycles
        else:
            outcome = OUTCOME_CONFLICT
            latency = self._timing.row_conflict_cycles

        if prev_row is not None and prev_row != row:
            # Teach the adaptive predictor about the transition it just
            # experienced (and about missed-hit reopenings).
            self._policy.record_transition(self._row_key(prev_row), self._row_key(row), was_open)
        elif prev_row == row and not was_open:
            # Same row, but it had auto-closed: a hit became a miss.
            self._policy.record_transition(self._row_key(prev_row), self._row_key(row), was_open)

        if latency_override is not None:
            latency = latency_override
        end = start + latency
        self.ready_at = end
        self.open_row = row
        close_at = self._policy.close_time(self._row_key(row), end)
        if keep_open_extra is not None and close_at is not None:
            close_at = max(close_at, end + keep_open_extra)
        self.auto_close_at = close_at
        self._outcome_counters[outcome].value += 1
        return start, end, outcome

    def reserve(self, cpu, until):
        """Soft-reserve the bank for *cpu* (TEMPO's BLISS grace period)."""
        self.reserved_cpu = cpu
        self.reserved_until = until

    def reserved_against(self, cpu, now):
        """True when a *different* CPU should defer to a reservation."""
        return (
            self.reserved_cpu is not None
            and self.reserved_cpu != cpu
            and now < self.reserved_until
        )

    def __repr__(self):
        return "Bank(%d, open=%s)" % (self.bank_id, self.open_row)


class DramDevice:
    """All banks across all channels, plus the address map."""

    def __init__(self, dram_config, row_policy_config, bank_factory=None):
        self.config = dram_config
        self.address_map = AddressMap(dram_config)
        self.row_policy = make_row_policy(row_policy_config)
        self.stats = StatGroup("dram")
        total = self.address_map.total_banks
        make_bank = bank_factory if bank_factory is not None else self._default_bank
        self.banks = [make_bank(bank_id, total) for bank_id in range(total)]
        #: Nullable per-bank utilization tracks, indexed like ``banks``
        #: (:mod:`repro.obs.timeline`).  Occupancy is reported here at
        #: the device level so sub-row banks (interface-compatible, not
        #: a :class:`Bank` subclass) are covered by the same hook.
        self._util_banks = None

    def attach_util(self, bank_tracks):
        """Wire per-bank busy/idle accounting into the utilization
        ledger; *bank_tracks* is indexed like :attr:`banks`."""
        self._util_banks = list(bank_tracks)

    def _default_bank(self, bank_id, total):
        return Bank(bank_id, total, self.config, self.row_policy, self.stats.child("bank"))

    def bank_for(self, paddr):
        return self.banks[self.address_map.bank_index(paddr)]

    def access(
        self, paddr, now, keep_open_extra=None, cpu=0, is_prefetch=False, latency_override=None
    ):
        """Decode + access; returns ``(start, end, outcome)``."""
        index = self.address_map.bank_index(paddr)
        bank = self.banks[index]
        location = self.address_map.decode(paddr)
        start, end, outcome = bank.access(
            location.row,
            now,
            keep_open_extra,
            cpu=cpu,
            is_prefetch=is_prefetch,
            row_offset=location.row_offset,
            latency_override=latency_override,
        )
        if self._util_banks is not None:
            self._util_banks[index].busy(start, end)
        return start, end, outcome

    def classify(self, paddr, now):
        """What outcome an access at *now* would see (no state change)."""
        location = self.address_map.decode(paddr)
        return self.bank_for(paddr).classify(location.row, now, location.row_offset)

    def row_open(self, paddr, now):
        """True when the row holding *paddr* is open at *now* -- the test
        deciding whether a TEMPO row prefetch still helps the replay."""
        return self.classify(paddr, now) == OUTCOME_HIT
