"""MMU caches (page-walk caches).

Skylake-style paging-structure caches hold frequently used entries from
the upper page-table levels (L4, L3, L2) so a walk can skip directly to
the lowest cached level.  They never hold *leaf* entries -- those belong
to the TLB -- which is why the paper finds 96%+ of DRAM page-table
accesses are for leaf PTs (Sec. 2.2): the upper levels map such large
address chunks that these small caches absorb them.

Keyed by the page-table entry's physical address, which is equivalent to
indexing by the partial virtual-page number (the entry address *is* the
table base concatenated with the radix index).
"""

from repro.common.stats import StatGroup


class _Level:
    """Set-associative LRU array for one page-table level."""

    __slots__ = ("assoc", "_sets", "_set_mask")

    def __init__(self, entries, assoc):
        self.assoc = assoc
        num_sets = entries // assoc
        self._set_mask = num_sets - 1
        self._sets = [dict() for _ in range(num_sets)]

    def _set_for(self, entry_paddr):
        # Entries are 8 bytes; drop the byte offset before indexing.
        return self._sets[(entry_paddr >> 3) & self._set_mask]

    def lookup(self, entry_paddr):
        entries = self._set_for(entry_paddr)
        if entry_paddr in entries:
            del entries[entry_paddr]
            entries[entry_paddr] = True
            return True
        return False

    def insert(self, entry_paddr):
        entries = self._set_for(entry_paddr)
        entries.pop(entry_paddr, None)
        if len(entries) >= self.assoc:
            del entries[next(iter(entries))]
        entries[entry_paddr] = True

    def flush(self):
        for entries in self._sets:
            entries.clear()


class MmuCaches:
    """Per-level page-walk caches for levels 4, 3 and 2."""

    CACHED_LEVELS = (4, 3, 2)

    def __init__(self, config, name="mmu_cache"):
        self.config = config
        self._levels = {
            level: _Level(config.entries_per_level, config.assoc)
            for level in self.CACHED_LEVELS
        }
        self.stats = StatGroup(name)
        #: Nullable utilization track (:mod:`repro.obs.timeline`).
        self.util = None

    def occupy(self, start, end):
        """Report the arrays busy for ``[start, end)`` (walk-cache
        probes that sourced an entry)."""
        if self.util is not None:
            self.util.busy(start, end)

    def lookup(self, level, entry_paddr, is_leaf):
        """True when the walker can source this entry from the MMU cache.

        Leaf entries are never cached here regardless of level (a 1 GB
        leaf lives at L3 but belongs to the TLB, not the walk cache).
        """
        if is_leaf or level not in self._levels:
            return False
        hit = self._levels[level].lookup(entry_paddr)
        self.stats.counter("hits" if hit else "misses").add()
        return hit

    def insert(self, level, entry_paddr, is_leaf):
        """Fill a non-leaf entry after the walker fetched it from memory."""
        if is_leaf or level not in self._levels:
            return
        self._levels[level].insert(entry_paddr)
        self.stats.counter("fills").add()

    def flush(self):
        for level in self._levels.values():
            level.flush()
        self.stats.counter("flushes").add()

    def hit_rate(self):
        return self.stats.ratio("hits", "misses")
