"""MMU hardware models: TLBs, MMU (page-walk) caches, and the hardware
page-table walker -- including TEMPO's walker modification that tags
leaf-PT requests and piggybacks the replay's cache-line index.
"""

from repro.mmu.tlb import SetAssociativeTlb, TlbHierarchy
from repro.mmu.mmu_cache import MmuCaches
from repro.mmu.walker import PageTableWalker, WalkPlan, WalkStep

__all__ = [
    "SetAssociativeTlb",
    "TlbHierarchy",
    "MmuCaches",
    "PageTableWalker",
    "WalkPlan",
    "WalkStep",
]
