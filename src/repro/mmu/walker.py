"""Hardware page-table walker (paper Secs. 2.1 and 4.1).

On a TLB miss the walker traverses the radix tree L4 -> leaf.  Each level
is first probed in the MMU caches; misses become real memory references
that traverse the cache hierarchy and possibly DRAM.

TEMPO's modification (Sec. 4.1): the request for the *leaf* entry is
tagged with an identifier bit, and the replay's desired cache-line index
within the target page is appended to it (6 bits for 4 KB pages).  The
memory controller uses the tag to trigger the prefetch engine and the
line index to construct the replay's full physical address.

The walker here is a pure *sequencer*: it produces a :class:`WalkPlan`
describing the references to perform; the system simulator executes them
with real timing, then calls :meth:`PageTableWalker.complete` to fill the
MMU caches and TLB.
"""

from repro.common.addressing import line_index_in_page
from repro.common.constants import SIZE_FOR_LEAF_LEVEL
from repro.common.errors import SimulationError
from repro.common.stats import StatGroup


class WalkStep:
    """One page-table level the walker visits."""

    __slots__ = ("level", "entry_paddr", "from_mmu_cache", "is_leaf")

    def __init__(self, level, entry_paddr, from_mmu_cache, is_leaf):
        self.level = level
        self.entry_paddr = entry_paddr
        self.from_mmu_cache = from_mmu_cache
        self.is_leaf = is_leaf

    def __repr__(self):
        source = "mmu$" if self.from_mmu_cache else "mem"
        leaf = " leaf" if self.is_leaf else ""
        return "WalkStep(L%d @0x%x %s%s)" % (self.level, self.entry_paddr, source, leaf)


class WalkPlan:
    """Everything the simulator needs to execute one walk."""

    __slots__ = (
        "vaddr",
        "steps",
        "entry",
        "faulted",
        "leaf_level",
        "tempo_tagged",
        "replay_line_index",
    )

    def __init__(self, vaddr, steps, entry, faulted, leaf_level, tempo_tagged, replay_line_index):
        self.vaddr = vaddr
        self.steps = steps
        self.entry = entry
        self.faulted = faulted
        self.leaf_level = leaf_level
        self.tempo_tagged = tempo_tagged
        self.replay_line_index = replay_line_index

    @property
    def memory_steps(self):
        """Steps that actually reference memory (MMU-cache misses)."""
        return [step for step in self.steps if not step.from_mmu_cache]

    @property
    def page_size(self):
        return self.entry.page_size if self.entry is not None else None

    @property
    def frame_paddr(self):
        return self.entry.frame_paddr if self.entry is not None else None

    def __repr__(self):
        state = "fault" if self.faulted else "ok"
        return "WalkPlan(0x%x, %d steps, %s)" % (self.vaddr, len(self.steps), state)


class PageTableWalker:
    """Sequences radix walks against a page table + MMU caches."""

    def __init__(self, page_table, mmu_caches, tempo_tagging=False, name="walker"):
        self.page_table = page_table
        self.mmu_caches = mmu_caches
        #: When True, leaf-PT requests carry TEMPO's tag + line index.
        self.tempo_tagging = tempo_tagging
        self.stats = StatGroup(name)
        #: Nullable utilization track (:mod:`repro.obs.timeline`).
        self.util = None

    def occupy(self, start, end):
        """Report the walker state machine busy for one whole walk."""
        if self.util is not None:
            self.util.busy(start, end)

    def plan(self, vaddr):
        """Build the :class:`WalkPlan` for a TLB miss at *vaddr*.

        MMU-cache lookups happen here (they are combinational and cheap);
        fills happen in :meth:`complete` after the simulator has actually
        performed the memory references.
        """
        result = self.page_table.walk(vaddr)
        steps = []
        memory_steps = 0
        for level, entry_paddr in result.accesses:
            is_leaf = (not result.faulted) and level == result.leaf_level
            cached = self.mmu_caches.lookup(level, entry_paddr, is_leaf)
            if not cached:
                memory_steps += 1
            steps.append(WalkStep(level, entry_paddr, cached, is_leaf))
        self.stats.counter("walks").add()
        self.stats.histogram("memory_steps_per_walk").record(memory_steps)
        if result.faulted:
            self.stats.counter("faulting_walks").add()
            return WalkPlan(vaddr, tuple(steps), None, True, result.leaf_level, False, 0)
        page_size = SIZE_FOR_LEAF_LEVEL[result.leaf_level]
        replay_line = line_index_in_page(vaddr, page_size)
        tagged = self.tempo_tagging
        if tagged:
            self.stats.counter("tagged_leaf_requests").add()
        return WalkPlan(
            vaddr,
            tuple(steps),
            result.entry,
            False,
            result.leaf_level,
            tagged,
            replay_line,
        )

    def complete(self, plan):
        """Record walk completion: fill MMU caches with the non-leaf
        entries that were fetched from memory.

        Completing a faulted plan would desynchronise the walker's
        completion accounting (the ``walks == completed + faulting``
        invariant the audit suite checks), so it is rejected here with
        the machine state attached.
        """
        if plan.faulted:
            raise SimulationError(
                "cannot complete a faulted walk",
                context={
                    "vaddr": plan.vaddr,
                    "leaf_level": plan.leaf_level,
                    "steps": len(plan.steps),
                },
            )
        for step in plan.steps:
            if not step.from_mmu_cache and not step.is_leaf:
                self.mmu_caches.insert(step.level, step.entry_paddr, step.is_leaf)
        self.stats.counter("completed_walks").add()
