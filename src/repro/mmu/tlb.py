"""Translation lookaside buffers.

A two-level hierarchy mirroring Skylake (paper Figure 9): split L1 arrays
per page size (64-entry 4 KB, 32-entry 2 MB, 4-entry 1 GB) backed by a
unified L2 ("STLB").  Skylake's STLB does not hold 1 GB translations;
``TlbConfig.l2_holds_1g`` models that.

Set-associative LRU throughout, exploiting Python dict insertion order
for the recency stack.
"""

from repro.common.constants import PAGE_SHIFTS, PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.stats import StatGroup


class SetAssociativeTlb:
    """One TLB array for one page size: VPN -> frame base, LRU sets."""

    def __init__(self, entries, assoc, page_size, name="tlb"):
        self.page_size = page_size
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._set_mask = self.num_sets - 1
        self._page_shift = PAGE_SHIFTS[page_size]
        # One ordered dict per set: vpn -> frame_base (LRU = first key).
        self._sets = [dict() for _ in range(self.num_sets)]
        self.stats = StatGroup(name)

    def _set_for(self, vpn):
        return self._sets[vpn & self._set_mask]

    def lookup(self, vaddr):
        """Return the frame base for *vaddr*, or ``None`` on miss.

        A hit refreshes the entry's LRU position.
        """
        vpn = vaddr >> self._page_shift
        entries = self._set_for(vpn)
        frame = entries.pop(vpn, None)
        if frame is None:
            self.stats.counter("misses").add()
            return None
        entries[vpn] = frame  # re-insert as most recent
        self.stats.counter("hits").add()
        return frame

    def insert(self, vaddr, frame_base):
        """Fill a translation; evicts LRU on conflict.

        Returns the evicted ``(vpn, frame_base)`` or ``None``.
        """
        vpn = vaddr >> self._page_shift
        entries = self._set_for(vpn)
        entries.pop(vpn, None)
        victim = None
        if len(entries) >= self.assoc:
            victim_vpn = next(iter(entries))
            victim = (victim_vpn, entries.pop(victim_vpn))
            self.stats.counter("evictions").add()
        entries[vpn] = frame_base
        return victim

    def invalidate(self, vaddr):
        """Drop the entry covering *vaddr*, if present (TLB shootdown)."""
        vpn = vaddr >> self._page_shift
        removed = self._set_for(vpn).pop(vpn, None) is not None
        if removed:
            self.stats.counter("invalidations").add()
        return removed

    def flush(self):
        for entries in self._sets:
            entries.clear()
        self.stats.counter("flushes").add()

    @property
    def occupancy(self):
        return sum(len(entries) for entries in self._sets)

    def hit_rate(self):
        return self.stats.ratio("hits", "misses")


class TlbHierarchy:
    """Split-L1 + unified-L2 TLB hierarchy for one core."""

    def __init__(self, tlb_config, name="tlb"):
        config = tlb_config
        self.config = config
        self._l1 = {
            PAGE_SIZE_4K: SetAssociativeTlb(config.l1_entries_4k, config.l1_assoc_4k, PAGE_SIZE_4K, "l1_4k"),
            PAGE_SIZE_2M: SetAssociativeTlb(config.l1_entries_2m, config.l1_assoc_2m, PAGE_SIZE_2M, "l1_2m"),
            PAGE_SIZE_1G: SetAssociativeTlb(config.l1_entries_1g, config.l1_assoc_1g, PAGE_SIZE_1G, "l1_1g"),
        }
        self._l2 = {
            PAGE_SIZE_4K: SetAssociativeTlb(config.l2_entries, config.l2_assoc, PAGE_SIZE_4K, "l2_4k"),
            PAGE_SIZE_2M: SetAssociativeTlb(config.l2_entries, config.l2_assoc, PAGE_SIZE_2M, "l2_2m"),
        }
        if config.l2_holds_1g:
            self._l2[PAGE_SIZE_1G] = SetAssociativeTlb(
                config.l2_entries, config.l2_assoc, PAGE_SIZE_1G, "l2_1g"
            )
        self.stats = StatGroup(name)
        #: Nullable utilization tracks (:mod:`repro.obs.timeline`); the
        #: off path is a single ``is None`` test in :meth:`report_lookup`.
        self.util_l1 = None
        self.util_l2 = None

    def attach_util(self, l1_track, l2_track):
        """Wire busy/idle accounting into the utilization ledger."""
        self.util_l1 = l1_track
        self.util_l2 = l2_track

    def report_lookup(self, start, outcome):
        """Report one probe's occupancy; *outcome* is what
        :meth:`lookup` returned for it.  The L1 arrays are busy for the
        one-cycle probe; the L2 is additionally busy for its access
        latency on an L1 miss (one tag-check cycle on a full miss)."""
        if self.util_l1 is None:
            return
        self.util_l1.busy(start, start + 1)
        if outcome is None:
            self.util_l2.busy(start, start + 1)
        elif outcome[2]:
            self.util_l2.busy(start + 1, start + 1 + outcome[2])

    def lookup(self, vaddr):
        """Probe L1 then L2.

        Returns ``(frame_base, page_size, extra_latency)`` on a hit
        (latency 0 for L1, ``l2_latency`` for L2, during which the L1 is
        refilled), or ``None`` on a full miss.
        """
        for page_size, array in self._l1.items():
            frame = array.lookup(vaddr)
            if frame is not None:
                self.stats.counter("l1_hits").add()
                return frame, page_size, 0
        for page_size, array in self._l2.items():
            frame = array.lookup(vaddr)
            if frame is not None:
                self._l1[page_size].insert(vaddr, frame)
                self.stats.counter("l2_hits").add()
                return frame, page_size, self.config.l2_latency
        self.stats.counter("misses").add()
        return None

    def fill(self, vaddr, frame_base, page_size):
        """Install a walked translation into L1 and (if held) L2."""
        self._l1[page_size].insert(vaddr, frame_base)
        l2 = self._l2.get(page_size)
        if l2 is not None:
            l2.insert(vaddr, frame_base)

    def invalidate(self, vaddr):
        removed = False
        for array in self._l1.values():
            removed |= array.invalidate(vaddr)
        for array in self._l2.values():
            removed |= array.invalidate(vaddr)
        return removed

    def flush(self):
        for array in self._l1.values():
            array.flush()
        for array in self._l2.values():
            array.flush()

    def stat_groups(self):
        """Per-array StatGroups (``l1_4k`` ... ``l2_2m``) so the metrics
        harvest can export every array, not just the hierarchy summary."""
        arrays = list(self._l1.values()) + list(self._l2.values())
        return [array.stats for array in arrays]

    def miss_rate(self):
        """Full-hierarchy miss rate over all lookups."""
        stats = self.stats
        hits = stats.counter("l1_hits").value + stats.counter("l2_hits").value
        misses = stats.counter("misses").value
        total = hits + misses
        return misses / total if total else 0.0
