"""Runtime verification: online invariant audits, the flight recorder,
and differential oracles (``repro verify``).

Three layers defend the simulation itself (docs/verification.md):

* :class:`~repro.verify.auditor.AuditorSuite` -- online invariant
  checkpoints over the live machine (stat conservation, TLB/page-table
  coherence, cache sanity, DRAM legality, TEMPO causality), enabled by
  ``SystemSimulator(check_invariants="sample"|"full")``;
* :class:`~repro.verify.recorder.FlightRecorder` -- a bounded ring
  buffer of the last N reference/walk/DRAM events, dumped as structured
  context when any :class:`~repro.common.errors.ReproError` escapes a
  run;
* :func:`~repro.verify.oracles.run_verification` -- whole-run
  differential and metamorphic oracles behind ``repro verify``.
"""

from repro.common.errors import InvariantViolation
from repro.verify.auditor import (
    AuditorSuite,
    CacheSanityAuditor,
    DramLegalityAuditor,
    InvariantAuditor,
    StatConservationAuditor,
    TempoCausalityAuditor,
    TlbCoherenceAuditor,
    Violation,
)
from repro.verify.oracles import OracleResult, run_verification
from repro.verify.recorder import FlightRecorder

__all__ = [
    "AuditorSuite",
    "CacheSanityAuditor",
    "DramLegalityAuditor",
    "FlightRecorder",
    "InvariantAuditor",
    "InvariantViolation",
    "OracleResult",
    "StatConservationAuditor",
    "TempoCausalityAuditor",
    "TlbCoherenceAuditor",
    "Violation",
    "run_verification",
]
