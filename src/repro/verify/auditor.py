"""Online invariant auditors over the live machine.

Each auditor inspects one subsystem of a running
:class:`~repro.sim.system.SystemSimulator` and yields
:class:`Violation` records for anything that cannot happen in a correct
model.  The invariants exploit *redundant* accounting: every quantity is
checked against an independently maintained second source (a counter
against a structure occupancy, a cached translation against the live
page table, a prefetch count against the leaf-PTE fetch count), so a
single dropped increment or corrupted entry is visible.

Auditors are read-only by contract: they use
:meth:`~repro.common.stats.StatGroup.peek` (never ``counter()``, which
would materialise zero-valued counters in the stats export) and
non-updating structure probes, so an audited run's statistics are
bit-identical to an unaudited one.

Some equations only hold when no record is mid-flight (a walk that has
been planned but not completed, a blocked core's queued request): those
are gated on the *quiescent* flag, true for single-core record
boundaries and for the final post-drain checkpoint.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.common.errors import InvariantViolation
from repro.verify.recorder import FlightRecorder

#: Row-buffer outcomes a serviced request can see (repro.dram.bank).
_DRAM_OUTCOMES = ("hit", "miss", "conflict")

#: Request kinds the controller schedules (repro.sched.request).
_REQUEST_KINDS = ("demand", "pt", "tempo_prefetch", "imp_prefetch", "writeback")

#: Checkpoint every N records in ``full`` mode.
FULL_INTERVAL = 256
#: Checkpoint every N records in ``sample`` mode.
SAMPLE_INTERVAL = 4096


class Violation:
    """One failed invariant: which auditor, which check, and the
    machine state that disproves it."""

    __slots__ = ("auditor", "invariant", "message", "context")

    def __init__(
        self,
        auditor: str,
        invariant: str,
        message: str,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.auditor = auditor
        self.invariant = invariant
        self.message = message
        self.context: Dict[str, Any] = dict(context) if context else {}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "auditor": self.auditor,
            "invariant": self.invariant,
            "message": self.message,
            "context": self.context,
        }

    def to_error(self) -> InvariantViolation:
        return InvariantViolation(
            self.auditor, self.invariant, self.message, self.context
        )

    def __repr__(self) -> str:
        return "Violation(%s/%s: %s)" % (self.auditor, self.invariant, self.message)


class InvariantAuditor:
    """Base class: one subsystem's invariants.

    Subclasses set :attr:`name` and implement :meth:`audit`, yielding a
    :class:`Violation` per failed check.  ``machine`` is a live
    :class:`~repro.sim.system.SystemSimulator`.
    """

    name = "auditor"

    def audit(self, machine: Any, quiescent: bool = False) -> Iterator[Violation]:
        raise NotImplementedError

    def _violation(
        self,
        invariant: str,
        message: str,
        context: Optional[Dict[str, Any]] = None,
    ) -> Violation:
        return Violation(self.name, invariant, message, context)


class StatConservationAuditor(InvariantAuditor):
    """Counters agree with their independently maintained doubles.

    * TLB: per-array hit counters sum to the hierarchy's ``l1_hits`` /
      ``l2_hits`` (each hierarchy hit increments exactly one array).
    * Caches: ``dirty_evictions <= evictions``.
    * Controller: for every request kind, ``served`` equals the sum of
      its per-outcome counters, and ``enqueued`` equals ``served`` plus
      requests still queued (plus late-cancelled TEMPO prefetches).
    * DRAM: the shared bank group's ``hit+miss+conflict`` equals total
      served requests (every service classifies exactly one outcome).
    * Walker (quiescent only): ``walks == completed + faulting``.
    """

    name = "stat_conservation"

    def audit(self, machine: Any, quiescent: bool = False) -> Iterator[Violation]:
        for core in machine.cores:
            tlb = core.tlb
            for level, arrays in (("l1", tlb._l1), ("l2", tlb._l2)):
                array_hits = sum(
                    array.stats.peek("hits") for array in arrays.values()
                )
                hierarchy_hits = tlb.stats.peek("%s_hits" % level)
                if array_hits != hierarchy_hits:
                    yield self._violation(
                        "tlb_%s_hit_sum" % level,
                        "per-array %s hits sum to %d but hierarchy counted %d"
                        % (level, array_hits, hierarchy_hits),
                        {"core": core.cpu},
                    )
            if quiescent:
                walker = core.walker.stats
                walks = walker.peek("walks")
                accounted = walker.peek("completed_walks") + walker.peek(
                    "faulting_walks"
                )
                if walks != accounted:
                    yield self._violation(
                        "walker_completion",
                        "%d walks planned but %d completed or faulted"
                        % (walks, accounted),
                        {"core": core.cpu},
                    )

        for cache in self._caches(machine):
            evictions = cache.stats.peek("evictions")
            dirty = cache.stats.peek("dirty_evictions")
            if dirty > evictions:
                yield self._violation(
                    "dirty_eviction_bound",
                    "%s: %d dirty evictions exceed %d total evictions"
                    % (cache.name, dirty, evictions),
                    {"cache": cache.name},
                )

        controller = machine.controller
        stats = controller.stats
        queued: Dict[str, int] = {}
        for queue in controller._queues:
            for request in queue:
                queued[request.kind] = queued.get(request.kind, 0) + 1
        total_served = 0
        for kind in _REQUEST_KINDS:
            served = stats.peek("served_%s" % kind)
            total_served += served
            outcome_sum = sum(
                stats.peek("outcome_%s_%s" % (kind, outcome))
                for outcome in _DRAM_OUTCOMES
            )
            if served != outcome_sum:
                yield self._violation(
                    "served_outcome_sum",
                    "%s: served %d but outcomes sum to %d"
                    % (kind, served, outcome_sum),
                    {"kind": kind},
                )
            enqueued = stats.peek("enqueued_%s" % kind)
            accounted = served + queued.get(kind, 0)
            if kind == "tempo_prefetch":
                accounted += stats.peek("prefetch_cancelled_late")
            if enqueued != accounted:
                yield self._violation(
                    "queue_accounting",
                    "%s: enqueued %d but served+queued%s account for %d"
                    % (
                        kind,
                        enqueued,
                        "+cancelled" if kind == "tempo_prefetch" else "",
                        accounted,
                    ),
                    {"kind": kind, "queued": queued.get(kind, 0)},
                )

        # SubRowSet banks keep private stats; the shared group only
        # exists for the default whole-row banks.
        bank_stats = controller.device.stats.peek_child("bank")
        if bank_stats is not None:
            bank_total = sum(bank_stats.peek(outcome) for outcome in _DRAM_OUTCOMES)
            if bank_total != total_served:
                yield self._violation(
                    "bank_outcome_total",
                    "banks classified %d accesses but controller served %d"
                    % (bank_total, total_served),
                )

    @staticmethod
    def _caches(machine: Any) -> Iterator[Any]:
        hierarchy = machine.hierarchy
        for cache in hierarchy.l1:
            yield cache
        for cache in hierarchy.l2:
            yield cache
        yield hierarchy.llc


class TlbCoherenceAuditor(InvariantAuditor):
    """Every cached translation re-validates against the live page
    table: the VPN must map to a present leaf entry of the array's page
    size whose frame matches the cached frame base (paper Sec. 2.1 --
    the TLB is a pure cache of the table, never an independent source)."""

    name = "tlb_coherence"

    def audit(self, machine: Any, quiescent: bool = False) -> Iterator[Violation]:
        for core in machine.cores:
            page_table = core.address_space.page_table
            tlb = core.tlb
            arrays = list(tlb._l1.values()) + list(tlb._l2.values())
            for array in arrays:
                for entries in array._sets:
                    for vpn, frame in entries.items():
                        vaddr = vpn << array._page_shift
                        result = page_table.walk(vaddr)
                        entry = result.entry
                        if result.faulted or entry is None:
                            yield self._violation(
                                "stale_translation",
                                "%s caches 0x%x -> 0x%x but the page table "
                                "has no mapping"
                                % (array.stats.name, vaddr, frame),
                                {"core": core.cpu, "vaddr": vaddr, "frame": frame},
                            )
                            continue
                        if (
                            entry.frame_paddr != frame
                            or entry.page_size != array.page_size
                        ):
                            yield self._violation(
                                "frame_mismatch",
                                "%s caches 0x%x -> 0x%x (%d B) but the page "
                                "table maps it to 0x%x (%d B)"
                                % (
                                    array.stats.name,
                                    vaddr,
                                    frame,
                                    array.page_size,
                                    entry.frame_paddr,
                                    entry.page_size,
                                ),
                                {"core": core.cpu, "vaddr": vaddr, "frame": frame},
                            )


class CacheSanityAuditor(InvariantAuditor):
    """Structural cache-state legality.

    * every line sits in the set its index selects (a "duplicate line"
      bug puts the same line id in two sets -- set-index consistency is
      the dict-based model's equivalent of the duplicate check);
    * no set exceeds its associativity;
    * occupancy is exactly ``fills + prefetch_fills - evictions -
      invalidations`` while no flush has occurred.
    """

    name = "cache_sanity"

    def audit(self, machine: Any, quiescent: bool = False) -> Iterator[Violation]:
        for cache in StatConservationAuditor._caches(machine):
            seen: Dict[int, int] = {}
            for index, entries in enumerate(cache._sets):
                if len(entries) > cache.assoc:
                    yield self._violation(
                        "set_overflow",
                        "%s set %d holds %d lines (associativity %d)"
                        % (cache.name, index, len(entries), cache.assoc),
                        {"cache": cache.name, "set": index},
                    )
                for line_id in entries:
                    home = line_id & cache._set_mask
                    if home != index:
                        yield self._violation(
                            "misplaced_line",
                            "%s: line 0x%x found in set %d but indexes to "
                            "set %d" % (cache.name, line_id, index, home),
                            {"cache": cache.name, "line_id": line_id},
                        )
                    if line_id in seen:
                        yield self._violation(
                            "duplicate_line",
                            "%s: line 0x%x present in sets %d and %d"
                            % (cache.name, line_id, seen[line_id], index),
                            {"cache": cache.name, "line_id": line_id},
                        )
                    seen[line_id] = index
            stats = cache.stats
            if stats.peek("flushes") == 0:
                expected = (
                    stats.peek("fills")
                    + stats.peek("prefetch_fills")
                    - stats.peek("evictions")
                    - stats.peek("invalidations")
                )
                if cache.occupancy != expected:
                    yield self._violation(
                        "occupancy_accounting",
                        "%s holds %d lines but fill/eviction counters "
                        "predict %d" % (cache.name, cache.occupancy, expected),
                        {"cache": cache.name, "occupancy": cache.occupancy},
                    )


class DramLegalityAuditor(InvariantAuditor):
    """Bank/channel timing state never moves backwards.

    Stateful across checkpoints: remembers each bank's ``ready_at`` /
    ``next_refresh_at`` and each channel clock, and flags any rewind or
    non-integer drift (a float leaking into cycle arithmetic would
    silently break determinism long before it breaks results).
    """

    name = "dram_legality"

    def __init__(self) -> None:
        self._bank_marks: Dict[int, Any] = {}
        self._clock_marks: Dict[int, int] = {}

    def audit(self, machine: Any, quiescent: bool = False) -> Iterator[Violation]:
        controller = machine.controller
        for bank in controller.device.banks:
            context = {"bank": bank.bank_id}
            for field in ("ready_at", "reserved_until"):
                value = getattr(bank, field)
                if not isinstance(value, int):
                    yield self._violation(
                        "integer_cycles",
                        "bank %d %s is %r, not an integer cycle count"
                        % (bank.bank_id, field, value),
                        context,
                    )
            if bank.open_row is not None and (
                not isinstance(bank.open_row, int) or bank.open_row < 0
            ):
                yield self._violation(
                    "open_row_state",
                    "bank %d open_row is %r" % (bank.bank_id, bank.open_row),
                    context,
                )
            marks = self._bank_marks.get(bank.bank_id)
            if marks is not None:
                last_ready, last_refresh = marks
                if isinstance(bank.ready_at, int) and bank.ready_at < last_ready:
                    yield self._violation(
                        "ready_at_monotonic",
                        "bank %d ready_at rewound from %d to %d"
                        % (bank.bank_id, last_ready, bank.ready_at),
                        context,
                    )
                if (
                    bank.next_refresh_at is not None
                    and last_refresh is not None
                    and bank.next_refresh_at < last_refresh
                ):
                    yield self._violation(
                        "refresh_monotonic",
                        "bank %d next_refresh_at rewound from %d to %d"
                        % (bank.bank_id, last_refresh, bank.next_refresh_at),
                        context,
                    )
            self._bank_marks[bank.bank_id] = (bank.ready_at, bank.next_refresh_at)
        for channel, clock in enumerate(controller._clock):
            if not isinstance(clock, int):
                yield self._violation(
                    "integer_cycles",
                    "channel %d clock is %r, not an integer" % (channel, clock),
                    {"channel": channel},
                )
                continue
            last = self._clock_marks.get(channel)
            if last is not None and clock < last:
                yield self._violation(
                    "channel_clock_monotonic",
                    "channel %d clock rewound from %d to %d"
                    % (channel, last, clock),
                    {"channel": channel},
                )
            self._clock_marks[channel] = clock


class TempoCausalityAuditor(InvariantAuditor):
    """TEMPO's structural claim (paper Secs. 3-4): every prefetch traces
    to exactly one serviced leaf-PTE DRAM access, and none is ever built
    through a non-present translation.

    * with the engine active: ``prefetches_built + suppressed_not_present
      == served_pt_leaf`` (each serviced leaf fetch makes exactly one
      build-or-suppress decision), every accepted prefetch entered
      through the engine hook, and queue accounting closes;
    * queued prefetch targets are cache-line aligned and inside physical
      memory (the engine is non-speculative, Sec. 3);
    * with TEMPO off: zero tempo prefetches anywhere, and the walker
      never tagged a leaf request.
    """

    name = "tempo_causality"

    def audit(self, machine: Any, quiescent: bool = False) -> Iterator[Violation]:
        controller = machine.controller
        stats = controller.stats
        engine = machine.engine
        enqueued = stats.peek("enqueued_tempo_prefetch")
        served = stats.peek("served_tempo_prefetch")
        if engine is None or not engine.active:
            hook_accepted = stats.peek("tempo_prefetches_enqueued")
            if enqueued or served or hook_accepted:
                yield self._violation(
                    "prefetch_without_engine",
                    "tempo prefetches recorded (enqueued=%d served=%d "
                    "hook=%d) with the prefetch engine %s"
                    % (
                        enqueued,
                        served,
                        hook_accepted,
                        "absent" if engine is None else "inactive",
                    ),
                )
            if engine is None:
                for core in machine.cores:
                    tagged = core.walker.stats.peek("tagged_leaf_requests")
                    if tagged:
                        yield self._violation(
                            "tagging_without_engine",
                            "core %d tagged %d leaf requests with TEMPO off"
                            % (core.cpu, tagged),
                            {"core": core.cpu},
                        )
            return

        built = engine.stats.peek("prefetches_built")
        suppressed = engine.stats.peek("suppressed_not_present")
        served_leaf = stats.peek("served_pt_leaf")
        if built + suppressed != served_leaf:
            yield self._violation(
                "leaf_prefetch_bijection",
                "%d prefetches built + %d suppressed != %d serviced "
                "leaf-PTE fetches" % (built, suppressed, served_leaf),
            )
        hook_accepted = stats.peek("tempo_prefetches_enqueued")
        if enqueued != hook_accepted:
            yield self._violation(
                "prefetch_provenance",
                "%d tempo prefetches entered the queues but only %d came "
                "through the engine hook" % (enqueued, hook_accepted),
            )
        if enqueued > built:
            yield self._violation(
                "enqueue_bound",
                "%d tempo prefetches enqueued but the engine only built %d"
                % (enqueued, built),
            )
        queued = 0
        line_bytes = machine.config.llc.line_bytes
        phys_bytes = machine.allocator.phys_mem_bytes
        for queue in controller._queues:
            for request in queue:
                if request.kind != "tempo_prefetch":
                    continue
                queued += 1
                if request.paddr % line_bytes:
                    yield self._violation(
                        "prefetch_alignment",
                        "queued tempo prefetch 0x%x is not line-aligned"
                        % request.paddr,
                        {"paddr": request.paddr},
                    )
                if not 0 <= request.paddr < phys_bytes:
                    yield self._violation(
                        "prefetch_target_bounds",
                        "queued tempo prefetch 0x%x is outside physical "
                        "memory (%d bytes)" % (request.paddr, phys_bytes),
                        {"paddr": request.paddr},
                    )
        cancelled = stats.peek("prefetch_cancelled_late")
        if enqueued != served + cancelled + queued:
            yield self._violation(
                "prefetch_accounting",
                "enqueued %d != served %d + cancelled %d + queued %d"
                % (enqueued, served, cancelled, queued),
            )


def default_auditors() -> List[InvariantAuditor]:
    return [
        StatConservationAuditor(),
        TlbCoherenceAuditor(),
        CacheSanityAuditor(),
        DramLegalityAuditor(),
        TempoCausalityAuditor(),
    ]


class AuditorSuite:
    """Drives the auditors at a record-count cadence.

    ``full`` checkpoints every :data:`FULL_INTERVAL` records, ``sample``
    every :data:`SAMPLE_INTERVAL`; both run a final quiescent checkpoint
    after the controller drains.  The first violation found raises
    :class:`~repro.common.errors.InvariantViolation` with the flight
    recorder's dump attached under ``context["flight_recorder"]``.
    """

    def __init__(
        self,
        mode: str,
        recorder: Optional[FlightRecorder] = None,
        auditors: Optional[List[InvariantAuditor]] = None,
        interval: Optional[int] = None,
        quiescent_ticks: bool = True,
    ) -> None:
        if mode not in ("sample", "full"):
            raise InvariantViolation(
                "suite",
                "mode",
                "unknown check-invariants mode %r" % (mode,),
                context={"mode": mode, "known": ["sample", "full"]},
            )
        self.mode = mode
        self.recorder = recorder
        self.auditors = auditors if auditors is not None else default_auditors()
        if interval is None:
            interval = FULL_INTERVAL if mode == "full" else SAMPLE_INTERVAL
        self.interval = interval
        #: Whether per-record ticks happen at globally quiescent points
        #: (true single-core; false while other cores are mid-record).
        self.quiescent_ticks = quiescent_ticks
        self.ticks = 0
        self.checkpoints = 0
        self.violations_found = 0
        self._since_checkpoint = 0

    def tick(self, machine: Any) -> None:
        """One record retired; checkpoint when the interval elapses."""
        self.ticks += 1
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.interval:
            self.checkpoint(machine, quiescent=self.quiescent_ticks)

    def checkpoint(self, machine: Any, quiescent: bool = False) -> None:
        """Run every auditor; raise on the first violation."""
        self._since_checkpoint = 0
        self.checkpoints += 1
        for auditor in self.auditors:
            for violation in auditor.audit(machine, quiescent=quiescent):
                self.violations_found += 1
                error = violation.to_error()
                if self.recorder is not None:
                    error.context["flight_recorder"] = self.recorder.dump()
                raise error

    def audit_all(self, machine: Any, quiescent: bool = True) -> List[Violation]:
        """Non-raising sweep of every auditor (tests, post-mortems)."""
        found: List[Violation] = []
        for auditor in self.auditors:
            found.extend(auditor.audit(machine, quiescent=quiescent))
        self.violations_found += len(found)
        return found

    def summary(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "mode": self.mode,
            "interval": self.interval,
            "ticks": self.ticks,
            "checkpoints": self.checkpoints,
            "violations": self.violations_found,
            "auditors": [auditor.name for auditor in self.auditors],
        }
        if self.recorder is not None:
            info["flight_recorder"] = {
                "capacity": self.recorder.capacity,
                "recorded": self.recorder.recorded,
                "dropped": self.recorder.dropped,
            }
        return info
