"""Whole-run differential and metamorphic oracles (``repro verify``).

Where the online auditors check invariants *within* one run, the oracles
check relations *between* runs -- properties that hold for any correct
simulator regardless of parameter values:

* **fast vs engine** -- the single-core TLB-hit fast path and the
  generator-based event engine must produce bit-identical statistics on
  the same input;
* **determinism** -- same workload, config and seed twice yields the
  same config hash and the same statistics;
* **TEMPO replay metamorphic** -- enabling TEMPO can only *reduce* the
  number of replay accesses that go to DRAM (prefetches may add traffic,
  but replays themselves only get absorbed, paper Sec. 3);
* **length monotonicity** -- simulating a longer prefix of the same
  trace never decreases any absolute hit count;
* **online audit** -- a short baseline + TEMPO run under
  ``--check-invariants full`` completes with zero violations;
* **batch vs engine** -- the struct-of-arrays batch kernel
  (``--kernel batch``) must produce bit-identical statistics to the
  scalar engine on several workloads, and must be deterministic with
  itself.

Simulation modules are imported lazily through :func:`_load` --
``repro.verify`` sits above the sim stack, and the indirection also
keeps this module clean under ``mypy --strict`` while the sim layer is
still in the typing burn-down.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Optional

#: Workload used by every oracle: pointer-chasing with a hot index, so
#: short runs still exercise TLB misses, walks, and TEMPO prefetches.
ORACLE_WORKLOAD = "btree"


def _load(name: str) -> Any:
    """Import a simulation module untyped (see module docstring)."""
    return importlib.import_module(name)


def _comparable(stats: Dict[str, Any]) -> Dict[str, Any]:
    """Strip wall-clock keys and the producing-kernel tag: everything
    else must be bit-identical."""
    return {
        key: value
        for key, value in stats.items()
        if not key.startswith("manifest.timing") and key != "manifest.kernel"
    }


def _diff_keys(left: Dict[str, Any], right: Dict[str, Any], limit: int = 5) -> str:
    differing = sorted(
        key
        for key in set(left) | set(right)
        if left.get(key) != right.get(key)
    )
    shown = ", ".join(differing[:limit])
    if len(differing) > limit:
        shown += ", ... (%d total)" % len(differing)
    return shown


class OracleResult:
    """Outcome of one oracle."""

    __slots__ = ("name", "passed", "detail")

    def __init__(self, name: str, passed: bool, detail: str) -> None:
        self.name = name
        self.passed = passed
        self.detail = detail

    def __repr__(self) -> str:
        return "OracleResult(%s: %s)" % (self.name, "PASS" if self.passed else "FAIL")


def oracle_fast_engine_equivalence(length: int, seed: int) -> OracleResult:
    """The inlined TLB-hit fast path is a pure optimisation: forcing
    every record through the event engine must not change one bit."""
    registry = _load("repro.workloads.registry")
    system = _load("repro.sim.system")
    config = _load("repro.common.config").default_system_config().with_tempo(True)
    runs = []
    for force_engine in (False, True):
        trace = registry.make_trace(ORACLE_WORKLOAD, length=length, seed=seed)
        result = system.SystemSimulator(
            config, [trace], seed=seed, force_engine=force_engine
        ).run()
        runs.append(_comparable(result.stats))
    if runs[0] == runs[1]:
        return OracleResult(
            "fast_engine_equivalence",
            True,
            "fast path and event engine agree on %d stats" % len(runs[0]),
        )
    return OracleResult(
        "fast_engine_equivalence",
        False,
        "stats diverge: %s" % _diff_keys(runs[0], runs[1]),
    )


def oracle_determinism(length: int, seed: int) -> OracleResult:
    """Same workload + config + seed twice => same hash, same stats."""
    runner = _load("repro.sim.runner")
    config = _load("repro.common.config").default_system_config().with_tempo(True)
    first = runner.run_workload(ORACLE_WORKLOAD, config=config, length=length, seed=seed)
    second = runner.run_workload(ORACLE_WORKLOAD, config=config, length=length, seed=seed)
    if first.manifest.config_sha256 != second.manifest.config_sha256:
        return OracleResult(
            "determinism",
            False,
            "config hash differs between identical runs: %s vs %s"
            % (first.manifest.config_sha256[:12], second.manifest.config_sha256[:12]),
        )
    left = _comparable(first.stats)
    right = _comparable(second.stats)
    if left == right:
        return OracleResult(
            "determinism",
            True,
            "two seed-%d runs agree on %d stats (config %s)"
            % (seed, len(left), first.manifest.config_sha256[:12]),
        )
    return OracleResult(
        "determinism", False, "stats diverge: %s" % _diff_keys(left, right)
    )


def oracle_tempo_replay_reduction(length: int, seed: int) -> OracleResult:
    """TEMPO absorbs replay DRAM accesses; it never manufactures them."""
    runner = _load("repro.sim.runner")
    baseline, tempo = runner.run_baseline_and_tempo(
        ORACLE_WORKLOAD, length=length, seed=seed
    )
    base_replays = baseline.core.dram_refs.replay
    tempo_replays = tempo.core.dram_refs.replay
    passed = tempo_replays <= base_replays
    return OracleResult(
        "tempo_replay_reduction",
        passed,
        "replay DRAM accesses: baseline %d, TEMPO %d" % (base_replays, tempo_replays),
    )


#: Monotone absolute counters checked by the length oracle.
_MONOTONE_STATS = (
    "core0.tlb.l1_hits",
    "core0.tlb.l2_hits",
    "core0.walker.walks",
    "llc.hits",
    "controller.served_demand",
)


def oracle_length_monotonicity(length: int, seed: int) -> OracleResult:
    """Simulating twice as many records of the *same* trace never
    decreases an absolute hit count (counters only ever increment)."""
    registry = _load("repro.workloads.registry")
    system = _load("repro.sim.system")
    config = _load("repro.common.config").default_system_config().with_tempo(True)
    totals = []
    for max_records in (length, 2 * length):
        trace = registry.make_trace(ORACLE_WORKLOAD, length=2 * length, seed=seed)
        result = system.SystemSimulator(config, [trace], seed=seed).run(
            max_records, warmup=length // 4
        )
        totals.append({name: result.stats.get(name, 0) for name in _MONOTONE_STATS})
    short, long_run = totals
    regressed = [
        "%s: %s -> %s" % (name, short[name], long_run[name])
        for name in _MONOTONE_STATS
        if long_run[name] < short[name]
    ]
    if regressed:
        return OracleResult(
            "length_monotonicity",
            False,
            "counts decreased with a longer run: %s" % "; ".join(regressed),
        )
    return OracleResult(
        "length_monotonicity",
        True,
        "%d -> %d records kept all %d counters non-decreasing"
        % (length, 2 * length, len(_MONOTONE_STATS)),
    )


def oracle_online_audit(length: int, seed: int) -> OracleResult:
    """Baseline and TEMPO runs under ``--check-invariants full``
    complete with zero violations."""
    runner = _load("repro.sim.runner")
    errors = _load("repro.common.errors")
    config_mod = _load("repro.common.config")
    checkpoints = 0
    for tempo in (False, True):
        config = config_mod.default_system_config().with_tempo(tempo)
        try:
            result = runner.run_workload(
                ORACLE_WORKLOAD,
                config=config,
                length=length,
                seed=seed,
                check_invariants="full",
            )
        except errors.InvariantViolation as violation:
            return OracleResult(
                "online_audit",
                False,
                "tempo=%s run violated an invariant: %s" % (tempo, violation),
            )
        audit = result.manifest.audit or {}
        if audit.get("violations", 0):
            return OracleResult(
                "online_audit",
                False,
                "tempo=%s run recorded %d violations" % (tempo, audit["violations"]),
            )
        checkpoints += int(audit.get("checkpoints", 0))
    return OracleResult(
        "online_audit",
        True,
        "baseline + TEMPO passed %d full-audit checkpoints" % checkpoints,
    )


#: Workloads the batch-kernel oracle cross-checks: pointer chasing
#: (irregular, walk-heavy), table lookups (mixed), and a blocked small
#: workload (regular-run heavy) -- together they cover every kernel
#: path: bulk runs, inline TLB-hit heads, and event-engine fallback.
_BATCH_ORACLE_WORKLOADS = ("btree", "xsbench", "bzip2_small")


def oracle_batch_engine_equivalence(length: int, seed: int) -> OracleResult:
    """The batch kernel is a pure optimisation: routing a run through
    ``--kernel batch`` must not change one bit of the statistics, on
    any workload, and two batch runs must agree with each other."""
    registry = _load("repro.workloads.registry")
    system = _load("repro.sim.system")
    config = _load("repro.common.config").default_system_config().with_tempo(True)

    def run(workload: str, kernel: str) -> Dict[str, Any]:
        trace = registry.make_trace(workload, length=length, seed=seed)
        result = system.SystemSimulator(
            config, [trace], seed=seed, kernel=kernel
        ).run()
        return _comparable(result.stats)

    checked = 0
    for workload in _BATCH_ORACLE_WORKLOADS:
        scalar = run(workload, "scalar")
        batch = run(workload, "batch")
        if scalar != batch:
            return OracleResult(
                "batch_engine_equivalence",
                False,
                "%s: batch kernel diverges from scalar engine: %s"
                % (workload, _diff_keys(scalar, batch)),
            )
        checked += len(scalar)
    again = run(_BATCH_ORACLE_WORKLOADS[0], "batch")
    first = run(_BATCH_ORACLE_WORKLOADS[0], "batch")
    if again != first:
        return OracleResult(
            "batch_engine_equivalence",
            False,
            "batch kernel is non-deterministic on %s: %s"
            % (_BATCH_ORACLE_WORKLOADS[0], _diff_keys(again, first)),
        )
    return OracleResult(
        "batch_engine_equivalence",
        True,
        "batch and scalar kernels agree on %d stats across %d workloads"
        % (checked, len(_BATCH_ORACLE_WORKLOADS)),
    )


#: All oracles in execution order.
ALL_ORACLES = (
    oracle_fast_engine_equivalence,
    oracle_determinism,
    oracle_tempo_replay_reduction,
    oracle_length_monotonicity,
    oracle_online_audit,
    oracle_batch_engine_equivalence,
)


def run_verification(
    out: Optional[Callable[[str], None]] = None,
    quick: bool = False,
    length: Optional[int] = None,
    seed: int = 0,
) -> List[OracleResult]:
    """Run every oracle; returns the results (CLI exits non-zero when
    any failed).  *quick* shrinks the runs for CI smoke use."""
    if length is None:
        length = 1200 if quick else 4000
    results: List[OracleResult] = []
    for oracle in ALL_ORACLES:
        result = oracle(length, seed)
        results.append(result)
        if out is not None:
            out("%s %s: %s" % ("PASS" if result.passed else "FAIL", result.name, result.detail))
    return results
