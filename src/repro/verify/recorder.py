"""The flight recorder: a bounded ring buffer of recent machine events.

When an invariant audit fails (or any :class:`~repro.common.errors.
ReproError` escapes ``SystemSimulator.run``), the question is never just
"what broke" but "what was the simulator doing".  The recorder keeps the
last N reference/walk/DRAM events -- cheap dicts in a ``deque`` -- and
:meth:`FlightRecorder.dump` turns them into the structured context that
lands in the crash report (JSON on stderr) and the run manifest.

The recorder only exists when ``--check-invariants`` is on; with it off
the hot loops pay the same single ``is None`` test the tracer does.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List

from repro.common.errors import ConfigError

#: Default ring capacity: enough to cover several walks' worth of
#: events either side of a violation without bloating crash reports.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring buffer of recent simulation events."""

    __slots__ = ("capacity", "recorded", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigError(
                "flight recorder capacity must be >= 1",
                context={"capacity": capacity},
            )
        self.capacity = capacity
        #: Total events ever recorded (the ring keeps only the tail).
        self.recorded = 0
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def record(self, event: str, **fields: Any) -> None:
        """Append one event; the oldest event falls off when full.

        *event* names the event type (``ref``/``walk``/``dram``); the
        keyword fields are free-form and land in the dump verbatim.
        """
        entry: Dict[str, Any] = {"event": event}
        entry.update(fields)
        self._events.append(entry)
        self.recorded += 1

    @property
    def dropped(self) -> int:
        """Events that have already fallen off the ring."""
        return self.recorded - len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def dump(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot: ring stats + retained events."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": self.events(),
        }

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return "FlightRecorder(%d/%d events, %d total)" % (
            len(self._events),
            self.capacity,
            self.recorded,
        )
