"""Unit tests for the x86-64 address arithmetic."""

import pytest

from repro.common import addressing
from repro.common.constants import (
    CACHE_LINE_BYTES,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PT_ENTRIES,
    PTE_BYTES,
)
from repro.common.errors import ConfigError


def test_canonical_masks_to_48_bits():
    assert addressing.canonical(1 << 60) == 0
    assert addressing.canonical((1 << 48) - 1) == (1 << 48) - 1


def test_page_base_and_offset_4k():
    vaddr = 0x1234_5678
    assert addressing.page_base(vaddr) == 0x1234_5000
    assert addressing.page_offset(vaddr) == 0x678
    assert addressing.page_base(vaddr) + addressing.page_offset(vaddr) == vaddr


@pytest.mark.parametrize("page_size", [PAGE_SIZE_4K, PAGE_SIZE_2M, PAGE_SIZE_1G])
def test_page_number_roundtrip(page_size):
    vaddr = 0x7FFF_DEAD_B000
    number = addressing.page_number(vaddr, page_size)
    assert addressing.page_address(number, page_size) == addressing.page_base(
        vaddr, page_size
    )


def test_radix_indices_cover_disjoint_bits():
    # Set exactly one radix index at a time and check the others are 0.
    for level in (1, 2, 3, 4):
        shift = 12 + 9 * (level - 1)
        vaddr = 0x1AB << shift
        indices = {lvl: addressing.radix_index(vaddr, lvl) for lvl in (1, 2, 3, 4)}
        assert indices[level] == 0x1AB
        for other, value in indices.items():
            if other != level:
                assert value == 0


def test_radix_index_rejects_bad_level():
    with pytest.raises(ConfigError):
        addressing.radix_index(0x1000, 5)
    with pytest.raises(ConfigError):
        addressing.radix_index(0x1000, 0)


def test_radix_indices_tuple_order_is_l4_to_l1():
    vaddr = 0xFFFF_FFFF_F000 & ((1 << 48) - 1)
    assert addressing.radix_indices(vaddr) == tuple(
        addressing.radix_index(vaddr, level) for level in (4, 3, 2, 1)
    )


def test_pte_address_concatenation():
    base = 0x40000
    assert addressing.pte_address(base, 0) == base
    assert addressing.pte_address(base, 5) == base + 5 * PTE_BYTES
    assert addressing.pte_address(base, PT_ENTRIES - 1) == base + (PT_ENTRIES - 1) * 8


def test_pte_address_rejects_out_of_range_index():
    with pytest.raises(ConfigError):
        addressing.pte_address(0x40000, PT_ENTRIES)
    with pytest.raises(ConfigError):
        addressing.pte_address(0x40000, -1)


def test_cache_line_helpers():
    addr = 0x1_0047
    assert addressing.cache_line_base(addr) == 0x1_0040
    assert addressing.cache_line_id(addr) == 0x1_0040 // CACHE_LINE_BYTES


def test_line_index_in_page_4k_is_6_bits():
    # 64 lines per 4 KB page: the quantity TEMPO's walker appends.
    assert addressing.line_index_in_page(0x5000) == 0
    assert addressing.line_index_in_page(0x5040) == 1
    assert addressing.line_index_in_page(0x5FFF) == 63


def test_line_index_in_page_2m():
    vaddr = PAGE_SIZE_2M + 3 * CACHE_LINE_BYTES
    assert addressing.line_index_in_page(vaddr, PAGE_SIZE_2M) == 3
    # Last line of a 2 MB page.
    vaddr = 2 * PAGE_SIZE_2M - 1
    assert addressing.line_index_in_page(vaddr, PAGE_SIZE_2M) == PAGE_SIZE_2M // 64 - 1


def test_replay_address_reconstruction():
    """The prefetch engine's concatenation must invert the walker's
    line-index extraction (the paper's 0x2001 example)."""
    frame = 0x2000  # P2 for 4 KB pages
    vaddr = 0x2001  # cache line 0 of virtual page 2
    line = addressing.line_index_in_page(vaddr)
    assert addressing.replay_address(frame, line) == 0x2000
    vaddr = 0x2041  # cache line 1
    line = addressing.line_index_in_page(vaddr)
    assert addressing.replay_address(frame, line) == 0x2040


def test_replay_address_matches_translate_line():
    frame = 0xABC00000
    for offset in (0, 64, 4032, 4095):
        vaddr = 0x7000 + offset
        line = addressing.line_index_in_page(vaddr)
        expected_line_base = addressing.cache_line_base(
            addressing.translate(vaddr, frame)
        )
        assert addressing.replay_address(frame, line) == expected_line_base


def test_translate_combines_frame_and_offset():
    assert addressing.translate(0x1234_5678, 0xFF00_0000) == 0xFF00_0678


def test_split_vaddr():
    vpn, offset = addressing.split_vaddr(0x12345678)
    assert vpn == 0x12345
    assert offset == 0x678
