"""Tests for superpage allocation policies."""

import pytest

from repro.common.config import VmConfig
from repro.common.constants import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.errors import ConfigError
from repro.vm.address_space import Region
from repro.vm.superpage import (
    BasePagePolicy,
    HugetlbfsPolicy,
    ThpPolicy,
    make_policy,
)

GB = 1024 * 1024 * 1024


def _region(size=4 * GB, base=0x40000000, eligibility=1.0):
    return Region(base, size, "r", thp_eligibility=eligibility)


def test_base_policy_always_4k(allocator):
    policy = BasePagePolicy(allocator)
    vbase, frame, size = policy.choose_mapping(_region(), 0x40001234)
    assert size == PAGE_SIZE_4K
    assert vbase == 0x40001000
    assert frame % PAGE_SIZE_4K == 0


def test_thp_promotes_aligned_chunk(allocator):
    policy = ThpPolicy(allocator)
    vbase, frame, size = policy.choose_mapping(_region(), 0x40001234)
    assert size == PAGE_SIZE_2M
    assert vbase == 0x40000000
    assert frame % PAGE_SIZE_2M == 0


def test_thp_falls_back_when_chunk_exceeds_region(allocator):
    policy = ThpPolicy(allocator)
    # A one-page region cannot host a 2 MB chunk.
    region = Region(0x40000000, PAGE_SIZE_4K, "tiny")
    _, _, size = policy.choose_mapping(region, 0x40000010)
    assert size == PAGE_SIZE_4K


def test_thp_respects_allow_superpages_flag(allocator):
    policy = ThpPolicy(allocator)
    region = Region(0x40000000, 4 * GB, "r", allow_superpages=False)
    _, _, size = policy.choose_mapping(region, 0x40001234)
    assert size == PAGE_SIZE_4K


def test_thp_eligibility_zero_means_all_4k(allocator):
    policy = ThpPolicy(allocator)
    region = _region(eligibility=0.0)
    sizes = {
        policy.choose_mapping(region, region.base + i * PAGE_SIZE_2M + 5)[2]
        for i in range(32)
    }
    assert sizes == {PAGE_SIZE_4K}


def test_thp_eligibility_partial_is_deterministic(allocator):
    region = _region(eligibility=0.5)
    draws_a = [region.chunk_eligible(region.base + i * PAGE_SIZE_2M) for i in range(64)]
    draws_b = [region.chunk_eligible(region.base + i * PAGE_SIZE_2M) for i in range(64)]
    assert draws_a == draws_b
    assert 10 < sum(draws_a) < 54  # roughly half


def test_thp_falls_back_under_full_fragmentation(allocator):
    allocator.apply_memhog(0.99)
    policy = ThpPolicy(allocator)
    sizes = {policy.choose_mapping(_region(), 0x40000000 + i * PAGE_SIZE_2M)[2]
             for i in range(20)}
    assert PAGE_SIZE_4K in sizes


def test_hugetlbfs_2m_uses_reserved_pool(allocator):
    policy = HugetlbfsPolicy(allocator, PAGE_SIZE_2M, pool_pages=4)
    assert policy.pool_remaining == 4
    _, _, size = policy.choose_mapping(_region(), 0x40001234)
    assert size == PAGE_SIZE_2M
    assert policy.pool_remaining == 3


def test_hugetlbfs_falls_back_when_pool_empty(allocator):
    policy = HugetlbfsPolicy(allocator, PAGE_SIZE_2M, pool_pages=1)
    policy.choose_mapping(_region(), 0x40000010)
    _, _, size = policy.choose_mapping(_region(), 0x40200010)
    assert size == PAGE_SIZE_4K


def test_hugetlbfs_1g(allocator):
    policy = HugetlbfsPolicy(allocator, PAGE_SIZE_1G, pool_pages=2)
    region = Region(PAGE_SIZE_1G, 4 * GB, "big")
    vbase, frame, size = policy.choose_mapping(region, PAGE_SIZE_1G + 12345)
    assert size == PAGE_SIZE_1G
    assert vbase == PAGE_SIZE_1G
    assert frame % PAGE_SIZE_1G == 0


def test_hugetlbfs_rejects_4k(allocator):
    with pytest.raises(ConfigError):
        HugetlbfsPolicy(allocator, PAGE_SIZE_4K, pool_pages=1)


def test_hugetlbfs_survives_memhog_after_reservation(allocator):
    policy = HugetlbfsPolicy(allocator, PAGE_SIZE_2M, pool_pages=8)
    allocator.apply_memhog(0.75)
    _, _, size = policy.choose_mapping(_region(), 0x40000010)
    assert size == PAGE_SIZE_2M  # reservations predate fragmentation


def test_make_policy_dispatch(allocator):
    assert isinstance(make_policy(VmConfig(thp_enabled=False), allocator), BasePagePolicy)
    assert isinstance(make_policy(VmConfig(thp_enabled=True), allocator), ThpPolicy)
    policy = make_policy(VmConfig(hugetlbfs_2m=True), allocator, 16 * PAGE_SIZE_2M)
    assert isinstance(policy, HugetlbfsPolicy)
    assert policy.page_size == PAGE_SIZE_2M


def test_make_policy_hugetlbfs_overrides_thp(allocator):
    config = VmConfig(thp_enabled=True, hugetlbfs_1g=True)
    policy = make_policy(config, allocator, PAGE_SIZE_1G)
    assert isinstance(policy, HugetlbfsPolicy)
    assert policy.page_size == PAGE_SIZE_1G
