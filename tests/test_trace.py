"""Tests for traces and the virtual-layout contract."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.trace import RegionSpec, Trace, TraceRecord, plan_virtual_layout
from repro.vm.address_space import REGION_SPACE_BASE

GB = 1024 * 1024 * 1024
MB = 1024 * 1024


def test_layout_starts_at_region_space_base():
    assert plan_virtual_layout([64 * MB])[0] == REGION_SPACE_BASE


def test_layout_regions_disjoint_with_guard():
    sizes = [64 * MB, 3 * GB + 5, 1, 900 * GB]
    bases = plan_virtual_layout(sizes)
    for (base, size), next_base in zip(zip(bases, sizes), bases[1:]):
        assert next_base >= base + size + GB
        assert next_base % GB == 0


def test_layout_rejects_empty_region():
    with pytest.raises(SimulationError):
        plan_virtual_layout([0])


def test_layout_matches_address_space(allocator):
    """The contract: generator layout == AddressSpace layout."""
    from repro.vm.address_space import AddressSpace
    from repro.vm.superpage import BasePagePolicy

    sizes = [64 * MB, 7 * GB, 3 * MB]
    planned = plan_virtual_layout(sizes)
    space = AddressSpace(allocator, BasePagePolicy(allocator))
    actual = [space.allocate_region(size, "r%d" % i).base for i, size in enumerate(sizes)]
    assert planned == actual


def _trace(records, regions=None):
    if regions is None:
        regions = [RegionSpec("r", 64 * MB, REGION_SPACE_BASE)]
    return Trace("t", records, regions)


def test_validate_accepts_contained_trace():
    records = [TraceRecord(REGION_SPACE_BASE + 100)]
    assert _trace(records).validate() is not None


def test_validate_rejects_out_of_region():
    records = [TraceRecord(0x1000)]
    with pytest.raises(SimulationError):
        _trace(records).validate()


def test_footprint_defaults_to_region_sum():
    trace = _trace([])
    assert trace.footprint_bytes == 64 * MB


def test_next_same_pattern_links_streams():
    records = [
        TraceRecord(REGION_SPACE_BASE, pattern="a"),
        TraceRecord(REGION_SPACE_BASE + 64),          # unlabeled
        TraceRecord(REGION_SPACE_BASE + 128, pattern="b"),
        TraceRecord(REGION_SPACE_BASE + 192, pattern="a"),
        TraceRecord(REGION_SPACE_BASE + 256, pattern="b"),
    ]
    trace = _trace(records)
    assert trace.next_same_pattern() == [3, -1, 4, -1, -1]


def test_next_same_pattern_cached():
    trace = _trace([TraceRecord(REGION_SPACE_BASE, pattern="a")])
    assert trace.next_same_pattern() is trace.next_same_pattern()


def test_len_and_iter():
    records = [TraceRecord(REGION_SPACE_BASE + i * 64) for i in range(5)]
    trace = _trace(records)
    assert len(trace) == 5
    assert list(trace) == records
