"""Tests for the IMP indirect-memory prefetcher model."""

import pytest

from repro.common.config import ImpConfig
from repro.cache.imp import PREFETCH_DEGREE, TRAIN_THRESHOLD, ImpPrefetcher


def _upcoming(position, count=8, stride=0x1000):
    return [(position + 1 + i, 0x100000 + i * stride) for i in range(count)]


@pytest.fixture
def imp():
    return ImpPrefetcher(ImpConfig(enabled=True))


def test_unlabeled_accesses_never_train(imp):
    for position in range(50):
        assert imp.observe(None, position, _upcoming(position)) == []
    assert imp.trained_streams == 0


def test_training_threshold(imp):
    position = 0
    for position in range(TRAIN_THRESHOLD - 1):
        assert imp.observe("s", position, _upcoming(position)) == []
    targets = imp.observe("s", TRAIN_THRESHOLD - 1, _upcoming(TRAIN_THRESHOLD - 1))
    assert targets  # trained on the threshold-th observation
    assert imp.trained_streams == 1


def _train(imp, pattern, start=0):
    position = start
    for offset in range(TRAIN_THRESHOLD):
        position = start + offset
        imp.observe(pattern, position, _upcoming(position))
    return position


def test_prefetch_degree_limits_targets(imp):
    last = _train(imp, "s")
    targets = imp.observe("s", last + 1, _upcoming(last + 1))
    assert len(targets) <= PREFETCH_DEGREE


def test_no_repeat_prefetch_of_same_index(imp):
    last = _train(imp, "s")
    upcoming = _upcoming(last + 1)
    first = imp.observe("s", last + 1, upcoming)
    second = imp.observe("s", last + 1, upcoming)
    assert first
    assert not set(first) & set(second)


def test_distance_window_enforced(imp):
    last = _train(imp, "s")
    config = ImpConfig(enabled=True)
    far = [(last + config.max_prefetch_distance + 50, 0xDEAD000)]
    assert imp.observe("s", last + 1, far) == []


def test_ipd_capacity_evicts_oldest(imp):
    config = ImpConfig(enabled=True)
    # Touch more streams than the IPD holds, once each.
    for index in range(config.indirect_pattern_detector_entries + 2):
        imp.observe("stream%d" % index, index, _upcoming(index))
    assert imp.stats.counter("ipd_evictions").value == 2


def test_prefetch_table_capacity(imp):
    config = ImpConfig(enabled=True)
    # Train more streams than the table holds.
    base = 0
    for index in range(config.prefetch_table_entries + 3):
        _train(imp, "t%d" % index, start=base)
        base += TRAIN_THRESHOLD
    assert imp.trained_streams <= config.prefetch_table_entries
    assert imp.stats.counter("table_evictions").value >= 3


def test_empty_upcoming_is_fine(imp):
    last = _train(imp, "s")
    assert imp.observe("s", last + 1, []) == []


def test_issued_counter(imp):
    last = _train(imp, "s")
    imp.observe("s", last + 1, _upcoming(last + 1))
    assert imp.stats.counter("prefetches_issued").value >= 1
