"""Tests for the page-walk (MMU) caches."""

import pytest

from repro.common.config import MmuCacheConfig
from repro.mmu.mmu_cache import MmuCaches


@pytest.fixture
def caches():
    return MmuCaches(MmuCacheConfig(entries_per_level=8, assoc=2))


def test_miss_then_insert_then_hit(caches):
    assert not caches.lookup(4, 0x4000, is_leaf=False)
    caches.insert(4, 0x4000, is_leaf=False)
    assert caches.lookup(4, 0x4000, is_leaf=False)


def test_levels_are_independent(caches):
    caches.insert(4, 0x4000, is_leaf=False)
    assert not caches.lookup(3, 0x4000, is_leaf=False)
    assert not caches.lookup(2, 0x4000, is_leaf=False)


def test_leaf_entries_never_cached(caches):
    caches.insert(2, 0x4000, is_leaf=True)  # a 2 MB leaf at L2
    assert not caches.lookup(2, 0x4000, is_leaf=True)
    # Even if a non-leaf insert happened, a leaf lookup must not hit:
    caches.insert(2, 0x4000, is_leaf=False)
    assert not caches.lookup(2, 0x4000, is_leaf=True)


def test_l1_level_never_cached(caches):
    caches.insert(1, 0x4000, is_leaf=False)
    assert not caches.lookup(1, 0x4000, is_leaf=False)


def test_capacity_bounded_lru(caches):
    # 8 entries, 2-way, 4 sets: insert many conflicting entries.
    entries = [0x4000 + i * 4 * 8 for i in range(10)]  # same set (stride 4 sets * 8B)
    for entry in entries:
        caches.insert(4, entry, is_leaf=False)
    hits = sum(caches.lookup(4, entry, is_leaf=False) for entry in entries)
    assert hits <= 2  # at most one set's worth survive


def test_lru_refresh_on_hit(caches):
    stride = 4 * 8  # same-set stride
    first, second, third = 0x4000, 0x4000 + stride, 0x4000 + 2 * stride
    caches.insert(4, first, is_leaf=False)
    caches.insert(4, second, is_leaf=False)
    caches.lookup(4, first, is_leaf=False)  # refresh -> second becomes LRU
    caches.insert(4, third, is_leaf=False)
    assert caches.lookup(4, first, is_leaf=False)
    assert not caches.lookup(4, second, is_leaf=False)


def test_flush(caches):
    caches.insert(4, 0x4000, is_leaf=False)
    caches.flush()
    assert not caches.lookup(4, 0x4000, is_leaf=False)


def test_hit_rate(caches):
    caches.lookup(4, 0x4000, is_leaf=False)
    caches.insert(4, 0x4000, is_leaf=False)
    caches.lookup(4, 0x4000, is_leaf=False)
    assert caches.hit_rate() == pytest.approx(0.5)
