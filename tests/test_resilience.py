"""Fault-tolerance tests: retries, timeouts, crashes, quarantine, resume.

The contract under test extends test_exec's: not only must every
execution path produce bit-identical results, every *failure* path must
too.  A worker killed mid-cell, a cell that times out and retries, a
corrupted cache entry, or a sweep aborted at a checkpoint and resumed --
none of it may change a single bit of the final stats (wall-clock
``manifest.timing.*`` excluded, as everywhere).

Faults are injected deterministically through
:class:`repro.exec.FaultPlan` / :class:`repro.exec.FaultSpec`
(``docs/resilience.md``), so these tests exercise the real process
isolation, kill, and resume machinery without any flakiness.
"""

import json
import os

import pytest

from repro.common.config import default_system_config
from repro.exec import (
    CellExecutionError,
    CheckpointStore,
    ExperimentExecutor,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    PAYLOAD_SCHEMA,
    ResiliencePolicy,
    ResultCache,
    SimCell,
    SweepAborted,
    missing_cell_payload,
    payload_to_result,
)

LENGTH = 600


def _cells(count=4):
    config = default_system_config()
    return [SimCell("xsbench", config, LENGTH, seed=seed) for seed in range(count)]


def _comparable_stats(result):
    return {
        key: value
        for key, value in result.stats.items()
        if not key.startswith("manifest.timing")
    }


def _slot_dict(obj):
    return {name: getattr(obj, name) for name in type(obj).__slots__}


def _assert_identical(expected, actual):
    assert actual.total_cycles == expected.total_cycles
    assert actual.energy_total == expected.energy_total
    assert actual.superpage_fraction == expected.superpage_fraction
    for mine, theirs in zip(expected.cores, actual.cores):
        assert theirs.workload_name == mine.workload_name
        assert theirs.references == mine.references
        assert _slot_dict(theirs.runtime) == _slot_dict(mine.runtime)
        assert _slot_dict(theirs.dram_refs) == _slot_dict(mine.dram_refs)
        assert _slot_dict(theirs.replay_service) == _slot_dict(mine.replay_service)
    assert _comparable_stats(actual) == _comparable_stats(expected)


@pytest.fixture(scope="module")
def clean_results():
    """The fault-free reference: four cells, serial, uncached."""
    return ExperimentExecutor().run_cells(_cells())


# ----------------------------------------------------------------------
# Retries: in-process faults and crashed workers
# ----------------------------------------------------------------------


def test_inline_injected_fault_retries_to_identical_result(tmp_path, clean_results):
    cells = _cells()
    plan = FaultPlan(fail={cells[1].key(): (0,), cells[3].key(): (0,)})
    executor = ExperimentExecutor(cache=ResultCache(str(tmp_path)), faults=plan)
    results = executor.run_cells(cells)
    assert executor.counters["retries"] == 2
    assert executor.counters["simulated"] == 4
    assert not executor.failed_cells
    for expected, actual in zip(clean_results, results):
        _assert_identical(expected, actual)


def test_worker_crash_mid_batch_requeues_on_fresh_worker(tmp_path, clean_results):
    """A kill fault ``os._exit``s the worker mid-cell; the scheduler must
    detect the dead process and re-run the cell, not hang the batch."""
    cells = _cells()
    plan = FaultPlan(kill={cells[0].key(): (0,), cells[2].key(): (0,)})
    executor = ExperimentExecutor(
        jobs=2, cache=ResultCache(str(tmp_path)), faults=plan
    )
    results = executor.run_cells(cells)
    assert executor.counters["crashes"] == 2
    assert executor.counters["retries"] == 2
    for expected, actual in zip(clean_results, results):
        _assert_identical(expected, actual)


def test_cell_timeout_kills_then_succeeds_on_retry(tmp_path, clean_results):
    """A delayed cell exceeds its timeout, is killed, and succeeds on the
    retry (injected faults fire on attempt 0 only)."""
    cells = _cells(2)
    plan = FaultPlan(delay={cells[1].key(): ((0, 30.0),)})
    executor = ExperimentExecutor(
        jobs=2,
        cache=ResultCache(str(tmp_path)),
        faults=plan,
        resilience=ResiliencePolicy(max_retries=2, cell_timeout=5.0),
    )
    results = executor.run_cells(cells)
    assert executor.counters["timeouts"] == 1
    assert executor.counters["retries"] == 1
    for expected, actual in zip(clean_results[:2], results):
        _assert_identical(expected, actual)


# ----------------------------------------------------------------------
# Retries exhausted: abort vs graceful degradation
# ----------------------------------------------------------------------


def test_exhausted_retries_raise_without_allow_partial(tmp_path):
    cells = _cells(2)
    plan = FaultPlan(fail={cells[0].key(): (0, 1)})
    executor = ExperimentExecutor(
        cache=ResultCache(str(tmp_path)),
        faults=plan,
        resilience=ResiliencePolicy(max_retries=1),
    )
    with pytest.raises(CellExecutionError) as excinfo:
        executor.run_cells(cells)
    assert len(excinfo.value.failures) == 1
    assert excinfo.value.failures[0].workloads == "xsbench"
    # The healthy cell still completed and was cached before the raise.
    assert executor.counters["simulated"] == 1


def test_allow_partial_degrades_to_marked_missing_cells(tmp_path, clean_results):
    cells = _cells(2)
    plan = FaultPlan(fail={cells[0].key(): (0, 1)})
    executor = ExperimentExecutor(
        cache=ResultCache(str(tmp_path)),
        faults=plan,
        resilience=ResiliencePolicy(max_retries=1, allow_partial=True),
    )
    results = executor.run_cells(cells)
    assert executor.counters["failed"] == 1
    assert len(executor.failed_cells) == 1
    assert executor.failed_cells[0].key == cells[0].key()
    # The missing cell is explicit zeros with the marker stat...
    assert results[0].stats["missing_cell"] == 1
    assert results[0].total_cycles == 0
    # ...the healthy one is untouched...
    _assert_identical(clean_results[1], results[1])
    # ...and the placeholder was never cached: a later run re-simulates.
    retry = ExperimentExecutor(cache=ResultCache(str(tmp_path)))
    fresh = retry.run_cells(cells)
    assert retry.counters["simulated"] == 1
    assert retry.counters["cache_hits"] == 1
    _assert_identical(clean_results[0], fresh[0])


def test_missing_cell_payload_is_schema_correct():
    cell = SimCell("xsbench", default_system_config(), LENGTH)
    payload = missing_cell_payload(cell)
    assert payload["schema"] == PAYLOAD_SCHEMA
    result = payload_to_result(json.loads(json.dumps(payload)))
    assert result.stats["missing_cell"] == 1
    assert result.core.runtime.fraction("ptw") == 0.0
    assert result.core.replay_service.fraction("llc") == 0.0


# ----------------------------------------------------------------------
# Quarantine: bad cache entries are moved aside, never deleted
# ----------------------------------------------------------------------


def test_corrupt_entry_is_quarantined_and_resimulated(tmp_path, clean_results):
    cache = ResultCache(str(tmp_path))
    cells = _cells(1)
    seeded = ExperimentExecutor(cache=cache)
    seeded.run_cells(cells)

    path = cache.result_path(cells[0].key())
    with open(path, "w") as stream:
        stream.write("{ torn write")

    executor = ExperimentExecutor(cache=cache)
    results = executor.run_cells(cells)
    assert executor.counters["quarantined"] == 1
    assert executor.counters["simulated"] == 1
    assert executor.counters["cache_hits"] == 0
    _assert_identical(clean_results[0], results[0])
    # The bad entry was preserved, not deleted.
    quarantine_dir = os.path.join(str(tmp_path), "quarantine")
    quarantined = [
        name
        for _, _, names in os.walk(quarantine_dir)
        for name in names
    ]
    assert len(quarantined) == 1
    assert "corrupt" in quarantined[0]


def test_stale_schema_entry_is_quarantined(tmp_path):
    cache = ResultCache(str(tmp_path))
    cells = _cells(1)
    ExperimentExecutor(cache=cache).run_cells(cells)

    path = cache.result_path(cells[0].key())
    with open(path) as stream:
        payload = json.load(stream)
    payload["schema"] = PAYLOAD_SCHEMA + 1
    with open(path, "w") as stream:
        json.dump(payload, stream)

    executor = ExperimentExecutor(cache=cache)
    executor.run_cells(cells)
    assert executor.counters["quarantined"] == 1
    assert executor.counters["simulated"] == 1
    quarantined = [
        name
        for _, _, names in os.walk(os.path.join(str(tmp_path), "quarantine"))
        for name in names
    ]
    assert quarantined and "stale" in quarantined[0]


def test_fault_plan_corruption_feeds_quarantine(tmp_path):
    """The harness's ``corrupt`` fault garbles real entries in place and
    the next resolution quarantines and re-simulates them."""
    cache = ResultCache(str(tmp_path))
    cells = _cells(2)
    ExperimentExecutor(cache=cache).run_cells(cells)

    plan = FaultPlan(corrupt=(cells[0].key(),))
    executor = ExperimentExecutor(cache=cache, faults=plan)
    executor.run_cells(cells)
    assert executor.counters["quarantined"] == 1
    assert executor.counters["simulated"] == 1
    assert executor.counters["cache_hits"] == 1


# ----------------------------------------------------------------------
# Checkpoint/resume: killed mid-run, zero re-simulation
# ----------------------------------------------------------------------


def test_kill_at_checkpoint_then_resume_is_bit_identical(tmp_path, clean_results):
    """The acceptance scenario: a sweep aborted mid-run and resumed must
    produce bit-identical results with zero re-simulated cells."""
    cache_root = str(tmp_path)
    cells = _cells()
    keys = [cell.key() for cell in cells]

    aborted = ExperimentExecutor(
        jobs=2, cache=ResultCache(cache_root), faults=FaultPlan(abort_after=2)
    )
    with pytest.raises(SweepAborted):
        aborted.run_cells(cells)
    # The journal shows exactly the completed prefix.
    journal = CheckpointStore.for_batch(cache_root, keys)
    assert len(journal.done_keys()) == 2

    resumed = ExperimentExecutor(jobs=2, cache=ResultCache(cache_root), resume=True)
    results = resumed.run_cells(cells)
    # Zero re-simulation of completed cells: 2 resumed from the journal,
    # only the 2 interrupted ones simulated.
    assert resumed.counters["resumed"] == 2
    assert resumed.counters["cache_hits"] == 2
    assert resumed.counters["simulated"] == 2
    for expected, actual in zip(clean_results, results):
        _assert_identical(expected, actual)
    # And the journal now records the whole batch as done.
    assert journal.done_keys() == set(keys)


def test_non_resume_run_discards_stale_journal(tmp_path):
    cache_root = str(tmp_path)
    cells = _cells(2)
    keys = [cell.key() for cell in cells]
    journal = CheckpointStore.for_batch(cache_root, keys)
    journal.record(keys[0], "done")
    journal.close()

    executor = ExperimentExecutor(cache=ResultCache(cache_root))
    executor.run_cells(cells)
    # Without --resume the journal was reset: nothing counts as resumed.
    assert executor.counters["resumed"] == 0
    assert executor.counters["simulated"] == 2


def test_checkpoint_store_replay_semantics(tmp_path):
    journal = CheckpointStore.for_batch(str(tmp_path), ["k1", "k2"])
    journal.record("k1", "running", 0)
    journal.record("k1", "done", 0)
    journal.record("k2", "running", 0)
    journal.record("k2", "failed", 2, "boom")
    journal.close()
    # Last state wins.
    states = journal.states()
    assert states["k1"]["state"] == "done"
    assert states["k2"]["state"] == "failed"
    assert states["k2"]["info"] == "boom"
    assert journal.done_keys() == {"k1"}
    # A torn final line (killed writer) is tolerated.
    with open(journal.path, "a") as stream:
        stream.write('{"key": "k2", "state": "do')
    assert journal.done_keys() == {"k1"}
    # The journal address depends only on the key set, not its order.
    assert (
        CheckpointStore.for_batch(str(tmp_path), ["k2", "k1"]).path == journal.path
    )


# ----------------------------------------------------------------------
# The fault harness itself
# ----------------------------------------------------------------------


def test_fault_spec_parse_and_determinism():
    spec = FaultSpec.parse("seed=7,kill=0.5,fail=0.25,delay=0.5,delay-seconds=0.2")
    assert spec.seed == 7
    assert spec.kill_rate == 0.5
    assert spec.delay_seconds == 0.2
    keys = ["cell-%d" % index for index in range(32)]
    first = spec.materialize(keys)
    second = spec.materialize(list(reversed(keys)))
    # Same spec, same keys -> the same plan, regardless of order.
    assert first == second
    assert any(first.kill.values())
    with pytest.raises(ValueError):
        FaultSpec.parse("seed=1,unknown=2")


def test_fault_plan_inject_raises_on_schedule():
    plan = FaultPlan(fail={"k": (1,)}, delay={"k": ((0, 0.0),)})
    plan.inject("k", 0)  # nothing scheduled on attempt 0
    with pytest.raises(InjectedFault):
        plan.inject("k", 1)
