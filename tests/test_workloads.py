"""Tests for the workload generators and registry."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.base import TraceBuilder
from repro.workloads.registry import (
    BIGDATA_WORKLOADS,
    SMALL_WORKLOADS,
    get_workload,
    make_trace,
    workload_names,
)

PAPER_WORKLOADS = {"mcf", "canneal", "lsh", "spmv", "sgms", "graph500", "xsbench", "illustris"}


def test_registry_covers_paper_suite():
    assert {workload.name for workload in BIGDATA_WORKLOADS} == PAPER_WORKLOADS


def test_workload_names():
    assert set(workload_names(bigdata_only=True)) == PAPER_WORKLOADS
    assert len(workload_names()) == len(BIGDATA_WORKLOADS) + len(SMALL_WORKLOADS)


def test_unknown_workload_rejected():
    with pytest.raises(ConfigError):
        get_workload("dhrystone")


@pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
def test_bigdata_traces_valid_and_sized(name):
    trace = make_trace(name, length=1500, seed=1)
    assert len(trace) >= 1500
    trace.validate()  # every reference inside a declared region
    # Paper scale: hundreds of GB to TBs of (sparse) footprint.
    assert trace.footprint_bytes >= 256 * 1024**3


@pytest.mark.parametrize(
    "name", [workload.name for workload in SMALL_WORKLOADS]
)
def test_small_traces_valid_and_small(name):
    trace = make_trace(name, length=1000, seed=1)
    trace.validate()
    assert trace.footprint_bytes <= 256 * 1024**2


def test_traces_deterministic_by_seed():
    first = make_trace("xsbench", length=500, seed=3)
    second = make_trace("xsbench", length=500, seed=3)
    assert [(r.vaddr, r.is_write, r.gap, r.pattern) for r in first.records] == [
        (r.vaddr, r.is_write, r.gap, r.pattern) for r in second.records
    ]


def test_traces_differ_across_seeds():
    first = make_trace("xsbench", length=500, seed=3)
    second = make_trace("xsbench", length=500, seed=4)
    assert [r.vaddr for r in first.records] != [r.vaddr for r in second.records]


def test_indirect_workloads_carry_imp_patterns():
    for name in ("xsbench", "spmv", "graph500", "lsh", "sgms"):
        trace = make_trace(name, length=800, seed=0)
        assert any(record.pattern is not None for record in trace.records), name


def test_pointer_chasers_unlabeled():
    for name in ("mcf", "canneal", "illustris"):
        trace = make_trace(name, length=800, seed=0)
        assert all(record.pattern is None for record in trace.records), name


def test_workloads_include_writes():
    for name in ("canneal", "spmv", "sgms"):
        trace = make_trace(name, length=800, seed=0)
        assert any(record.is_write for record in trace.records), name


def test_builder_region_handles():
    builder = TraceBuilder("probe", seed=0)
    region = builder.region("r", 1024 * 1024 * 1024)
    assert region.at(region.size + 5) == region.base + 5  # wraps
    address = region.random(align=64)
    assert region.base <= address < region.base + region.size
    assert address % 64 == 0
    zipfed = region.zipf()
    assert region.base <= zipfed < region.base + region.size


def test_builder_clustered_stays_in_region():
    builder = TraceBuilder("probe", seed=0)
    region = builder.region("r", 8 * 1024 * 1024 * 1024)
    for _ in range(500):
        address = region.clustered(hot_chunks=64, tail=0.2)
        assert region.base <= address < region.base + region.size


def test_builder_clustered_hot_set_bounded():
    builder = TraceBuilder("probe", seed=0)
    region = builder.region("r", 64 * 1024 * 1024 * 1024)
    chunks = {
        region.clustered(hot_chunks=32, tail=0.0) >> 21 for _ in range(2000)
    }
    assert len(chunks) <= 32


def test_builder_rejects_empty_region():
    builder = TraceBuilder("probe", seed=0)
    with pytest.raises(ConfigError):
        builder.region("bad", 0)


def test_builder_gap_and_write_recorded():
    builder = TraceBuilder("probe", seed=0)
    region = builder.region("r", 1024 * 1024)
    builder.write(region.base + 64, gap=9, pattern="p")
    record = builder.build().records[0]
    assert record.is_write and record.gap == 9 and record.pattern == "p"
