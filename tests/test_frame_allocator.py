"""Tests for the physical frame allocator + fragmentation model."""

import pytest

from repro.common.constants import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.errors import AllocationError, ConfigError
from repro.common.rng import DeterministicRng
from repro.vm.frame_allocator import FrameAllocator


def _make(bytes_=1024 * 1024 * 1024, seed=1):
    return FrameAllocator(bytes_, DeterministicRng(seed, "alloc"))


def test_alloc_4k_returns_aligned_distinct_frames():
    allocator = _make()
    frames = [allocator.alloc_4k() for _ in range(1000)]
    assert len(set(frames)) == 1000
    assert all(frame % PAGE_SIZE_4K == 0 for frame in frames)


def test_alloc_4k_fills_region_before_opening_new():
    allocator = _make()
    frames = [allocator.alloc_4k() for _ in range(512)]
    # The first 512 4 KB frames fill exactly one 2 MB region.
    assert all(frame < PAGE_SIZE_2M for frame in frames)
    assert allocator.alloc_4k() >= PAGE_SIZE_2M


def test_alloc_2m_aligned():
    allocator = _make()
    frame = allocator.alloc_2m()
    assert frame % PAGE_SIZE_2M == 0


def test_alloc_2m_never_overlaps_4k_regions():
    allocator = _make()
    small = {allocator.alloc_4k() // PAGE_SIZE_2M for _ in range(600)}
    big = allocator.alloc_2m() // PAGE_SIZE_2M
    assert big not in small


def test_alloc_1g_aligned_and_disjoint():
    allocator = _make(8 * 1024 * 1024 * 1024)
    first = allocator.alloc_1g()
    second = allocator.alloc_1g()
    assert first % PAGE_SIZE_1G == 0
    assert second % PAGE_SIZE_1G == 0
    assert abs(second - first) >= PAGE_SIZE_1G


def test_free_4k_reuses_frame():
    allocator = _make()
    frame = allocator.alloc_4k()
    allocator.free_4k(frame)
    assert allocator.alloc_4k() == frame


def test_exhaustion_raises():
    allocator = _make(2 * PAGE_SIZE_2M)
    allocator.alloc_2m()
    allocator.alloc_2m()
    with pytest.raises(AllocationError):
        allocator.alloc_2m()
    assert allocator.try_alloc_2m() is None


def test_memhog_consumes_capacity():
    allocator = _make(4 * PAGE_SIZE_2M)
    allocator.apply_memhog(0.5)
    # Contiguity failures are probabilistic, but capacity is hard: at
    # most 2 of the 4 regions remain allocatable.
    successes = sum(1 for _ in range(200) if allocator.try_alloc_2m() is not None)
    assert successes <= 2
    assert allocator.try_alloc_2m() is None or successes < 2


def test_memhog_degrades_2m_contiguity():
    results = {}
    for fraction in (0.0, 0.5):
        allocator = _make(64 * 1024 * 1024 * 1024, seed=3)
        allocator.apply_memhog(fraction)
        successes = sum(
            1 for _ in range(2000) if allocator.try_alloc_2m() is not None
        )
        results[fraction] = successes
    assert results[0.0] == 2000
    # (1 - 0.5)**2 = 25% expected success.
    assert 350 < results[0.5] < 650


def test_memhog_blocks_fresh_1g_pages():
    allocator = _make(8 * 1024 * 1024 * 1024)
    allocator.apply_memhog(0.25)
    assert allocator.try_alloc_1g() is None


def test_reserve_pool_sizes_and_alignment():
    allocator = _make(4 * 1024 * 1024 * 1024)
    pool = allocator.reserve_pool(PAGE_SIZE_2M, 16)
    assert len(pool) == 16
    assert len(set(pool)) == 16
    assert all(frame % PAGE_SIZE_2M == 0 for frame in pool)


def test_reserve_pool_rejects_4k():
    with pytest.raises(ConfigError):
        _make().reserve_pool(PAGE_SIZE_4K, 4)


def test_memhog_rejects_bad_fraction():
    with pytest.raises(ConfigError):
        _make().apply_memhog(1.5)


def test_free_bytes_decreases_monotonically():
    allocator = _make()
    start = allocator.free_bytes
    allocator.alloc_4k()
    after_4k = allocator.free_bytes
    allocator.alloc_2m()
    after_2m = allocator.free_bytes
    assert start > after_4k > after_2m
    assert start - after_2m >= PAGE_SIZE_2M + PAGE_SIZE_4K


def test_rejects_tiny_memory():
    with pytest.raises(ConfigError):
        FrameAllocator(PAGE_SIZE_4K, DeterministicRng(0, "x"))
