"""Cache-key completeness, tested dynamically.

simlint's SL002 proves *statically* that every config field is a scalar
or a nested dataclass (and therefore lands in ``dataclasses.asdict``);
this suite proves the *runtime* half of the invariant: flipping any leaf
field anywhere in the config tree changes ``config_hash`` and the
executor cell key, so no tunable can silently alias two different
experiments onto one cached result.

The single documented exception is ``num_cores``: :class:`SimCell`
normalizes it to ``len(workloads)`` (a 4-core config running one trace
IS the 1-core run), so it changes the config hash but not the cell key.
"""

import dataclasses

import pytest

from repro.common.config import SystemConfig, default_system_config
from repro.exec.cells import SimCell, trace_key
from repro.obs.manifest import config_hash


def leaf_paths(config):
    """Every dotted path to a scalar leaf in the config tree."""
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value):
            for sub in leaf_paths(value):
                yield "%s.%s" % (field.name, sub)
        else:
            yield field.name


def flip(value):
    """A different-but-same-type value (bool before int: bool is int)."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    if isinstance(value, str):
        return value + "x"
    raise TypeError("non-scalar leaf %r; SL002 should have caught this" % (value,))


def flipped_at(config, path):
    """Copy of *config* with the leaf at dotted *path* flipped."""
    head, _, rest = path.partition(".")
    value = getattr(config, head)
    if rest:
        return dataclasses.replace(config, **{head: flipped_at(value, rest)})
    return dataclasses.replace(config, **{head: flip(value)})


BASE = default_system_config()
ALL_PATHS = sorted(leaf_paths(BASE))


def test_config_tree_is_nontrivial():
    # Sanity-check the walk itself: the tree has many leaves across
    # every sub-config, so the parametrized sweep below means something.
    assert len(ALL_PATHS) > 60
    assert any(path.startswith("tempo.") for path in ALL_PATHS)
    assert any(path.startswith("dram.subrows.") for path in ALL_PATHS)


@pytest.mark.parametrize("path", ALL_PATHS)
def test_every_leaf_field_feeds_config_hash(path):
    flipped = flipped_at(BASE, path)
    assert config_hash(flipped) != config_hash(BASE), (
        "flipping %s did not change config_hash" % path
    )


@pytest.mark.parametrize("path", ALL_PATHS)
def test_every_leaf_field_feeds_cell_key(path):
    base_key = SimCell("gups", BASE, length=100, seed=1).key()
    flipped_key = SimCell("gups", flipped_at(BASE, path), length=100, seed=1).key()
    if path == "num_cores":
        # The documented normalization: SimCell canonicalizes num_cores
        # to the workload count, so this flip must NOT split the cache.
        assert flipped_key == base_key
    else:
        assert flipped_key != base_key, (
            "flipping %s did not change the cell key" % path
        )


def test_trace_identity_feeds_cell_key():
    base = SimCell("gups", BASE, length=100, seed=1)
    assert SimCell("gups", BASE, length=101, seed=1).key() != base.key()
    assert SimCell("gups", BASE, length=100, seed=2).key() != base.key()
    assert SimCell("stream", BASE, length=100, seed=1).key() != base.key()
    assert SimCell(("gups", "stream"), BASE, length=100, seed=1).key() != base.key()
    # Mix order matters: core 0 running gups is not core 0 running stream.
    assert (
        SimCell(("gups", "stream"), BASE, length=100, seed=1).key()
        != SimCell(("stream", "gups"), BASE, length=100, seed=1).key()
    )


def test_cell_key_is_stable_and_deterministic():
    first = SimCell("gups", BASE, length=100, seed=1)
    second = SimCell("gups", default_system_config(), length=100, seed=1)
    assert first.key() == second.key()
    assert first.key() == first.key()  # cached path returns the same key


def test_trace_key_varies_in_all_inputs():
    base = trace_key("gups", 100, 1)
    assert trace_key("gups", 101, 1) != base
    assert trace_key("gups", 100, 2) != base
    assert trace_key("stream", 100, 1) != base


def test_flip_helper_changes_every_scalar_type():
    assert flip(True) is False and flip(False) is True
    assert flip(7) == 8
    assert flip(1.5) == 2.0
    assert flip("lru") == "lrux"
    with pytest.raises(TypeError):
        flip((1, 2))


def test_num_cores_flip_still_changes_config_hash():
    # The cell key ignores the flip (normalization), but the raw config
    # hash must still see it -- manifests record the config as given.
    flipped = flipped_at(BASE, "num_cores")
    assert config_hash(flipped) != config_hash(BASE)


def test_all_leaves_are_scalars():
    # The runtime mirror of SL002's scalar-type check.
    for path in ALL_PATHS:
        node = BASE
        for part in path.split("."):
            node = getattr(node, part)
        assert isinstance(node, (bool, int, float, str)), path
