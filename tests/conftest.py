"""Shared fixtures for the TEMPO reproduction test suite."""

import pytest

from repro.common.config import default_system_config
from repro.common.rng import DeterministicRng
from repro.vm.frame_allocator import FrameAllocator


@pytest.fixture
def config():
    """The default (Figure-9) machine, validated."""
    return default_system_config()


@pytest.fixture
def rng():
    return DeterministicRng(1234, "tests")


@pytest.fixture
def allocator(rng):
    """A 64 GB physical memory (lazy, so cheap)."""
    return FrameAllocator(64 * 1024 * 1024 * 1024, rng)


@pytest.fixture
def small_trace():
    """A short single-region trace touching a few hundred pages."""
    from repro.workloads.base import MB, TraceBuilder

    builder = TraceBuilder("fixture", seed=7)
    region = builder.region("data", 64 * MB)
    for index in range(600):
        builder.read(region.at(index * 4096 + 64), gap=2)
    return builder.build()
