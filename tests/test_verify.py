"""Tests for the runtime-verification subsystem (``repro.verify``).

The seeded-bug tests are the core contract: each plants one specific
corruption in a finished machine and asserts that *exactly* the intended
auditor catches it -- proof that every auditor detects the failure class
it claims, and that none of them misfires on its neighbours' bugs.
"""

import json
import os

import pytest

from repro.common.config import default_system_config
from repro.common.errors import ConfigError, InvariantViolation, SimulationError
from repro.exec import ExperimentExecutor, ResultCache, SimCell
from repro.exec.cache import QuarantineReason
from repro.exec.resilience import CellExecutionError, ResiliencePolicy
from repro.sim.runner import run_workload
from repro.sim.system import SystemSimulator
from repro.verify import (
    AuditorSuite,
    FlightRecorder,
    InvariantAuditor,
    Violation,
    run_verification,
)
from repro.verify.oracles import ALL_ORACLES
from repro.workloads.registry import make_trace

LENGTH = 1500
WORKLOAD = "btree"


def _finished_machine(tempo=True, length=LENGTH):
    """A SystemSimulator that has completed a run: real populated TLBs,
    caches, page tables, and counters for the auditors to inspect."""
    config = default_system_config().with_tempo(tempo)
    trace = make_trace(WORKLOAD, length=length, seed=0)
    sim = SystemSimulator(config, [trace], seed=0)
    sim.run()
    return sim


@pytest.fixture(scope="function")
def machine():
    return _finished_machine()


def _auditors_firing(violations):
    return {violation.auditor for violation in violations}


def _invariants_firing(violations):
    return {violation.invariant for violation in violations}


# ----------------------------------------------------------------------
# Seeded bugs: each corruption is caught by exactly one auditor
# ----------------------------------------------------------------------


def test_clean_machine_passes_every_auditor(machine):
    suite = AuditorSuite("full")
    assert suite.audit_all(machine) == []


def test_corrupt_tlb_entry_caught_by_tlb_coherence(machine):
    suite = AuditorSuite("full")
    assert suite.audit_all(machine) == []
    tlb = machine.cores[0].tlb
    array = next(a for a in tlb._l1.values() if any(a._sets))
    entries = next(s for s in array._sets if s)
    vpn = next(iter(entries))
    entries[vpn] ^= 0x1000_0000  # point the cached translation elsewhere
    violations = suite.audit_all(machine)
    assert violations
    assert _auditors_firing(violations) == {"tlb_coherence"}
    assert _invariants_firing(violations) <= {"frame_mismatch", "stale_translation"}


def test_dropped_stat_increment_caught_by_stat_conservation(machine):
    suite = AuditorSuite("full")
    assert suite.audit_all(machine) == []
    tlb = machine.cores[0].tlb
    assert tlb.stats.peek("l1_hits") > 0
    tlb.stats.counter("l1_hits").value -= 1  # one lost increment
    violations = suite.audit_all(machine)
    assert violations
    assert _auditors_firing(violations) == {"stat_conservation"}
    assert "tlb_l1_hit_sum" in _invariants_firing(violations)


def test_spurious_prefetch_caught_by_tempo_causality(machine):
    suite = AuditorSuite("full")
    assert suite.audit_all(machine) == []
    # The engine hook claims a prefetch that never entered the queues.
    machine.controller.stats.counter("tempo_prefetches_enqueued").value += 1
    violations = suite.audit_all(machine)
    assert violations
    assert _auditors_firing(violations) == {"tempo_causality"}
    assert "prefetch_provenance" in _invariants_firing(violations)


def test_misplaced_cache_line_caught_by_cache_sanity(machine):
    suite = AuditorSuite("full")
    assert suite.audit_all(machine) == []
    llc = machine.hierarchy.llc
    index, entries = next(
        (i, s) for i, s in enumerate(llc._sets) if s
    )
    line_id = next(iter(entries))
    dirty = entries.pop(line_id)
    llc._sets[(index + 1) % llc.num_sets][line_id] = dirty
    violations = suite.audit_all(machine)
    assert violations
    assert _auditors_firing(violations) == {"cache_sanity"}
    assert "misplaced_line" in _invariants_firing(violations)


def test_clock_rewind_caught_by_dram_legality(machine):
    suite = AuditorSuite("full")
    assert suite.audit_all(machine) == []  # records the monotonic marks
    machine.controller._clock[0] -= 5
    violations = suite.audit_all(machine)
    assert violations
    assert _auditors_firing(violations) == {"dram_legality"}
    assert "channel_clock_monotonic" in _invariants_firing(violations)


def test_tempo_counters_with_tempo_off_caught_by_tempo_causality():
    machine = _finished_machine(tempo=False, length=600)
    suite = AuditorSuite("full")
    assert suite.audit_all(machine) == []
    machine.cores[0].walker.stats.counter("tagged_leaf_requests").value += 1
    violations = suite.audit_all(machine)
    assert _auditors_firing(violations) == {"tempo_causality"}
    assert "tagging_without_engine" in _invariants_firing(violations)


# ----------------------------------------------------------------------
# The suite: checkpointing, raising, and the flight-recorder dump
# ----------------------------------------------------------------------


def test_checkpoint_raises_with_flight_recorder_attached(machine):
    recorder = FlightRecorder(capacity=8)
    recorder.record("ref", vaddr=0x1000, cpu=0)
    suite = AuditorSuite("full", recorder=recorder)
    machine.cores[0].tlb.stats.counter("l1_hits").value += 3
    with pytest.raises(InvariantViolation) as info:
        suite.checkpoint(machine, quiescent=True)
    error = info.value
    assert error.auditor == "stat_conservation"
    assert error.invariant == "tlb_l1_hit_sum"
    dump = error.context["flight_recorder"]
    assert dump["events"] and dump["events"][-1]["vaddr"] == 0x1000
    assert suite.violations_found == 1


def test_suite_rejects_unknown_mode():
    with pytest.raises(InvariantViolation):
        AuditorSuite("paranoid")


def test_violation_during_run_dumps_crash_report(capsys):
    config = default_system_config().with_tempo(True)
    trace = make_trace(WORKLOAD, length=LENGTH, seed=0)
    sim = SystemSimulator(config, [trace], seed=0, check_invariants="full")

    class PlantedFailure(InvariantAuditor):
        name = "planted"

        def audit(self, machine, quiescent=False):
            yield Violation("planted", "always", "planted failure")

    sim.audit.auditors.append(PlantedFailure())
    with pytest.raises(InvariantViolation) as info:
        sim.run()
    assert "flight_recorder" in info.value.context
    report = json.loads(capsys.readouterr().err)
    assert report["error"] == "InvariantViolation"
    assert "planted/always" in report["message"]
    assert report["context"]["flight_recorder"]["events"]
    assert "cycle" in report["context"]


# ----------------------------------------------------------------------
# End-to-end: audited runs are bit-identical and violation-free
# ----------------------------------------------------------------------


def _comparable(result):
    return {
        key: value
        for key, value in result.stats.items()
        if not key.startswith("manifest.timing")
    }


def test_full_audit_is_bit_identical_to_off():
    config = default_system_config().with_tempo(True)
    off = run_workload(WORKLOAD, config=config, length=LENGTH, seed=0)
    full = run_workload(
        WORKLOAD, config=config, length=LENGTH, seed=0, check_invariants="full"
    )
    assert _comparable(off) == _comparable(full)
    assert off.manifest.audit is None
    audit = full.manifest.audit
    assert audit["mode"] == "full"
    assert audit["violations"] == 0
    assert audit["checkpoints"] >= 2  # interval checkpoints + final drain
    assert audit["flight_recorder"]["recorded"] > 0
    # The audit summary rides in the nested manifest, never in flat().
    assert "manifest.audit" not in full.stats
    assert "audit" in full.manifest.as_dict()


def test_multicore_full_audit_runs_clean():
    from repro.sim.multicore import MulticoreSimulator

    config = default_system_config().copy_with(num_cores=2)
    traces = [
        make_trace(WORKLOAD, length=700, seed=0),
        make_trace("graph500", length=700, seed=1),
    ]
    results = MulticoreSimulator(
        config, traces, check_invariants="full"
    ).run()
    audit = results.shared.manifest.audit
    assert audit["violations"] == 0
    assert audit["checkpoints"] >= 1


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


def test_flight_recorder_bounds_and_dump():
    recorder = FlightRecorder(capacity=4)
    for i in range(10):
        recorder.record("ref", i=i)
    assert len(recorder) == 4
    assert recorder.recorded == 10
    assert recorder.dropped == 6
    dump = recorder.dump()
    assert [event["i"] for event in dump["events"]] == [6, 7, 8, 9]
    assert dump["capacity"] == 4 and dump["dropped"] == 6
    json.dumps(dump)  # must be serialisable as-is
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.recorded == 10  # totals survive a clear


def test_flight_recorder_rejects_bad_capacity():
    with pytest.raises(ConfigError):
        FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# Executor integration: violations quarantine, never cache, never retry
# ----------------------------------------------------------------------


def test_invariant_violation_quarantines_cell_without_retry(tmp_path, monkeypatch):
    calls = []

    def planted_violation(
        cell, cache=None, trace_memo=None, check_invariants=None, kernel=None
    ):
        calls.append(cell.key())
        raise InvariantViolation(
            "tempo_causality", "leaf_prefetch_bijection", "planted", {"built": 3}
        )

    monkeypatch.setattr("repro.exec.executor.simulate_cell", planted_violation)
    cache = ResultCache(str(tmp_path))
    executor = ExperimentExecutor(
        cache=cache,
        resilience=ResiliencePolicy(max_retries=3),
        check_invariants="full",
    )
    cell = SimCell(WORKLOAD, default_system_config(), 400)
    with pytest.raises(CellExecutionError):
        executor.run_cells([cell])
    assert len(calls) == 1  # terminal failure: retries would reproduce it
    assert executor.counters["quarantined"] == 1
    assert executor.counters["retries"] == 0
    assert executor.quarantine_reasons == {"invariant-violation": 1}
    key = cell.key()
    assert cache.get(key) is None  # the result was never cached
    evidence_path = os.path.join(
        str(tmp_path),
        "quarantine",
        key[:2],
        "%s.invariant-violation.evidence.json" % key,
    )
    assert os.path.exists(evidence_path)
    with open(evidence_path) as stream:
        evidence = json.load(stream)
    assert evidence["error"].startswith("InvariantViolation")
    assert evidence["attempts"] == 1
    assert "quarantine: 1 invariant-violation" in executor.summary()


def test_quarantine_reason_labels_land_in_filenames(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "ab" + "0" * 62
    cache.put(key, {"schema": "old"})
    dest = cache.quarantine(key, QuarantineReason.STALE_SCHEMA)
    assert dest.endswith("%s.stale-schema.json" % key)
    assert cache.get(key) is None


# ----------------------------------------------------------------------
# Misc hardening that rides with the verify subsystem
# ----------------------------------------------------------------------


def test_walker_rejects_completing_faulted_plan(machine):
    walker = machine.cores[0].walker
    plan = walker.plan(0xDEAD_0000_0000_0000 & ((1 << 48) - 1))
    assert plan.faulted
    with pytest.raises(SimulationError) as info:
        walker.complete(plan)
    assert info.value.context["vaddr"] == plan.vaddr


# ----------------------------------------------------------------------
# Differential oracles
# ----------------------------------------------------------------------


def test_oracles_all_pass_quick():
    lines = []
    results = run_verification(out=lines.append, quick=True, length=500)
    assert [result.name for result in results] == [
        oracle.__name__.replace("oracle_", "") for oracle in ALL_ORACLES
    ]
    assert all(result.passed for result in results), lines
    assert len(lines) == len(results)
    assert all(line.startswith("PASS") for line in lines)
