"""Tests for the four-level radix page table."""

import pytest

from repro.common.addressing import radix_index
from repro.common.constants import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.errors import MappingError, TranslationFault
from repro.vm.page_table import PageTable

VADDR = 0x1234_5678_9000


@pytest.fixture
def table(allocator):
    return PageTable(allocator)


def test_cr3_is_allocated_frame(table):
    assert table.cr3 % PAGE_SIZE_4K == 0


def test_map_translate_4k(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    assert table.translate(VADDR) == (0xABC000, PAGE_SIZE_4K)
    assert table.translate(VADDR + 0xFFF) == (0xABC000, PAGE_SIZE_4K)


def test_unmapped_translate_faults(table):
    with pytest.raises(TranslationFault):
        table.translate(VADDR)


def test_map_2m_terminates_at_l2(table):
    vaddr = 0x40000000
    table.map(vaddr, PAGE_SIZE_2M * 7, PAGE_SIZE_2M)
    result = table.walk(vaddr + 12345)
    assert not result.faulted
    assert result.leaf_level == 2
    assert [level for level, _ in result.accesses] == [4, 3, 2]
    assert result.entry.page_size == PAGE_SIZE_2M


def test_map_1g_terminates_at_l3(table):
    vaddr = PAGE_SIZE_1G * 3
    table.map(vaddr, PAGE_SIZE_1G * 5, PAGE_SIZE_1G)
    result = table.walk(vaddr + 999)
    assert result.leaf_level == 3
    assert [level for level, _ in result.accesses] == [4, 3]


def test_4k_walk_visits_four_levels(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    result = table.walk(VADDR)
    assert [level for level, _ in result.accesses] == [4, 3, 2, 1]


def test_walk_entry_addresses_are_concatenations(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    result = table.walk(VADDR)
    level4_addr = result.accesses[0][1]
    assert level4_addr == table.cr3 + radix_index(VADDR, 4) * 8


def test_faulting_walk_reports_partial_path(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    # Same L4 subtree, different L3 entry: the walk reads L4 then faults.
    other = VADDR + (1 << 39)
    assert radix_index(other, 4) != radix_index(VADDR, 4) or True
    result = table.walk(0x9999_0000_0000)
    assert result.faulted
    assert result.entry is None
    assert 1 <= len(result.accesses) <= 4


def test_map_rejects_misaligned(table):
    with pytest.raises(MappingError):
        table.map(VADDR + 1, 0xABC000, PAGE_SIZE_4K)
    with pytest.raises(MappingError):
        table.map(VADDR, 0xABC100, PAGE_SIZE_4K)
    with pytest.raises(MappingError):
        table.map(0x1000, 0x2000, 8192)


def test_map_rejects_remap(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    with pytest.raises(MappingError):
        table.map(VADDR, 0xDEF000, PAGE_SIZE_4K)


def test_map_rejects_4k_under_2m_superpage(table):
    base = 0x4000_0000
    table.map(base, PAGE_SIZE_2M, PAGE_SIZE_2M)
    with pytest.raises(MappingError):
        table.map(base + PAGE_SIZE_4K * 3, 0xABC000, PAGE_SIZE_4K)


def test_unmap_then_translate_faults(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    table.unmap(VADDR, PAGE_SIZE_4K)
    with pytest.raises(TranslationFault):
        table.translate(VADDR)


def test_unmap_unmapped_raises(table):
    with pytest.raises(MappingError):
        table.unmap(VADDR, PAGE_SIZE_4K)


def test_unmap_then_remap_succeeds(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    table.unmap(VADDR, PAGE_SIZE_4K)
    table.map(VADDR, 0xDEF000, PAGE_SIZE_4K)
    assert table.translate(VADDR)[0] == 0xDEF000


def test_table_pages_grow_with_spread_mappings(table):
    before = table.table_pages
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    after_first = table.table_pages
    # A second mapping far away needs fresh L3/L2/L1 pages.
    table.map(VADDR + (1 << 40), 0xDEF000, PAGE_SIZE_4K)
    assert after_first == before + 3  # L3 + L2 + L1 pages
    assert table.table_pages > after_first


def test_adjacent_pages_share_leaf_table(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    pages_before = table.table_pages
    table.map(VADDR + PAGE_SIZE_4K, 0xDEF000, PAGE_SIZE_4K)
    assert table.table_pages == pages_before  # same L1 table page
    first = table.walk(VADDR).accesses[-1][1]
    second = table.walk(VADDR + PAGE_SIZE_4K).accesses[-1][1]
    assert second == first + 8  # consecutive 8-byte leaf PTEs


def test_mapped_bytes_accounting(table):
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    table.map(0x4000_0000, PAGE_SIZE_2M, PAGE_SIZE_2M)
    assert table.mapped_bytes(PAGE_SIZE_4K) == PAGE_SIZE_4K
    assert table.mapped_bytes(PAGE_SIZE_2M) == PAGE_SIZE_2M
    assert table.mapped_bytes() == PAGE_SIZE_4K + PAGE_SIZE_2M


def test_superpage_fraction_chunk_based(table):
    # One 2 MB mapping and one 4 KB-touched chunk -> 50% coverage.
    table.map(0x4000_0000, PAGE_SIZE_2M, PAGE_SIZE_2M)
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    assert table.superpage_fraction() == pytest.approx(0.5)
    # More 4 KB pages in the same chunk do not change chunk coverage.
    table.map(VADDR + PAGE_SIZE_4K, 0xDEF000, PAGE_SIZE_4K)
    assert table.superpage_fraction() == pytest.approx(0.5)


def test_is_mapped(table):
    assert not table.is_mapped(VADDR)
    table.map(VADDR, 0xABC000, PAGE_SIZE_4K)
    assert table.is_mapped(VADDR)
