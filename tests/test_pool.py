"""Chaos tests for the supervised worker-pool fabric and the pluggable
cache backend (docs/distribution.md).

The contract under test is bit-identity: cells are pure functions of
their identity, so a pooled sweep riddled with injected worker kills,
heartbeat stalls, and cache outages must produce results identical to a
fault-free serial run -- the faults may only show up in the counters.

Layers, cheapest first:

* executor-level chaos sweeps (worker_kill + heartbeat_stall) against a
  serial reference;
* the poison-cell guard: a cell that kills consecutive workers is
  quarantined with evidence instead of grinding the pool down;
* supervisor death: SIGKILL the whole ``repro experiment`` process
  mid-sweep, then ``--resume`` and require zero lost work;
* the cache-backend tier: HTTP round-trip against a live ``repro
  serve``, graceful local degradation on outage, and the deterministic
  ``cache_unavailable`` fault.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.common.config import SystemConfig
from repro.exec import (
    ExperimentExecutor,
    FaultPlan,
    FaultSpec,
    HTTPBackend,
    PoolConfig,
    ResiliencePolicy,
    ResultCache,
    TelemetryLog,
)
from repro.exec.backend import CacheBackendError
from repro.exec.cells import SimCell
from repro.exec.serialize import result_to_payload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CHAOS_WORKLOADS = ("xsbench", "mcf", "lsh", "canneal", "spmv", "graph500")


def _cells(length=600, workloads=CHAOS_WORKLOADS):
    return [SimCell(wl, SystemConfig(), length=length, seed=0) for wl in workloads]


def _comparable(result):
    """A result's payload with host-timing noise stripped: the exact
    bit-identity surface (everything except ``manifest.timing.*``)."""
    payload = json.loads(json.dumps(result_to_payload(result)))
    payload["stats"] = {
        key: value
        for key, value in payload["stats"].items()
        if not key.startswith("manifest.timing")
    }
    return payload


# ---------------------------------------------------------------------------
# chaos sweep: worker kills + heartbeat stalls vs a fault-free serial run


def test_chaos_pool_sweep_bit_identical_to_serial(tmp_path):
    cells = _cells()
    serial = ExperimentExecutor(workers=1)
    reference = [_comparable(r) for r in serial.run_cells(cells)]

    spec = FaultSpec.parse(
        "seed=5,worker_kill=0.5,heartbeat_stall=0.3,stall-seconds=5"
    )
    plan = spec.materialize([cell.key() for cell in cells])
    # Seed 5 over these six cells draws both fault kinds, disjointly --
    # the accounting below relies on that.
    assert plan.kill and plan.stall
    assert not set(plan.kill) & set(plan.stall)

    telemetry_path = str(tmp_path / "chaos.jsonl")
    chaotic = ExperimentExecutor(
        workers=3,
        faults=spec,
        resilience=ResiliencePolicy(heartbeat_timeout=0.6),
        telemetry=TelemetryLog(telemetry_path),
    )
    results = [_comparable(r) for r in chaotic.run_cells(cells)]
    chaotic.telemetry.close()

    assert results == reference
    counters = chaotic.counters
    assert counters["crashes"] == len(plan.kill)
    assert counters["stalls"] == len(plan.stall)
    assert counters["retries"] == len(plan.kill) + len(plan.stall)
    assert counters["workers_respawned"] == counters["retries"]
    assert counters["workers_spawned"] == 3 + counters["workers_respawned"]
    assert counters["simulated"] == len(cells)
    assert counters["failed"] == 0 and counters["poison_cells"] == 0

    events = [json.loads(line) for line in open(telemetry_path)]
    worker_events = [e for e in events if e["event"] == "worker"]
    actions = [e["action"] for e in worker_events]
    assert actions.count("spawned") == 3
    assert actions.count("respawned") == counters["workers_respawned"]
    assert actions.count("crashed") >= len(plan.kill)
    assert actions.count("stalled") == len(plan.stall)
    # Additive events only: the telemetry schema did not change.
    assert {e["schema"] for e in events} == {1}


def test_pool_reports_steals_and_beats_spawn_per_cell(tmp_path):
    """Work stealing falls out of the shared queue: pin whichever worker
    claims the first cell with a delay fault, and the other worker must
    steal at least one cell homed to it."""
    cells = _cells(length=400, workloads=("xsbench", "mcf", "lsh", "canneal"))
    plan = FaultPlan(delay={cells[0].key(): ((0, 0.5),)})
    pooled = ExperimentExecutor(
        workers=2, cache=ResultCache(str(tmp_path)), faults=plan
    )
    results = pooled.run_cells(cells)
    assert len(results) == len(cells)
    assert pooled.counters["pooled_batches"] == 1
    assert pooled.counters["workers_spawned"] == 2
    # Cells are homed round-robin (0->w0, 1->w1, 2->w0, 3->w1).  With
    # one worker stuck on cell 0 for 0.5s, the free worker claims the
    # rest -- at least one of which is homed to the stuck worker.
    assert pooled.counters["steals"] >= 1


# ---------------------------------------------------------------------------
# poison cells


def test_poison_cell_quarantined_with_evidence(tmp_path):
    cells = _cells(length=400, workloads=("xsbench", "mcf"))
    poison_key = cells[0].key()
    plan = FaultPlan(kill={poison_key: (0, 1, 2)})
    executor = ExperimentExecutor(
        workers=2,
        cache=ResultCache(str(tmp_path)),
        faults=plan,
        resilience=ResiliencePolicy(allow_partial=True, heartbeat_timeout=5.0),
        pool=PoolConfig(workers=2, poison_threshold=2),
    )
    results = executor.run_cells(cells)

    assert executor.counters["poison_cells"] == 1
    assert executor.counters["failed"] == 1
    assert executor.counters["simulated"] == 1  # the healthy cell
    assert executor.quarantine_reasons == {"poison-cell": 1}
    [failure] = executor.failed_cells
    assert failure.key == poison_key
    assert failure.error.startswith("PoisonCell")

    evidence_path = os.path.join(
        str(tmp_path),
        "quarantine",
        poison_key[:2],
        "%s.poison-cell.evidence.json" % poison_key,
    )
    evidence = json.load(open(evidence_path))
    assert evidence["key"] == poison_key
    assert "killed 2 consecutive worker(s)" in evidence["error"]

    # The degraded stand-in is explicitly marked, the healthy cell real.
    assert results[0].stats.get("missing_cell") == 1
    assert "missing_cell" not in results[1].stats


# ---------------------------------------------------------------------------
# supervisor death: kill -9 the whole sweep, then --resume


def _run_cli(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro"] + argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src")),
        **kwargs,
    )


def _table_lines(output):
    """The experiment table: everything before the executor summary."""
    lines = output.splitlines()
    return [line for line in lines if not line.startswith(("executor:", "warning:"))]


def test_sigkill_supervisor_then_resume_is_bit_identical(tmp_path):
    cache_dir = str(tmp_path / "cache")
    telemetry = str(tmp_path / "t.jsonl")
    argv = [
        "experiment", "fig01",
        "--length", "6000",
        "--workloads", "xsbench", "mcf",
        "--workers", "2",
        "--cache-dir", cache_dir,
    ]
    process = subprocess.Popen(
        [sys.executable, "-m", "repro"] + argv + ["--telemetry", telemetry],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src")),
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            try:
                with open(telemetry) as stream:
                    if any('"event": "cell_done"' in line for line in stream):
                        break
            except FileNotFoundError:
                pass
            if process.poll() is not None:
                raise AssertionError(
                    "sweep finished before it could be killed; "
                    "raise --length"
                )
            time.sleep(0.01)
        else:
            raise AssertionError("no cell_done before the kill deadline")
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    resumed = _run_cli(argv + ["--resume"], timeout=300)
    assert resumed.returncode == 0, resumed.stdout
    assert "resumed" in resumed.stdout

    reference = _run_cli(
        [
            "experiment", "fig01",
            "--length", "6000",
            "--workloads", "xsbench", "mcf",
            "--cache-dir", str(tmp_path / "ref-cache"),
        ],
        timeout=300,
    )
    assert reference.returncode == 0, reference.stdout
    assert _table_lines(resumed.stdout) == _table_lines(reference.stdout)


def test_pool_abort_then_resume_recovers_without_resimulation(tmp_path):
    """The deterministic stand-in for the SIGKILL test: abort the pooled
    sweep after 2 completions, resume, and require the journaled cells
    to come back from the checkpoint -- not a re-simulation."""
    from repro.exec import SweepAborted

    cells = _cells(length=400, workloads=("xsbench", "mcf", "lsh", "canneal"))
    cache_root = str(tmp_path / "cache")
    aborted = ExperimentExecutor(
        workers=2,
        cache=ResultCache(cache_root),
        faults=FaultPlan(abort_after=2),
    )
    with pytest.raises(SweepAborted):
        aborted.run_cells(cells)

    resumed = ExperimentExecutor(
        workers=2, cache=ResultCache(cache_root), resume=True
    )
    results = [_comparable(r) for r in resumed.run_cells(cells)]
    assert resumed.counters["resumed"] >= 2
    assert resumed.counters["simulated"] + resumed.counters["resumed"] == len(cells)

    serial = ExperimentExecutor(workers=1)
    assert results == [_comparable(r) for r in serial.run_cells(cells)]


# ---------------------------------------------------------------------------
# cache backend: live round-trip, outage degradation, injected outage


@pytest.fixture(scope="module")
def cache_server(tmp_path_factory):
    """One live sweep service for backend round-trips."""
    from repro.service import build_service
    from repro.service.client import ServiceClient

    cache_dir = str(tmp_path_factory.mktemp("backend-cache"))
    service = build_service(cache_dir=cache_dir)
    ready = threading.Event()
    thread = threading.Thread(
        target=service.run,
        args=("127.0.0.1", 0),
        kwargs={"announce": lambda host, port: ready.set()},
    )
    thread.start()
    assert ready.wait(timeout=30), "server never announced its port"
    yield ServiceClient("127.0.0.1", service.port), service, cache_dir
    service.shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_http_backend_round_trip_against_live_service(cache_server, tmp_path):
    client, service, _ = cache_server
    key = "ab" * 32
    payload = {"schema": 2, "stats": {"answer": 42}}

    backend = HTTPBackend("127.0.0.1:%d" % service.port)
    assert backend.get_entry(key) == (None, "miss")
    backend.put(key, payload)
    assert backend.get_entry(key) == (payload, "hit")

    # The typed client speaks the same route pair.
    assert client.cache_get("cd" * 32) is None
    client.cache_put("cd" * 32, payload)
    assert client.cache_get("cd" * 32) == payload

    # A local cache with this remote fills misses over HTTP and
    # replicates the hit into its local tier.
    cache = ResultCache(str(tmp_path / "tier"), remote=backend)
    got, status = cache.get_entry(key)
    assert (got, status) == (payload, "hit")
    assert not cache.degraded
    local_only = ResultCache(str(tmp_path / "tier"))
    assert local_only.get(key) == payload


def test_cache_key_validation_guards_the_route(cache_server):
    from repro.service.client import ServiceError

    client, _, _ = cache_server
    # Traversal cannot even address the route (multi-segment -> 404,
    # which the client reports as a miss); single-segment non-keys are
    # rejected by the 64-hex validation before touching the filesystem.
    assert client.cache_get("../../etc/passwd") is None
    with pytest.raises(ServiceError) as excinfo:
        client.cache_get("passwd")
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.cache_put("AB" * 32, {"schema": 2})
    assert excinfo.value.status == 400


def test_http_backend_outage_degrades_to_local(tmp_path):
    dead = HTTPBackend(
        "127.0.0.1:9", timeout=0.2, retries=0, backoff_seconds=0.0
    )
    with pytest.raises(CacheBackendError):
        dead.get_entry("ab" * 32)

    cells = _cells(length=400, workloads=("xsbench", "mcf"))
    telemetry_path = str(tmp_path / "outage.jsonl")
    executor = ExperimentExecutor(
        workers=1,
        cache=ResultCache(str(tmp_path / "cache"), remote=dead),
        telemetry=TelemetryLog(telemetry_path),
    )
    results = executor.run_cells(cells)
    executor.telemetry.close()

    # The sweep is unharmed; the first remote failure degraded the
    # cache to its local tier for the rest of the run (sticky).
    assert len(results) == len(cells)
    assert executor.cache.degraded
    assert executor.counters["backend_degraded"] >= 1
    assert "backend ops degraded" in executor.summary()
    events = [json.loads(line) for line in open(telemetry_path)]
    degraded = [e for e in events if e["event"] == "backend_degraded"]
    assert degraded and degraded[0]["backend"] == "http://127.0.0.1:9"

    # Every result landed locally despite the dead remote.
    local = ResultCache(str(tmp_path / "cache"))
    for cell in cells:
        assert local.get(cell.key()) is not None


def test_cache_unavailable_fault_degrades_without_a_server(tmp_path):
    cells = _cells(length=400, workloads=("xsbench", "mcf"))
    # The remote would fail if ever touched; the injected fault must
    # fire first, so the port is never dialled.
    executor = ExperimentExecutor(
        workers=1,
        cache=ResultCache(
            str(tmp_path),
            remote=HTTPBackend("127.0.0.1:9", timeout=0.2, retries=0),
        ),
        faults=FaultSpec.parse("seed=0,cache_unavailable=1.0"),
    )
    results = executor.run_cells(cells)
    assert len(results) == len(cells)
    assert executor.cache.degraded
    assert executor.cache.degrade_error == "injected cache_unavailable fault"
    assert executor.counters["backend_degraded"] >= 1
