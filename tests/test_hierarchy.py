"""Tests for the three-level cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy


@pytest.fixture
def hierarchy(config):
    return CacheHierarchy(config, num_cores=2)


def test_full_miss_reports_dram(hierarchy, config):
    result = hierarchy.access(0, 0x100000)
    assert result.needs_dram
    assert result.hit_level is None
    assert result.latency == config.core.llc_latency


def test_fill_then_l1_hit(hierarchy, config):
    hierarchy.fill_from_memory(0, 0x100000)
    result = hierarchy.access(0, 0x100000)
    assert result.hit_level == "l1"
    assert result.latency == config.core.l1_latency


def test_other_core_hits_only_in_llc(hierarchy, config):
    hierarchy.fill_from_memory(0, 0x100000)
    result = hierarchy.access(1, 0x100000)
    assert result.hit_level == "llc"
    assert result.latency == config.core.llc_latency
    # After the LLC hit refilled core 1's private levels:
    assert hierarchy.access(1, 0x100000).hit_level == "l1"


def test_l2_hit_refills_l1(hierarchy, config):
    hierarchy.fill_from_memory(0, 0x100000)
    # Evict from L1 by filling conflicting lines (same L1 set).
    l1_sets = config.l1.num_sets
    for way in range(config.l1.assoc + 1):
        hierarchy.l1[0].fill(0x100000 + (way + 1) * l1_sets * 64)
    result = hierarchy.access(0, 0x100000)
    assert result.hit_level in ("l2", "llc")
    assert hierarchy.access(0, 0x100000).hit_level == "l1"


def test_tempo_prefetch_fills_llc_only(hierarchy):
    hierarchy.prefetch_fill_llc(0x200000)
    assert not hierarchy.l1[0].contains(0x200000)
    assert not hierarchy.l2[0].contains(0x200000)
    assert hierarchy.llc.contains(0x200000)
    result = hierarchy.access(0, 0x200000)
    assert result.hit_level == "llc"


def test_imp_prefetch_fills_all_levels(hierarchy):
    hierarchy.prefetch_fill_l1(0, 0x200000)
    assert hierarchy.l1[0].contains(0x200000)
    assert hierarchy.llc.contains(0x200000)


def test_drain_writebacks_empty_initially(hierarchy):
    assert hierarchy.drain_writebacks() == ()


def test_dirty_llc_victims_surface_via_drain(config):
    hierarchy = CacheHierarchy(config, num_cores=1)
    sets = config.llc.num_sets
    target_set_stride = sets * 64
    # Make one line dirty in the LLC, then evict it with conflicting fills.
    hierarchy.fill_from_memory(0, 0x0, is_write=True)
    # Write back the dirty line from L1 down to the LLC first.
    for way in range(config.l1.assoc + 1):
        hierarchy.fill_from_memory(0, (way + 1) * config.l1.num_sets * 64, is_write=True)
    for way in range(config.l2.assoc + 2):
        hierarchy.fill_from_memory(0, (way + 8) * config.l2.num_sets * 64, is_write=True)
    for way in range(config.llc.assoc + 2):
        hierarchy.llc.fill((way + 1) * target_set_stride, is_write=True)
    writebacks = hierarchy.drain_writebacks()
    assert hierarchy.drain_writebacks() == ()  # drained exactly once
    assert all(victim.dirty for victim in writebacks)


def test_write_miss_fill_marks_l1_dirty(hierarchy):
    hierarchy.fill_from_memory(0, 0x300000, is_write=True)
    victim = hierarchy.l1[0].invalidate(0x300000)
    assert victim is not None and victim.dirty


def test_llc_hit_rate_exposed(hierarchy):
    hierarchy.fill_from_memory(0, 0x100000)
    hierarchy.access(1, 0x100000)
    hierarchy.access(1, 0x999000)
    assert 0.0 < hierarchy.llc_hit_rate() < 1.0
