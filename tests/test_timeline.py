"""Tests for utilization timelines and bottleneck attribution
(``repro.obs.timeline`` + the simulator instrumentation behind it).

The load-bearing guarantees:

* conservation -- every reference's cycles land in exactly one
  attribution bucket (``unattributed_cycles == 0``), and no unit is
  busy for more cycles than the run lasted;
* zero perturbation -- stats are bit-identical with the ledger off vs
  on (modulo the wall-clock ``manifest.timing.*`` keys, which differ
  between *any* two runs);
* determinism -- interval samples repeat exactly across runs.
"""

import json

import pytest

from repro.common.config import default_system_config
from repro.obs.timeline import (
    BottleneckAttributor,
    IntervalSampler,
    TimelineRecorder,
    UnitTrack,
    UtilizationLedger,
    capture_timeline,
    render_timeline,
    timeline_payload,
    write_timeline_csv,
    write_timeline_json,
)
from repro.sim.multicore import MulticoreSimulator
from repro.sim.runner import run_workload
from repro.workloads.registry import make_trace

WORKLOAD = "xsbench"
LENGTH = 1200


# ----------------------------------------------------------------------
# UnitTrack / UtilizationLedger units


def test_unit_track_accumulates_and_splits_across_intervals():
    track = UnitTrack("u", interval=100)
    track.busy(10, 30)
    track.busy(90, 210)  # spans three interval buckets
    assert track.busy_cycles == 140
    assert track.horizon == 210
    series = dict(track.series())
    assert series == {0: 30, 1: 100, 2: 10}


def test_unit_track_ignores_empty_and_inverted_spans():
    track = UnitTrack("u", interval=100)
    track.busy(50, 50)
    track.busy(60, 40)
    assert track.busy_cycles == 0
    assert track.series() == []


def test_ledger_get_or_create_and_horizon():
    ledger = UtilizationLedger(interval=64)
    a = ledger.unit("a")
    assert ledger.unit("a") is a
    ledger.unit("b").busy(0, 10)
    a.busy(100, 130)
    assert ledger.horizon == 130
    with pytest.raises(ValueError):
        UtilizationLedger(interval=0)


# ----------------------------------------------------------------------
# BottleneckAttributor units


def test_attributor_conserves_and_names_critical_bucket():
    attr = BottleneckAttributor(interval=1000)
    attr.begin(0, 100)
    attr.add_translation(0, 40)
    attr.add_dram(0, 300)
    attr.add_cache(0, 10)
    attr.end(0, 450)
    assert attr.references == 1
    assert attr.unattributed_cycles == 0
    assert attr.totals == {
        "translation": 40, "cache": 10, "dram": 300, "overlap": 0,
    }
    assert attr.critical(0) == "dram"


def test_attributor_counts_unattributed_shortfall():
    attr = BottleneckAttributor(interval=1000)
    attr.begin(1, 0)
    attr.add_cache(1, 5)
    attr.end(1, 50)
    assert attr.unattributed_cycles == 45


def test_attributor_interleaved_cpus_do_not_mix():
    attr = BottleneckAttributor(interval=1000)
    attr.begin(0, 0)
    attr.begin(1, 0)
    attr.add_dram(0, 20)
    attr.add_translation(1, 30)
    attr.end(0, 20)
    attr.end(1, 30)
    assert attr.unattributed_cycles == 0
    assert attr.totals["dram"] == 20
    assert attr.totals["translation"] == 30


# ----------------------------------------------------------------------
# IntervalSampler units


def test_sampler_cadence_and_final_snapshot():
    sampler = IntervalSampler(100)
    sampler.bind(lambda: {"n": 1})
    for cycle in (10, 99, 100, 150, 205, 333):
        sampler.maybe_sample(cycle)
    sampler.finish(400)
    cycles = [cycle for cycle, _ in sampler.samples]
    assert cycles == [100, 205, 333, 400]
    sampler.finish(400)  # idempotent when the last sample is current
    assert len(sampler.samples) == 4


# ----------------------------------------------------------------------
# Integration: single-core conservation


@pytest.fixture(scope="module")
def captured():
    return capture_timeline(WORKLOAD, length=LENGTH, interval=512)


def test_single_core_attribution_is_exactly_conserved(captured):
    result, recorder = captured
    attribution = recorder.attribution
    assert attribution.references == LENGTH
    assert attribution.unattributed_cycles == 0
    assert sum(attribution.totals.values()) > 0


def test_no_unit_is_busy_longer_than_the_run(captured):
    _, recorder = captured
    horizon = max(recorder.ledger.horizon, recorder.attribution.horizon)
    for name, track in recorder.ledger.units.items():
        assert 0 <= track.busy_cycles <= horizon, name
    # The known-hot units actually registered work.
    for name in ("core0.walker", "llc", "dram.bank0", "dram.channel0"):
        assert recorder.ledger.units[name].busy_cycles > 0, name


def test_payload_is_json_clean_and_self_consistent(captured):
    _, recorder = captured
    payload = timeline_payload(recorder)
    json.dumps(payload)  # must be serialisable as-is
    assert payload["schema_version"] == 1
    assert payload["total_cycles"] > 0
    by_name = {unit["name"]: unit for unit in payload["units"]}
    for unit in payload["units"]:
        assert sum(busy for _, busy in unit["series"]) == unit["busy_cycles"]
        assert 0.0 <= unit["utilization"] <= 1.0
    assert "core0.walker" in by_name
    attribution = payload["attribution"]
    assert attribution["references"] == LENGTH
    assert attribution["unattributed_cycles"] == 0
    per_interval = {bucket: 0 for bucket in attribution["totals"]}
    for row in attribution["intervals"]:
        assert row["critical"] in per_interval
        for bucket in per_interval:
            per_interval[bucket] += row[bucket]
    assert per_interval == attribution["totals"]


# ----------------------------------------------------------------------
# Bit-identity: ledger off vs on


def _comparable(stats):
    """Stats minus the host wall-clock keys, which differ between any
    two runs (same exclusion as the tracer bit-identity oracle)."""
    return {
        k: v for k, v in stats.items() if not k.startswith("manifest.timing.")
    }


def test_stats_bit_identical_with_timeline_off_vs_on():
    config = default_system_config()
    plain = run_workload(WORKLOAD, config, length=LENGTH, seed=3)
    recorded = run_workload(
        WORKLOAD, config, length=LENGTH, seed=3, timeline=TimelineRecorder()
    )
    assert plain.total_cycles == recorded.total_cycles
    assert _comparable(plain.stats) == _comparable(recorded.stats)


def test_timeline_off_is_a_single_none_check():
    # The off path must stay literally ``timeline is None``: no ledger,
    # no attribution state.
    result = run_workload(WORKLOAD, default_system_config(), length=300)
    assert result is not None  # smoke: nothing raised without a recorder


# ----------------------------------------------------------------------
# Determinism


def test_interval_samples_are_deterministic_across_runs():
    first = capture_timeline(WORKLOAD, length=800, interval=256)[1]
    second = capture_timeline(WORKLOAD, length=800, interval=256)[1]
    strip = lambda rows: [
        (cycle, _comparable(snapshot)) for cycle, snapshot in rows
    ]
    assert strip(first.sampler.samples) == strip(second.sampler.samples)
    assert timeline_payload(first)["units"] == timeline_payload(second)["units"]


# ----------------------------------------------------------------------
# Multicore


def test_multicore_shared_run_conserves_attribution():
    config = default_system_config().copy_with(num_cores=2)
    traces = [
        make_trace("bzip2_small", length=400, seed=0),
        make_trace("gcc_small", length=400, seed=1),
    ]
    recorder = TimelineRecorder(interval=512)
    MulticoreSimulator(config, traces, timeline=recorder).run()
    attribution = recorder.attribution
    # One attribution record per shared-run reference (trace lengths
    # are approximate: the generators round to scan/stride boundaries).
    assert attribution.references == sum(len(t.records) for t in traces)
    assert attribution.unattributed_cycles == 0
    # Both cores' private units registered occupancy.
    assert recorder.ledger.units["core0.walker"].busy_cycles > 0
    assert recorder.ledger.units["core1.walker"].busy_cycles > 0


# ----------------------------------------------------------------------
# Rendering + export


def test_render_timeline_shows_bars_and_attribution(captured):
    _, recorder = captured
    text = render_timeline(timeline_payload(recorder), width=40)
    assert "per-unit utilization" in text
    assert "core0.walker" in text
    assert "bottleneck attribution" in text
    assert "unattributed cycles: 0" in text
    assert "critical resource per column" in text


def test_json_and_csv_exports_round_trip(tmp_path, captured):
    _, recorder = captured
    payload = timeline_payload(recorder)
    json_path = str(tmp_path / "timeline.json")
    csv_path = str(tmp_path / "timeline.csv")
    assert write_timeline_json(payload, json_path) == len(payload["units"])
    with open(json_path) as stream:
        assert json.load(stream) == json.loads(json.dumps(payload))
    rows = write_timeline_csv(payload, csv_path)
    with open(csv_path) as stream:
        lines = stream.read().splitlines()
    assert lines[0] == "kind,name,interval_start,value"
    assert len(lines) == rows + 1
    # Unit totals in the CSV match the payload exactly.
    totals = {}
    for line in lines[1:]:
        kind, name, start, value = line.split(",")
        if kind == "unit_total":
            totals[name] = int(value)
    for unit in payload["units"]:
        assert totals[unit["name"]] == unit["busy_cycles"]
