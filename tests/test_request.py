"""Tests for memory requests / TxQ slot accounting."""

import pytest

from repro.common.errors import ConfigError
from repro.sched.request import (
    KIND_DEMAND,
    KIND_IMP_PREFETCH,
    KIND_PT,
    KIND_TEMPO_PREFETCH,
    KIND_WRITEBACK,
    MemoryRequest,
)


def test_ids_are_unique_and_monotonic():
    a = MemoryRequest(0x1000, KIND_DEMAND)
    b = MemoryRequest(0x2000, KIND_DEMAND)
    assert b.req_id > a.req_id


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError):
        MemoryRequest(0x1000, "speculative")


def test_tagged_pt_consumes_two_slots():
    """Paper Sec. 4.1: the piggybacked replay-line info is a second TxQ
    transaction rather than a 25%-wider queue."""
    plain = MemoryRequest(0x1000, KIND_PT)
    tagged = MemoryRequest(0x1000, KIND_PT, tempo_tagged=True, replay_line_index=5)
    assert plain.slots() == 1
    assert tagged.slots() == 2


def test_kind_predicates():
    assert MemoryRequest(0, KIND_TEMPO_PREFETCH).is_prefetch
    assert MemoryRequest(0, KIND_IMP_PREFETCH).is_prefetch
    assert not MemoryRequest(0, KIND_DEMAND).is_prefetch
    assert MemoryRequest(0, KIND_PT).is_pt
    assert not MemoryRequest(0, KIND_WRITEBACK).is_pt


def test_service_fields_start_unset():
    request = MemoryRequest(0x1000, KIND_DEMAND)
    assert request.start_time is None
    assert request.finish_time is None
    assert request.outcome is None


def test_tempo_metadata_defaults():
    request = MemoryRequest(0x1000, KIND_PT)
    assert not request.tempo_tagged
    assert request.pte is None
    assert request.replay_line_index == 0
    assert request.origin_pt_id is None
