"""Tests for FCFS / FR-FCFS / BLISS / TEMPO-grouping schedulers."""

import pytest

from repro.common.config import SchedulerConfig
from repro.common.errors import ConfigError
from repro.sched.request import (
    KIND_DEMAND,
    KIND_PT,
    KIND_TEMPO_PREFETCH,
    KIND_WRITEBACK,
    MemoryRequest,
)
from repro.sched.schedulers import (
    BlissScheduler,
    FcfsScheduler,
    FrFcfsScheduler,
    TempoGroupingScheduler,
    make_scheduler,
)


class FakeContext:
    """Scheduler context with scripted row-hit / reservation answers."""

    def __init__(self, row_hits=(), reserved=()):
        self._row_hits = set(row_hits)
        self._reserved = set(reserved)

    def row_hit(self, request):
        return request.req_id in self._row_hits

    def reserved_against(self, request):
        return request.req_id in self._reserved


def _req(kind=KIND_DEMAND, cpu=0, enqueue=0, not_before=0, paddr=0x1000):
    return MemoryRequest(paddr, kind, cpu=cpu, enqueue_time=enqueue, not_before=not_before)


def test_fcfs_picks_oldest():
    scheduler = FcfsScheduler()
    newer = _req(enqueue=10)
    older = _req(enqueue=5)
    assert scheduler.pick([newer, older], 100, FakeContext()) is older


def test_fcfs_skips_future_not_before():
    scheduler = FcfsScheduler()
    future = _req(enqueue=0, not_before=500)
    assert scheduler.pick([future], 100, FakeContext()) is None


def test_writebacks_only_when_alone():
    scheduler = FcfsScheduler()
    writeback = _req(kind=KIND_WRITEBACK, enqueue=0)
    demand = _req(kind=KIND_DEMAND, enqueue=50)
    assert scheduler.pick([writeback, demand], 100, FakeContext()) is demand
    assert scheduler.pick([writeback], 100, FakeContext()) is writeback


def test_frfcfs_prefers_row_hit_over_age():
    scheduler = FrFcfsScheduler()
    old_miss = _req(enqueue=0)
    young_hit = _req(enqueue=50)
    context = FakeContext(row_hits={young_hit.req_id})
    assert scheduler.pick([old_miss, young_hit], 100, context) is young_hit


def test_frfcfs_falls_back_to_oldest():
    scheduler = FrFcfsScheduler()
    older = _req(enqueue=0)
    newer = _req(enqueue=5)
    assert scheduler.pick([newer, older], 100, FakeContext()) is older


def test_reservation_delays_request():
    scheduler = FrFcfsScheduler()
    blocked = _req(cpu=1)
    context = FakeContext(reserved={blocked.req_id})
    assert scheduler.pick([blocked], 100, context) is None


def test_reservation_lets_others_through():
    scheduler = FrFcfsScheduler()
    blocked = _req(cpu=1, enqueue=0)
    free = _req(cpu=2, enqueue=50)
    context = FakeContext(reserved={blocked.req_id})
    assert scheduler.pick([blocked, free], 100, context) is free


# ---------------------------------------------------------------------
# BLISS
# ---------------------------------------------------------------------

@pytest.fixture
def bliss():
    return BlissScheduler(SchedulerConfig(policy="bliss"))


def test_bliss_requires_config():
    with pytest.raises(ConfigError):
        BlissScheduler(None)


def test_bliss_blacklists_after_consecutive_demands(bliss):
    config = bliss.config
    for _ in range(config.bliss_blacklist_threshold):
        bliss.on_scheduled(_req(cpu=0), now=10)
    assert bliss.blacklisted(0)


def test_bliss_counter_resets_on_cpu_switch(bliss):
    for _ in range(3):
        bliss.on_scheduled(_req(cpu=0), now=10)
    bliss.on_scheduled(_req(cpu=1), now=10)
    for _ in range(3):
        bliss.on_scheduled(_req(cpu=0), now=10)
    assert not bliss.blacklisted(0)


def test_bliss_prefetches_count_half(bliss):
    """Paper Sec. 4.3: +2 per demand, +1 per prefetch -- so it takes
    twice as many consecutive prefetches to blacklist."""
    threshold = bliss.config.bliss_blacklist_threshold
    for _ in range(2 * threshold - 1):
        bliss.on_scheduled(_req(kind=KIND_TEMPO_PREFETCH, cpu=0), now=10)
    assert not bliss.blacklisted(0)
    bliss.on_scheduled(_req(kind=KIND_TEMPO_PREFETCH, cpu=0), now=10)
    assert bliss.blacklisted(0)


def test_bliss_prefers_non_blacklisted(bliss):
    for _ in range(bliss.config.bliss_blacklist_threshold):
        bliss.on_scheduled(_req(cpu=0), now=10)
    bad = _req(cpu=0, enqueue=0)
    good = _req(cpu=1, enqueue=99)
    assert bliss.pick([bad, good], 100, FakeContext()) is good


def test_bliss_serves_blacklisted_when_alone(bliss):
    for _ in range(bliss.config.bliss_blacklist_threshold):
        bliss.on_scheduled(_req(cpu=0), now=10)
    bad = _req(cpu=0)
    assert bliss.pick([bad], 100, FakeContext()) is bad


def test_bliss_clears_periodically(bliss):
    interval = bliss.config.bliss_clearing_interval
    for _ in range(bliss.config.bliss_blacklist_threshold):
        bliss.on_scheduled(_req(cpu=0), now=10)
    assert bliss.blacklisted(0)
    bliss.pick([_req(cpu=0)], now=interval + 1, context=FakeContext())
    assert not bliss.blacklisted(0)


def test_bliss_writebacks_do_not_count(bliss):
    for _ in range(10):
        bliss.on_scheduled(_req(kind=KIND_WRITEBACK, cpu=0), now=10)
    assert not bliss.blacklisted(0)


# ---------------------------------------------------------------------
# TEMPO grouping wrapper
# ---------------------------------------------------------------------

def test_tempo_grouping_schedules_pt_first():
    scheduler = TempoGroupingScheduler(FrFcfsScheduler())
    demand = _req(kind=KIND_DEMAND, enqueue=0)
    pt = _req(kind=KIND_PT, enqueue=90)
    assert scheduler.pick([demand, pt], 100, FakeContext()) is pt


def test_tempo_grouping_groups_pt_by_row():
    scheduler = TempoGroupingScheduler(FrFcfsScheduler())
    pt_old_miss = _req(kind=KIND_PT, enqueue=0)
    pt_new_hit = _req(kind=KIND_PT, enqueue=50)
    context = FakeContext(row_hits={pt_new_hit.req_id})
    assert scheduler.pick([pt_old_miss, pt_new_hit], 100, context) is pt_new_hit


def test_tempo_grouping_prefetches_before_demands():
    scheduler = TempoGroupingScheduler(FrFcfsScheduler())
    demand = _req(kind=KIND_DEMAND, enqueue=0)
    prefetch = _req(kind=KIND_TEMPO_PREFETCH, enqueue=50)
    assert scheduler.pick([demand, prefetch], 100, FakeContext()) is prefetch


def test_tempo_grouping_falls_through_to_base():
    scheduler = TempoGroupingScheduler(FrFcfsScheduler())
    older = _req(kind=KIND_DEMAND, enqueue=0)
    newer = _req(kind=KIND_DEMAND, enqueue=5)
    assert scheduler.pick([newer, older], 100, FakeContext()) is older


def test_tempo_grouping_delegates_bliss_state():
    scheduler = TempoGroupingScheduler(BlissScheduler(SchedulerConfig(policy="bliss")))
    for _ in range(4):
        scheduler.on_scheduled(_req(cpu=0), now=10)
    assert scheduler.blacklisted(0)  # delegated via __getattr__


def test_make_scheduler_dispatch():
    assert isinstance(make_scheduler(SchedulerConfig(policy="fcfs")), FcfsScheduler)
    assert isinstance(make_scheduler(SchedulerConfig(policy="frfcfs")), FrFcfsScheduler)
    assert isinstance(make_scheduler(SchedulerConfig(policy="bliss")), BlissScheduler)
    wrapped = make_scheduler(SchedulerConfig(policy="frfcfs"), tempo_enabled=True)
    assert isinstance(wrapped, TempoGroupingScheduler)
    assert wrapped.name == "tempo+frfcfs"


# ---------------------------------------------------------------------
# ATLAS (extension)
# ---------------------------------------------------------------------

def _atlas():
    from repro.sched.schedulers import AtlasScheduler

    return AtlasScheduler(SchedulerConfig(policy="atlas", atlas_quantum_cycles=1000))


def test_atlas_requires_config():
    from repro.sched.schedulers import AtlasScheduler

    with pytest.raises(ConfigError):
        AtlasScheduler(None)


def test_atlas_prefers_least_served_cpu():
    scheduler = _atlas()
    for _ in range(5):
        scheduler.on_scheduled(_req(cpu=0), now=10)
    heavy = _req(cpu=0, enqueue=0)
    light = _req(cpu=1, enqueue=99)
    assert scheduler.pick([heavy, light], 100, FakeContext()) is light


def test_atlas_row_hit_breaks_ties_within_rank():
    scheduler = _atlas()
    old_miss = _req(cpu=0, enqueue=0)
    young_hit = _req(cpu=1, enqueue=50)
    # Both CPUs at zero attained service: same rank.
    context = FakeContext(row_hits={young_hit.req_id})
    assert scheduler.pick([old_miss, young_hit], 100, context) is young_hit


def test_atlas_quantum_reset():
    scheduler = _atlas()
    for _ in range(5):
        scheduler.on_scheduled(_req(cpu=0), now=10)
    assert scheduler.attained_service(0) == 5
    scheduler.pick([_req(cpu=0)], now=2000, context=FakeContext())
    assert scheduler.attained_service(0) == 0


def test_atlas_writebacks_unaccounted():
    scheduler = _atlas()
    scheduler.on_scheduled(_req(kind=KIND_WRITEBACK, cpu=0), now=10)
    assert scheduler.attained_service(0) == 0


def test_make_scheduler_atlas():
    from repro.sched.schedulers import AtlasScheduler

    assert isinstance(make_scheduler(SchedulerConfig(policy="atlas")), AtlasScheduler)


def test_atlas_runs_end_to_end():
    from dataclasses import replace
    from repro.common.config import default_system_config
    from repro.sim.runner import run_workload

    config = default_system_config()
    config = config.copy_with(scheduler=replace(config.scheduler, policy="atlas"))
    result = run_workload("xsbench", config, length=800, seed=0)
    assert result.core.cycles > 0
